"""A miniature C front end modelling compile-time error detection.

The mutation analysis of Table 1 needs to decide, for thousands of
single-character mutants of driver code, whether "the compiler" would
reject each one.  For Devil that compiler is this repository's own
checker; for the C and CDevil programs it is this package: a C-subset
lexer, parser and symbol checker tuned to report exactly what a
year-2000 ``gcc -Wall`` reports on hardware operating code.
"""

from .checker import (
    CDiagnostic,
    CheckResult,
    CParseError,
    check_c,
    kernel_externals,
)
from .lexer import CLexError, CToken, CTokenKind, number_value, tokenize_c

__all__ = [
    "CDiagnostic",
    "CheckResult",
    "CParseError",
    "CLexError",
    "CToken",
    "CTokenKind",
    "check_c",
    "kernel_externals",
    "number_value",
    "tokenize_c",
]
