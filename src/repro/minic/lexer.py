"""Tokenizer for the C subset used by the mutation analysis.

The paper's Table 1 asks, for every single-character mutation of the
hardware operating code, "would the C compiler reject this?".  To
answer that offline we model the relevant front-end of a C compiler:
this lexer covers the token classes that appear in driver code —
identifiers, integer literals (decimal/octal/hex), character and
string literals, the full C operator set, and preprocessor directives
(which are delivered as single DIRECTIVE tokens, one per line).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CTokenKind(enum.Enum):
    IDENT = "identifier"
    NUMBER = "number"
    CHAR = "char literal"
    STRING = "string literal"
    OPERATOR = "operator"
    PUNCT = "punctuation"
    DIRECTIVE = "preprocessor directive"
    EOF = "end of input"


#: C keywords recognised by the subset (delivered as IDENT tokens but
#: never treated as user symbols).
C_KEYWORDS = frozenset({
    "auto", "break", "case", "char", "const", "continue", "default",
    "do", "double", "else", "enum", "extern", "float", "for", "goto",
    "if", "inline", "int", "long", "register", "return", "short",
    "signed", "sizeof", "static", "struct", "switch", "typedef",
    "union", "unsigned", "void", "volatile", "while",
})

# Operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "?", ":", ".",
]
_PUNCTUATION = ["(", ")", "[", "]", "{", "}", ",", ";"]


class CLexError(Exception):
    """The text does not form valid C tokens."""


@dataclass(frozen=True)
class CToken:
    kind: CTokenKind
    text: str
    offset: int       # character offset in the source
    line: int

    def __str__(self) -> str:
        return f"{self.kind.value} {self.text!r}"


def tokenize_c(source: str) -> list[CToken]:
    """Tokenize ``source``; raises :class:`CLexError` on bad input."""
    tokens: list[CToken] = []
    position = 0
    line = 1
    length = len(source)

    def peek(ahead: int = 0) -> str:
        index = position + ahead
        return source[index] if index < length else ""

    while position < length:
        char = source[position]
        if char == "\n":
            line += 1
            position += 1
            continue
        if char in " \t\r":
            position += 1
            continue
        if char == "/" and peek(1) == "/":
            while position < length and source[position] != "\n":
                position += 1
            continue
        if char == "/" and peek(1) == "*":
            end = source.find("*/", position + 2)
            if end < 0:
                raise CLexError(f"line {line}: unterminated comment")
            line += source.count("\n", position, end)
            position = end + 2
            continue
        if char == "#":
            start = position
            # A directive runs to the end of line, honouring \ splices.
            while position < length and source[position] != "\n":
                if source[position] == "\\" and peek(1) == "\n":
                    position += 2
                    line += 1
                    continue
                position += 1
            tokens.append(CToken(CTokenKind.DIRECTIVE,
                                 source[start:position], start, line))
            continue
        if char.isdigit() or (char == "." and peek(1).isdigit()):
            start = position
            while position < length and (source[position].isalnum()
                                         or source[position] in "._"):
                position += 1
            text = source[start:position]
            _validate_number(text, line)
            tokens.append(CToken(CTokenKind.NUMBER, text, start, line))
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (source[position].isalnum()
                                         or source[position] == "_"):
                position += 1
            tokens.append(CToken(CTokenKind.IDENT, source[start:position],
                                 start, line))
            continue
        if char == "'":
            start = position
            position += 1
            while position < length and source[position] != "'":
                if source[position] == "\\":
                    position += 1
                position += 1
            if position >= length:
                raise CLexError(f"line {line}: unterminated char literal")
            position += 1
            text = source[start:position]
            if len(text) < 3:
                raise CLexError(f"line {line}: empty char literal")
            tokens.append(CToken(CTokenKind.CHAR, text, start, line))
            continue
        if char == '"':
            start = position
            position += 1
            while position < length and source[position] != '"':
                if source[position] == "\\":
                    position += 1
                position += 1
            if position >= length:
                raise CLexError(f"line {line}: unterminated string")
            position += 1
            tokens.append(CToken(CTokenKind.STRING,
                                 source[start:position], start, line))
            continue
        for operator in _OPERATORS:
            if source.startswith(operator, position):
                tokens.append(CToken(CTokenKind.OPERATOR, operator,
                                     position, line))
                position += len(operator)
                break
        else:
            if char in _PUNCTUATION:
                tokens.append(CToken(CTokenKind.PUNCT, char, position,
                                     line))
                position += 1
            else:
                raise CLexError(f"line {line}: stray character {char!r}")
    tokens.append(CToken(CTokenKind.EOF, "", length, line))
    return tokens


def _validate_number(text: str, line: int) -> None:
    """Reject ill-formed numeric literals the way a C lexer would."""
    body = text
    # Strip integer suffixes.
    while body and body[-1] in "uUlL":
        body = body[:-1]
    if not body:
        raise CLexError(f"line {line}: bad numeric literal {text!r}")
    try:
        if body.lower().startswith("0x"):
            if len(body) == 2:
                raise ValueError
            int(body, 16)
        elif body.startswith("0") and len(body) > 1 and "." not in body:
            int(body, 8)
        elif "." in body or "e" in body.lower():
            float(body)
        else:
            int(body, 10)
    except ValueError:
        raise CLexError(
            f"line {line}: bad numeric literal {text!r}") from None


def number_value(text: str) -> int | float:
    """Decode a validated C numeric literal."""
    body = text
    while body and body[-1] in "uUlL":
        body = body[:-1]
    if body.lower().startswith("0x"):
        return int(body, 16)
    if body.startswith("0") and len(body) > 1 and "." not in body:
        return int(body, 8)
    if "." in body or "e" in body.lower():
        return float(body)
    return int(body, 10)
