"""Semantic checker for the C subset: what would the C compiler catch?

The mutation analysis of Table 1 needs a faithful model of compile-time
error detection in C.  This module parses the driver fragments of the
mutation corpus (a C subset: preprocessor defines, declarations,
functions, statements and full C expressions) and reports the
diagnostics a year-2000 ``gcc -Wall`` build would:

**errors** (always detected)
    syntax errors, use of an undeclared identifier, assignment to a
    non-lvalue, wrong argument count for a known function or
    function-like macro, duplicate definitions in one scope;

**warnings** (detected when ``warnings_detect`` is on, the default)
    implicit declaration of a function (legal in C89, which is why a
    mutated *call* name still compiles — the paper's drivers predate
    C99), macro redefinition.

The checker is deliberately permissive about everything a C compiler
is permissive about: integer literals of any value, ``|`` versus
``||``, wrong-but-declared identifiers, shifts by any amount — these
are exactly the silent failures the paper's experiment quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lexer import C_KEYWORDS, CLexError, CToken, CTokenKind, tokenize_c

_TYPE_KEYWORDS = frozenset({
    "void", "char", "short", "int", "long", "float", "double",
    "signed", "unsigned", "const", "volatile", "static", "extern",
    "register", "inline", "struct", "union", "enum",
})


class CParseError(Exception):
    """The fragment is not syntactically valid in the C subset."""


@dataclass
class CDiagnostic:
    severity: str     # "error" or "warning"
    message: str
    line: int

    def __str__(self) -> str:
        return f"line {self.line}: {self.severity}: {self.message}"


@dataclass
class Symbol:
    name: str
    kind: str                 # "var", "func", "macro", "macro-func"
    arity: int | None = None  # known parameter count, if any


@dataclass
class CheckResult:
    diagnostics: list[CDiagnostic] = field(default_factory=list)
    #: Names of functions the fragment defines or prototypes — the link
    #: surface the surrounding driver refers to.
    defined_functions: set[str] = field(default_factory=set)

    @property
    def errors(self) -> list[CDiagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[CDiagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def detected(self, warnings_detect: bool = True) -> bool:
        """Would the build surface this (as error, or warning if
        ``warnings_detect``)?"""
        if self.errors:
            return True
        return warnings_detect and bool(self.warnings)


def check_c(source: str,
            externals: dict[str, int | None] | None = None,
            constants: frozenset[str] | set[str] | None = None
            ) -> CheckResult:
    """Check one C fragment.

    ``externals`` maps pre-declared function names to their arity (or
    None when unknown) — the kernel environment (``inb``/``outb``) for
    the C corpus, the generated stub prototypes for the CDevil corpus.
    ``constants`` pre-declares value symbols (the enum constants of a
    generated header).  Raises :class:`CParseError` /
    :class:`~.lexer.CLexError` when the fragment is not syntactically
    valid (mutants that do not parse are excluded from the analysis,
    per the paper's rules).
    """
    tokens = tokenize_c(source)
    checker = _Checker(tokens, externals or {}, constants or set())
    checker.run()
    return checker.result


_DEFAULT_EXTERNALS: dict[str, int | None] = {
    "inb": 1, "outb": 2, "inw": 1, "outw": 2, "inl": 1, "outl": 2,
    "insw": 3, "outsw": 3, "insl": 3, "outsl": 3,
    "readl": 1, "writel": 2, "udelay": 1, "printk": None,
    "memcpy": 3, "memset": 3,
}


def kernel_externals() -> dict[str, int | None]:
    """The I/O helpers a Linux 2.2 driver can call without declaring."""
    return dict(_DEFAULT_EXTERNALS)


class _Checker:
    """Single-pass parser + symbol checker."""

    def __init__(self, tokens: list[CToken],
                 externals: dict[str, int | None],
                 constants: frozenset[str] | set[str] = frozenset()):
        self._tokens = tokens
        self._index = 0
        self.result = CheckResult()
        # Scope stack: scopes[0] is the global scope.
        self._scopes: list[dict[str, Symbol]] = [{}]
        for name, arity in externals.items():
            self._scopes[0][name] = Symbol(name, "func", arity)
        for name in constants:
            self._scopes[0][name] = Symbol(name, "macro")

    # ------------------------------------------------------------------
    # Diagnostics and symbols
    # ------------------------------------------------------------------

    def _error(self, message: str, line: int) -> None:
        self.result.diagnostics.append(CDiagnostic("error", message, line))

    def _warning(self, message: str, line: int) -> None:
        self.result.diagnostics.append(
            CDiagnostic("warning", message, line))

    def _declare(self, symbol: Symbol, line: int) -> None:
        scope = self._scopes[-1]
        previous = scope.get(symbol.name)
        if previous is not None:
            if symbol.kind.startswith("macro"):
                self._warning(f"macro {symbol.name!r} redefined", line)
            elif previous.kind == "func" and symbol.kind == "func":
                pass  # redeclaration of a function is legal
            else:
                self._error(f"redefinition of {symbol.name!r}", line)
        scope[symbol.name] = symbol

    def _lookup(self, name: str) -> Symbol | None:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    # ------------------------------------------------------------------
    # Token stream
    # ------------------------------------------------------------------

    @property
    def _current(self) -> CToken:
        return self._tokens[self._index]

    def _advance(self) -> CToken:
        token = self._current
        if token.kind is not CTokenKind.EOF:
            self._index += 1
        return token

    def _check_text(self, text: str) -> bool:
        return self._current.text == text and self._current.kind in (
            CTokenKind.OPERATOR, CTokenKind.PUNCT, CTokenKind.IDENT)

    def _accept(self, text: str) -> bool:
        if self._check_text(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str, context: str) -> None:
        if not self._accept(text):
            raise CParseError(
                f"line {self._current.line}: expected {text!r} {context}, "
                f"found {self._current}")

    def _at_type(self) -> bool:
        return self._current.kind is CTokenKind.IDENT and \
            self._current.text in _TYPE_KEYWORDS

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def run(self) -> None:
        while self._current.kind is not CTokenKind.EOF:
            self._top_level()

    def _top_level(self) -> None:
        token = self._current
        if token.kind is CTokenKind.DIRECTIVE:
            self._advance()
            self._directive(token)
            return
        if self._at_type():
            self._declaration_or_function()
            return
        # Loose statements are allowed so tagged fragments check alone.
        self._statement()

    # ------------------------------------------------------------------
    # Preprocessor
    # ------------------------------------------------------------------

    def _directive(self, token: CToken) -> None:
        text = token.text
        if text.startswith("#include") or text.startswith("#ifdef") or \
                text.startswith("#ifndef") or text.startswith("#endif") or \
                text.startswith("#else") or text.startswith("#undef") or \
                text.startswith("#if") or text.startswith("#pragma"):
            return
        if not text.startswith("#define"):
            raise CParseError(
                f"line {token.line}: unsupported directive {text!r}")
        try:
            body_tokens = tokenize_c(text[len("#define"):])
        except CLexError as error:
            raise CParseError(str(error)) from None
        if not body_tokens or body_tokens[0].kind is not CTokenKind.IDENT:
            raise CParseError(
                f"line {token.line}: malformed #define")
        name = body_tokens[0].text
        if name in C_KEYWORDS:
            raise CParseError(
                f"line {token.line}: cannot #define keyword {name!r}")
        rest = body_tokens[1:-1]  # strip EOF
        # Function-like only when '(' immediately follows the name.
        is_function_like = bool(rest) and rest[0].text == "(" and \
            rest[0].offset == body_tokens[0].offset + len(name)
        param_names: set[str] = set()
        if is_function_like:
            param_names, body = self._parse_macro_params(rest, token.line)
            self._declare(Symbol(name, "macro-func", len(param_names)),
                          token.line)
        else:
            body = rest
            self._declare(Symbol(name, "macro"), token.line)
        # The fragments use every macro they define, so the expansion
        # is compiled: check identifiers in the body now (against the
        # symbols visible so far, like a single expansion would be).
        for body_token in body:
            if body_token.kind is CTokenKind.IDENT and \
                    body_token.text not in C_KEYWORDS and \
                    body_token.text not in param_names:
                if self._lookup(body_token.text) is None:
                    self._error(
                        f"{body_token.text!r} undeclared in macro "
                        f"{name!r}", token.line)

    @staticmethod
    def _parse_macro_params(rest: list[CToken],
                            line: int) -> tuple[set[str], list[CToken]]:
        index = 1  # past '('
        params: set[str] = set()
        expect_name = True
        while index < len(rest) and rest[index].text != ")":
            token = rest[index]
            if expect_name:
                if token.kind is not CTokenKind.IDENT:
                    raise CParseError(
                        f"line {line}: malformed macro parameter list")
                params.add(token.text)
                expect_name = False
            else:
                if token.text != ",":
                    raise CParseError(
                        f"line {line}: malformed macro parameter list")
                expect_name = True
            index += 1
        if index >= len(rest):
            raise CParseError(f"line {line}: unterminated macro "
                              f"parameter list")
        return params, rest[index + 1:]

    # ------------------------------------------------------------------
    # Declarations and functions
    # ------------------------------------------------------------------

    def _skip_type(self) -> None:
        saw = False
        while self._at_type():
            text = self._advance().text
            saw = True
            if text in ("struct", "union", "enum"):
                if self._current.kind is CTokenKind.IDENT:
                    self._advance()
        if not saw:
            raise CParseError(
                f"line {self._current.line}: expected a type")

    def _declaration_or_function(self) -> None:
        self._skip_type()
        while self._accept("*"):
            pass
        name_token = self._current
        if name_token.kind is not CTokenKind.IDENT or \
                name_token.text in C_KEYWORDS:
            raise CParseError(
                f"line {name_token.line}: expected declarator, found "
                f"{name_token}")
        self._advance()
        if self._check_text("("):
            self._function_tail(name_token)
            return
        self._variable_tail(name_token)

    def _function_tail(self, name_token: CToken) -> None:
        self._expect("(", "after function name")
        params: list[str] = []
        if not self._check_text(")"):
            while True:
                if self._accept("void") and self._check_text(")"):
                    break
                self._skip_type()
                while self._accept("*"):
                    pass
                if self._current.kind is CTokenKind.IDENT and \
                        self._current.text not in C_KEYWORDS:
                    params.append(self._advance().text)
                while self._accept("["):
                    self._expect("]", "in array parameter")
                if not self._accept(","):
                    break
        self._expect(")", "after parameters")
        self._declare(Symbol(name_token.text, "func", len(params)),
                      name_token.line)
        self.result.defined_functions.add(name_token.text)
        if self._accept(";"):
            return  # prototype
        self._scopes.append({})
        for param in params:
            self._declare(Symbol(param, "var"), name_token.line)
        self._compound()
        self._scopes.pop()

    def _variable_tail(self, name_token: CToken) -> None:
        while True:
            self._declare(Symbol(name_token.text, "var"), name_token.line)
            while self._accept("["):
                if not self._check_text("]"):
                    self._expression()
                self._expect("]", "in array declarator")
            if self._accept("="):
                self._assignment_expression()
            if self._accept(","):
                while self._accept("*"):
                    pass
                name_token = self._current
                if name_token.kind is not CTokenKind.IDENT:
                    raise CParseError(
                        f"line {name_token.line}: expected declarator")
                self._advance()
                continue
            break
        self._expect(";", "after declaration")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _compound(self) -> None:
        self._expect("{", "to open block")
        self._scopes.append({})
        while not self._check_text("}"):
            if self._current.kind is CTokenKind.EOF:
                raise CParseError("unexpected end of input in block")
            self._statement()
        self._scopes.pop()
        self._expect("}", "to close block")

    def _statement(self) -> None:
        token = self._current
        if token.kind is CTokenKind.DIRECTIVE:
            self._advance()
            self._directive(token)
            return
        if self._check_text("{"):
            self._compound()
            return
        if self._at_type():
            self._declaration_or_function()
            return
        if self._accept(";"):
            return
        if self._accept("if"):
            self._expect("(", "after 'if'")
            self._expression()
            self._expect(")", "after condition")
            self._statement()
            if self._accept("else"):
                self._statement()
            return
        if self._accept("while"):
            self._expect("(", "after 'while'")
            self._expression()
            self._expect(")", "after condition")
            self._statement()
            return
        if self._accept("do"):
            self._statement()
            self._expect("while", "after do body")
            self._expect("(", "after 'while'")
            self._expression()
            self._expect(")", "after condition")
            self._expect(";", "after do/while")
            return
        if self._accept("for"):
            self._expect("(", "after 'for'")
            if not self._check_text(";"):
                if self._at_type():
                    self._declaration_or_function()
                else:
                    self._expression()
                    self._expect(";", "in for header")
            else:
                self._advance()
            if not self._check_text(";"):
                self._expression()
            self._expect(";", "in for header")
            if not self._check_text(")"):
                self._expression()
            self._expect(")", "after for header")
            self._statement()
            return
        if self._accept("return"):
            if not self._check_text(";"):
                self._expression()
            self._expect(";", "after return")
            return
        if self._accept("break") or self._accept("continue"):
            self._expect(";", "after jump statement")
            return
        if self._accept("goto"):
            if self._current.kind is CTokenKind.IDENT:
                self._advance()
            self._expect(";", "after goto")
            return
        self._expression()
        self._expect(";", "after expression statement")

    # ------------------------------------------------------------------
    # Expressions (precedence climbing); returns lvalue-ness
    # ------------------------------------------------------------------

    def _expression(self) -> bool:
        lvalue = self._assignment_expression()
        while self._accept(","):
            lvalue = self._assignment_expression()
        return lvalue

    _ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                   "<<=", ">>="}

    def _assignment_expression(self) -> bool:
        line = self._current.line
        lvalue = self._conditional_expression()
        if self._current.kind is CTokenKind.OPERATOR and \
                self._current.text in self._ASSIGN_OPS:
            operator = self._advance().text
            if not lvalue:
                self._error(
                    f"left operand of {operator!r} is not an lvalue",
                    line)
            self._assignment_expression()
            return False
        return lvalue

    def _conditional_expression(self) -> bool:
        lvalue = self._binary_expression(0)
        if self._accept("?"):
            self._expression()
            self._expect(":", "in conditional expression")
            self._conditional_expression()
            return False
        return lvalue

    _BINARY_LEVELS = [
        ["||"], ["&&"], ["|"], ["^"], ["&"],
        ["==", "!="], ["<", ">", "<=", ">="],
        ["<<", ">>"], ["+", "-"], ["*", "/", "%"],
    ]

    def _binary_expression(self, level: int) -> bool:
        if level >= len(self._BINARY_LEVELS):
            return self._unary_expression()
        lvalue = self._binary_expression(level + 1)
        operators = self._BINARY_LEVELS[level]
        while self._current.kind is CTokenKind.OPERATOR and \
                self._current.text in operators:
            self._advance()
            self._binary_expression(level + 1)
            lvalue = False
        return lvalue

    def _unary_expression(self) -> bool:
        token = self._current
        if token.kind is CTokenKind.OPERATOR:
            if token.text in ("++", "--"):
                self._advance()
                line = self._current.line
                if not self._unary_expression():
                    self._error(
                        f"operand of {token.text!r} is not an lvalue",
                        line)
                return False
            if token.text in ("!", "~", "+", "-"):
                self._advance()
                self._unary_expression()
                return False
            if token.text == "*":
                self._advance()
                self._unary_expression()
                return True  # dereference yields an lvalue
            if token.text == "&":
                self._advance()
                self._unary_expression()
                return False
        if token.kind is CTokenKind.IDENT and token.text == "sizeof":
            self._advance()
            if self._accept("("):
                if self._at_type():
                    self._skip_type()
                    while self._accept("*"):
                        pass
                else:
                    self._expression()
                self._expect(")", "after sizeof")
            else:
                self._unary_expression()
            return False
        return self._postfix_expression()

    def _postfix_expression(self) -> bool:
        lvalue = self._primary_expression()
        while True:
            if self._accept("["):
                self._expression()
                self._expect("]", "after index")
                lvalue = True
            elif self._check_text("."):
                self._advance()
                if self._current.kind is not CTokenKind.IDENT:
                    raise CParseError(
                        f"line {self._current.line}: expected member name")
                self._advance()
                lvalue = True
            elif self._check_text("->"):
                self._advance()
                if self._current.kind is not CTokenKind.IDENT:
                    raise CParseError(
                        f"line {self._current.line}: expected member name")
                self._advance()
                lvalue = True
            elif self._current.kind is CTokenKind.OPERATOR and \
                    self._current.text in ("++", "--"):
                line = self._current.line
                self._advance()
                if not lvalue:
                    self._error("operand of postfix ++/-- is not an "
                                "lvalue", line)
                lvalue = False
            else:
                return lvalue

    def _primary_expression(self) -> bool:
        token = self._current
        if token.kind in (CTokenKind.NUMBER, CTokenKind.CHAR,
                          CTokenKind.STRING):
            self._advance()
            return False
        if self._accept("("):
            if self._at_type():  # cast
                self._skip_type()
                while self._accept("*"):
                    pass
                self._expect(")", "after cast")
                self._unary_expression()
                return False
            lvalue = self._expression()
            self._expect(")", "after expression")
            return lvalue
        if token.kind is CTokenKind.IDENT:
            if token.text in C_KEYWORDS:
                raise CParseError(
                    f"line {token.line}: unexpected keyword "
                    f"{token.text!r} in expression")
            self._advance()
            if self._check_text("("):
                self._call_tail(token)
                return False
            symbol = self._lookup(token.text)
            if symbol is None:
                self._error(f"{token.text!r} undeclared", token.line)
            return symbol is None or symbol.kind in ("var", "macro")
        raise CParseError(
            f"line {token.line}: expected an expression, found {token}")

    def _call_tail(self, name_token: CToken) -> None:
        self._expect("(", "in call")
        argument_count = 0
        if not self._check_text(")"):
            while True:
                self._assignment_expression()
                argument_count += 1
                if not self._accept(","):
                    break
        self._expect(")", "after call arguments")
        symbol = self._lookup(name_token.text)
        if symbol is None:
            # Legal in C89; every 2.2-era kernel build only warns.
            self._warning(
                f"implicit declaration of function {name_token.text!r}",
                name_token.line)
            return
        if symbol.kind == "var":
            self._error(f"called object {name_token.text!r} is not a "
                        f"function", name_token.line)
            return
        if symbol.arity is not None and symbol.arity != argument_count:
            if symbol.kind == "macro-func":
                self._error(
                    f"macro {name_token.text!r} takes {symbol.arity} "
                    f"argument(s), got {argument_count}",
                    name_token.line)
            else:
                self._warning(
                    f"call of {name_token.text!r} with {argument_count} "
                    f"argument(s), expected {symbol.arity}",
                    name_token.line)
