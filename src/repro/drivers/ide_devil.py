"""Devil-based IDE driver (the paper's re-engineered driver).

Uses the stubs generated from ``ide.devil`` and ``piix4.devil`` for
every hardware access.  Because the specification keeps the device/head
fields and the status flags as independent variables, preparing a
command takes 3 more I/O operations than the hand-written driver and
each interrupt costs 2 more — the exact penalties reported in Table 2.
The data phase runs either through a Python loop over the single-word
stub (the paper's "C loop" rows, ~10 % throughput penalty) or through
the ``block`` stubs (the ``rep`` rows, no penalty).
"""

from __future__ import annotations

from ..bus import Bus
from ..devices.ide import SECTOR_SIZE
from ..specs import compile_shipped
from .ide_cstyle import IdeError


class DevilIdeDriver:
    """IDE driver built on the generated Devil interfaces."""

    def __init__(self, bus: Bus, cmd_base: int = 0x1F0,
                 ctrl_base: int = 0x3F6, bm_base: int = 0xC000,
                 debug: bool = False):
        ide_spec = compile_shipped("ide")
        piix4_spec = compile_shipped("piix4")
        self.dev = ide_spec.bind(
            bus, {"cmd": cmd_base, "data": cmd_base,
                  "data32": cmd_base, "ctrl": ctrl_base}, debug=debug)
        self.bm = piix4_spec.bind(
            bus, {"io": bm_base, "dtp": bm_base + 4}, debug=debug)

    # ------------------------------------------------------------------
    # Command setup: 10 I/O operations (7 + 3, see Table 2)
    # ------------------------------------------------------------------

    def _issue(self, command: str, lba: int, count: int) -> None:
        self.dev.set_srst(False)
        self.dev.set_irq_disabled(False)
        self.dev.set_lba_mode(True)
        self.dev.set_drive("MASTER")
        self.dev.set_head((lba >> 24) & 0x0F)
        self.dev.set_sector_count(count & 0xFF)
        self.dev.set_lba_low(lba & 0xFF)
        self.dev.set_lba_mid((lba >> 8) & 0xFF)
        self.dev.set_lba_high((lba >> 16) & 0xFF)
        self.dev.set_command(command)

    def _wait_block(self) -> None:
        """Status check per interrupt: 3 stub calls, 3 I/O operations."""
        if self.dev.get_ide_bsy():
            raise IdeError("device unexpectedly busy")
        if self.dev.get_ide_err():
            raise IdeError(f"device error {self.dev.get_ide_error():#x}")
        if not self.dev.get_ide_drq():
            raise IdeError("no data request pending")

    # ------------------------------------------------------------------
    # PIO transfers
    # ------------------------------------------------------------------

    def set_multiple(self, sectors: int) -> None:
        self._issue("SET_MULTIPLE", 0, sectors)

    def read_sectors(self, lba: int, count: int,
                     sectors_per_irq: int = 1, io_width: int = 16,
                     use_block: bool = True) -> bytes:
        command = "READ_SECTORS" if sectors_per_irq == 1 else \
            "READ_MULTIPLE"
        self._issue(command, lba, count)
        words_per_sector = SECTOR_SIZE * 8 // io_width
        size = io_width // 8
        out = bytearray()
        remaining = count
        while remaining > 0:
            block = min(sectors_per_irq, remaining)
            self._wait_block()
            words = self._read_data(block * words_per_sector, io_width,
                                    use_block)
            for word in words:
                out += word.to_bytes(size, "little")
            remaining -= block
        return bytes(out)

    def _read_data(self, word_count: int, io_width: int,
                   use_block: bool) -> list[int]:
        if use_block:
            if io_width == 32:
                return self.dev.read_ide_data32_block(word_count)
            return self.dev.read_ide_data_block(word_count)
        if io_width == 32:
            getter = self.dev.get_ide_data32
        else:
            getter = self.dev.get_ide_data
        return [getter() for _ in range(word_count)]

    def write_sectors(self, lba: int, data: bytes,
                      sectors_per_irq: int = 1, io_width: int = 16,
                      use_block: bool = True) -> None:
        if len(data) % SECTOR_SIZE:
            raise ValueError("data must be whole sectors")
        count = len(data) // SECTOR_SIZE
        command = "WRITE_SECTORS" if sectors_per_irq == 1 else \
            "WRITE_MULTIPLE"
        self._issue(command, lba, count)
        size = io_width // 8
        position = 0
        remaining = count
        while remaining > 0:
            block = min(sectors_per_irq, remaining)
            self._wait_block()
            chunk = data[position:position + block * SECTOR_SIZE]
            words = [int.from_bytes(chunk[i:i + size], "little")
                     for i in range(0, len(chunk), size)]
            self._write_data(words, io_width, use_block)
            position += block * SECTOR_SIZE
            remaining -= block

    def _write_data(self, words: list[int], io_width: int,
                    use_block: bool) -> None:
        if use_block:
            if io_width == 32:
                self.dev.write_ide_data32_block(words)
            else:
                self.dev.write_ide_data_block(words)
            return
        setter = self.dev.set_ide_data32 if io_width == 32 else \
            self.dev.set_ide_data
        for word in words:
            setter(word)

    def identify(self) -> bytes:
        self.dev.set_irq_disabled(False)
        self.dev.set_lba_mode(True)
        self.dev.set_drive("MASTER")
        self.dev.set_command("IDENTIFY")
        self._wait_block()
        words = self.dev.read_ide_data_block(256)
        return b"".join(word.to_bytes(2, "little") for word in words)

    # ------------------------------------------------------------------
    # Busmaster DMA: 10 further operations around the taskfile
    # ------------------------------------------------------------------

    def _prepare_prd(self, memory: bytearray, prd_address: int,
                     buffer_address: int, byte_count: int) -> None:
        memory[prd_address:prd_address + 4] = \
            buffer_address.to_bytes(4, "little")
        memory[prd_address + 4:prd_address + 6] = \
            (byte_count & 0xFFFF).to_bytes(2, "little")
        memory[prd_address + 6:prd_address + 8] = \
            (0x8000).to_bytes(2, "little")

    def _run_dma(self, direction: str) -> None:
        self.bm.set_bm_error(True)   # write-1-to-clear
        self.bm.set_bm_irq(True)
        self.bm.set_dma_direction(direction)
        self.bm.set_dma_start(True)
        if not self.bm.get_bm_irq() or self.bm.get_bm_error():
            raise IdeError("busmaster did not complete")
        if self.dev.get_ide_bsy() or self.dev.get_ide_err():
            raise IdeError("device error after DMA")
        self.bm.set_dma_start(False)

    def read_dma(self, memory: bytearray, lba: int, count: int,
                 buffer_address: int, prd_address: int = 0x8000) -> bytes:
        self._prepare_prd(memory, prd_address, buffer_address,
                          count * SECTOR_SIZE)
        self._issue("READ_DMA", lba, count)
        self.bm.set_prd_pointer(prd_address)
        self._run_dma("TO_MEMORY")
        return bytes(memory[buffer_address:
                            buffer_address + count * SECTOR_SIZE])

    def write_dma(self, memory: bytearray, lba: int, data: bytes,
                  buffer_address: int, prd_address: int = 0x8000) -> None:
        count = len(data) // SECTOR_SIZE
        memory[buffer_address:buffer_address + len(data)] = data
        self._prepare_prd(memory, prd_address, buffer_address, len(data))
        self._issue("WRITE_DMA", lba, count)
        self.bm.set_prd_pointer(prd_address)
        self._run_dma("FROM_MEMORY")
