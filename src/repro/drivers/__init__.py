"""Driver pairs: hand-crafted "C-style" vs Devil-based.

For each device the paper's evaluation touches, this package provides
two functionally identical drivers:

* a **C-style** driver written in the idiom of Figure 2 — hex
  constants, explicit shifts and masks, direct port accesses — a
  transliteration of the original Linux 2.2 hardware operating code;
* a **Devil-based** driver written in the idiom of Figure 3 — all
  hardware communication through the stubs generated from the shipped
  Devil specification.

Both drive the same behavioural device models over the same simulated
bus, so differences in I/O-operation counts and (modelled) throughput
are attributable to the programming model alone — which is exactly the
comparison of Tables 2, 3 and 4.
"""

from .busmouse_cstyle import CStyleBusmouseDriver
from .busmouse_devil import DevilBusmouseDriver
from .ide_cstyle import CStyleIdeDriver
from .ide_devil import DevilIdeDriver
from .ne2000_cstyle import CStyleNe2000Driver
from .ne2000_devil import DevilNe2000Driver
from .permedia2_cstyle import CStylePermedia2Driver
from .permedia2_devil import DevilPermedia2Driver

__all__ = [
    "CStyleBusmouseDriver",
    "DevilBusmouseDriver",
    "CStyleIdeDriver",
    "DevilIdeDriver",
    "CStyleNe2000Driver",
    "DevilNe2000Driver",
    "CStylePermedia2Driver",
    "DevilPermedia2Driver",
]
