"""Devil-based NE2000 driver.

Every hardware access goes through the stubs generated from
``ne2000.devil``.  Note what disappears compared to the hand-written
driver: no page-select flags OR-ed into command bytes (pre-actions on
the private ``page`` variable do it), no ``E8390_START | E8390_NODMA``
incantations (trigger variables with neutral values compose them), and
no manual split of 16-bit counts into two byte registers (serialized
multi-register variables).
"""

from __future__ import annotations

from ..bus import Bus
from ..specs import compile_shipped

TX_START_PAGE = 0x40
RX_START_PAGE = 0x46
RX_STOP_PAGE = 0x80


class DevilNe2000Driver:
    """NE2000 driver built on the generated Devil interface."""

    def __init__(self, bus: Bus, base: int = 0x300, data_base: int = 0x310,
                 reset_base: int = 0x31F, debug: bool = True):
        spec = compile_shipped("ne2000")
        self.dev = spec.bind(bus, {"base": base, "data": data_base,
                                   "rst": reset_base}, debug=debug)

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------

    def reset(self) -> None:
        self.dev.set_reset(0)

    def init(self, mac: bytes) -> None:
        dev = self.dev
        dev.set_st("STOP")
        dev.set_data_config(word_wide=True, byte_order="LITTLE",
                            long_address=False, loopback_select=True,
                            auto_init_remote=False, fifo_threshold="FIFO8")
        dev.set_remote_byte_count(0)
        dev.set_receive_config(save_errors=False, accept_runts=False,
                               accept_broadcast=True, accept_multicast=False,
                               promiscuous=False, monitor=False)
        dev.set_transmit_config(inhibit_crc=False, loopback="INTERNAL",
                                auto_transmit=False, collision_offset=False)
        dev.set_tx_page_start(TX_START_PAGE)
        dev.set_page_start(RX_START_PAGE)
        dev.set_boundary(RX_START_PAGE)
        dev.set_page_stop(RX_STOP_PAGE)
        self.ack_interrupts()
        dev.set_interrupt_mask(
            mask_packet_received=True, mask_packet_transmitted=True,
            mask_receive_error=True, mask_transmit_error=True,
            mask_overwrite_warning=True, mask_counter_overflow=True,
            mask_dma_complete=False)  # ENISR_ALL leaves RDC unmasked
        for index, byte in enumerate(mac):
            dev.set(f"physical_address{index}", byte)
        dev.set_current_page(RX_START_PAGE)
        dev.set_st("START")
        dev.set_transmit_config(inhibit_crc=False, loopback="NORMAL",
                                auto_transmit=False, collision_offset=False)

    def read_mac(self) -> bytes:
        return bytes(self.dev.get(f"physical_address{i}") for i in range(6))

    def ack_interrupts(self) -> None:
        """Write-1-to-clear every ISR bit."""
        self.dev.set_structure("interrupt_status", {
            name: True for name in (
                "packet_received", "packet_transmitted", "receive_error",
                "transmit_error", "overwrite_warning", "counter_overflow",
                "dma_complete", "reset_status")})

    # ------------------------------------------------------------------
    # Remote DMA helpers
    # ------------------------------------------------------------------

    def _remote_write(self, address: int, data: bytes) -> None:
        if len(data) % 2:
            data += b"\x00"
        self.dev.set_remote_byte_count(len(data))
        self.dev.set_remote_start_address(address)
        self.dev.set_rd("REMOTE_WRITE")
        words = [data[i] | (data[i + 1] << 8)
                 for i in range(0, len(data), 2)]
        self.dev.write_dma_data_block(words)

    def _remote_read(self, address: int, count: int) -> bytes:
        if count % 2:
            count += 1
        self.dev.set_remote_byte_count(count)
        self.dev.set_remote_start_address(address)
        self.dev.set_rd("REMOTE_READ")
        words = self.dev.read_dma_data_block(count // 2)
        return b"".join(word.to_bytes(2, "little") for word in words)

    def _ring_read(self, address: int, count: int) -> bytes:
        """Remote read split at the receive-ring wrap point (the
        DP8390 does not wrap remote DMA; software must)."""
        ring_end = RX_STOP_PAGE << 8
        if address + count <= ring_end:
            return self._remote_read(address, count)
        first = ring_end - address
        head = self._remote_read(address, first)
        tail = self._remote_read(RX_START_PAGE << 8, count - first)
        return head[:first] + tail[:count - first]

    # ------------------------------------------------------------------
    # Transmit / receive
    # ------------------------------------------------------------------

    def send_frame(self, frame: bytes) -> None:
        self._remote_write(TX_START_PAGE << 8, frame)
        self.dev.set_tx_page_start(TX_START_PAGE)
        self.dev.set_tx_byte_count(len(frame))
        self.dev.set_txp("TRANSMIT")

    def poll_receive(self) -> list[bytes]:
        """Drain every complete packet out of the receive ring."""
        frames: list[bytes] = []
        while True:
            current = self.dev.get_current_page()
            boundary = self.dev.get_boundary()
            if boundary == current:
                return frames
            header = self._remote_read(boundary << 8, 4)
            next_page = header[1]
            total = header[2] | (header[3] << 8)
            body = self._ring_read((boundary << 8) + 4, total - 4)
            frames.append(body[:total - 4])
            self.dev.set_boundary(next_page)
