"""Hand-crafted IDE driver (the paper's "standard driver").

Transliterates the Linux 2.2 IDE hardware operating code: raw taskfile
programming (7 I/O operations per command), one status read per
interrupt, ``rep insw``/``rep insl`` block transfers for the data
phase, and busmaster DMA programming in 7 additional operations — the
operation counts of the *standard driver* columns of Table 2.
"""

from __future__ import annotations

from ..bus import Bus
from ..devices.ide import SECTOR_SIZE

# --- begin hardware operating code (macro definitions) ---
IDE_DATA = 0x0
IDE_ERROR = 0x1
IDE_FEATURES = 0x1
IDE_NSECTOR = 0x2
IDE_LBA_LOW = 0x3
IDE_LBA_MID = 0x4
IDE_LBA_HIGH = 0x5
IDE_SELECT = 0x6
IDE_STATUS = 0x7
IDE_COMMAND = 0x7

STATUS_ERR = 0x01
STATUS_DRQ = 0x08
STATUS_BSY = 0x80

WIN_READ = 0x20
WIN_WRITE = 0x30
WIN_MULTREAD = 0xC4
WIN_MULTWRITE = 0xC5
WIN_SETMULT = 0xC6
WIN_READDMA = 0xC8
WIN_WRITEDMA = 0xCA
WIN_IDENTIFY = 0xEC

BM_COMMAND = 0x0
BM_STATUS = 0x2
BM_PRD = 0x4
BM_CMD_START = 0x01
BM_CMD_TO_MEMORY = 0x08
BM_STAT_IRQ = 0x04
BM_STAT_ERR = 0x02
# --- end hardware operating code ---


class IdeError(Exception):
    """Raised when the device reports an error status."""


class CStyleIdeDriver:
    """IDE driver talking to the device with raw port operations."""

    def __init__(self, bus: Bus, cmd_base: int = 0x1F0,
                 ctrl_base: int = 0x3F6, bm_base: int = 0xC000):
        self.bus = bus
        self.cmd_base = cmd_base
        self.ctrl_base = ctrl_base
        self.bm_base = bm_base

    # ------------------------------------------------------------------
    # Command setup: the paper's 7 I/O operations
    # ------------------------------------------------------------------

    def _issue(self, command: int, lba: int, count: int) -> None:
        self.bus.outb(0x00, self.ctrl_base)                       # nIEN=0
        self.bus.outb(0xE0 | ((lba >> 24) & 0x0F),
                      self.cmd_base + IDE_SELECT)
        self.bus.outb(count & 0xFF, self.cmd_base + IDE_NSECTOR)
        self.bus.outb(lba & 0xFF, self.cmd_base + IDE_LBA_LOW)
        self.bus.outb((lba >> 8) & 0xFF, self.cmd_base + IDE_LBA_MID)
        self.bus.outb((lba >> 16) & 0xFF, self.cmd_base + IDE_LBA_HIGH)
        self.bus.outb(command, self.cmd_base + IDE_COMMAND)

    def _wait_block(self) -> int:
        """One status read per interrupt: ack and sanity-check."""
        status = self.bus.inb(self.cmd_base + IDE_STATUS)
        if status & STATUS_ERR:
            raise IdeError(
                f"device error {self.bus.inb(self.cmd_base + IDE_ERROR):#x}")
        if status & STATUS_BSY or not status & STATUS_DRQ:
            raise IdeError(f"unexpected status {status:#04x}")
        return status

    # ------------------------------------------------------------------
    # PIO transfers
    # ------------------------------------------------------------------

    def set_multiple(self, sectors: int) -> None:
        self._issue(WIN_SETMULT, 0, sectors)

    def read_sectors(self, lba: int, count: int,
                     sectors_per_irq: int = 1,
                     io_width: int = 16) -> bytes:
        """PIO read; the standard driver always uses ``rep`` transfers."""
        command = WIN_READ if sectors_per_irq == 1 else WIN_MULTREAD
        self._issue(command, lba, count)
        words_per_sector = SECTOR_SIZE * 8 // io_width
        out = bytearray()
        remaining = count
        while remaining > 0:
            block = min(sectors_per_irq, remaining)
            self._wait_block()
            words = self.bus.block_read(self.cmd_base + IDE_DATA,
                                        block * words_per_sector, io_width)
            size = io_width // 8
            for word in words:
                out += word.to_bytes(size, "little")
            remaining -= block
        return bytes(out)

    def write_sectors(self, lba: int, data: bytes,
                      sectors_per_irq: int = 1,
                      io_width: int = 16) -> None:
        if len(data) % SECTOR_SIZE:
            raise ValueError("data must be whole sectors")
        count = len(data) // SECTOR_SIZE
        command = WIN_WRITE if sectors_per_irq == 1 else WIN_MULTWRITE
        self._issue(command, lba, count)
        size = io_width // 8
        position = 0
        remaining = count
        while remaining > 0:
            block = min(sectors_per_irq, remaining)
            self._wait_block()
            chunk = data[position:position + block * SECTOR_SIZE]
            words = [int.from_bytes(chunk[i:i + size], "little")
                     for i in range(0, len(chunk), size)]
            self.bus.block_write(self.cmd_base + IDE_DATA, words, io_width)
            position += block * SECTOR_SIZE
            remaining -= block
        # The final interrupt signals completion of the last block.

    def identify(self) -> bytes:
        self.bus.outb(0x00, self.ctrl_base)
        self.bus.outb(0xE0, self.cmd_base + IDE_SELECT)
        self.bus.outb(WIN_IDENTIFY, self.cmd_base + IDE_COMMAND)
        self._wait_block()
        words = self.bus.block_read(self.cmd_base + IDE_DATA, 256, 16)
        return b"".join(word.to_bytes(2, "little") for word in words)

    # ------------------------------------------------------------------
    # Busmaster DMA: 7 further operations around the taskfile
    # ------------------------------------------------------------------

    def _prepare_prd(self, memory: bytearray, prd_address: int,
                     buffer_address: int, byte_count: int) -> None:
        memory[prd_address:prd_address + 4] = \
            buffer_address.to_bytes(4, "little")
        memory[prd_address + 4:prd_address + 6] = \
            (byte_count & 0xFFFF).to_bytes(2, "little")
        memory[prd_address + 6:prd_address + 8] = \
            (0x8000).to_bytes(2, "little")

    def read_dma(self, memory: bytearray, lba: int, count: int,
                 buffer_address: int, prd_address: int = 0x8000) -> bytes:
        self._prepare_prd(memory, prd_address, buffer_address,
                          count * SECTOR_SIZE)
        self._issue(WIN_READDMA, lba, count)
        self.bus.outb(0x00, self.bm_base + BM_COMMAND)  # stop engine
        self.bus.outl(prd_address, self.bm_base + BM_PRD)
        self.bus.outb(BM_STAT_IRQ | BM_STAT_ERR, self.bm_base + BM_STATUS)
        self.bus.outb(BM_CMD_START | BM_CMD_TO_MEMORY,
                      self.bm_base + BM_COMMAND)
        status = self.bus.inb(self.bm_base + BM_STATUS)
        if not status & BM_STAT_IRQ or status & BM_STAT_ERR:
            raise IdeError(f"busmaster status {status:#04x}")
        disk_status = self.bus.inb(self.cmd_base + IDE_STATUS)
        if disk_status & STATUS_ERR:
            raise IdeError(f"device status {disk_status:#04x}")
        self.bus.outb(0x00, self.bm_base + BM_COMMAND)
        return bytes(memory[buffer_address:
                            buffer_address + count * SECTOR_SIZE])

    def write_dma(self, memory: bytearray, lba: int, data: bytes,
                  buffer_address: int, prd_address: int = 0x8000) -> None:
        count = len(data) // SECTOR_SIZE
        memory[buffer_address:buffer_address + len(data)] = data
        self._prepare_prd(memory, prd_address, buffer_address, len(data))
        self._issue(WIN_WRITEDMA, lba, count)
        self.bus.outb(0x00, self.bm_base + BM_COMMAND)  # stop engine
        self.bus.outl(prd_address, self.bm_base + BM_PRD)
        self.bus.outb(BM_STAT_IRQ | BM_STAT_ERR, self.bm_base + BM_STATUS)
        self.bus.outb(BM_CMD_START, self.bm_base + BM_COMMAND)
        status = self.bus.inb(self.bm_base + BM_STATUS)
        if not status & BM_STAT_IRQ or status & BM_STAT_ERR:
            raise IdeError(f"busmaster status {status:#04x}")
        disk_status = self.bus.inb(self.cmd_base + IDE_STATUS)
        if disk_status & STATUS_ERR:
            raise IdeError(f"device status {disk_status:#04x}")
        self.bus.outb(0x00, self.bm_base + BM_COMMAND)
