"""Devil-based Permedia2 driver.

Functionally identical to the hand-written driver, but every MMIO
access goes through the stubs generated from ``permedia2.devil``.
Because the specification keeps the rectangle origin and size as
independent variables over their packed registers, each primitive
costs two more I/O operations than the hand-written driver — the
3(#w)+17 against 3(#w)+15 of Table 3.
"""

from __future__ import annotations

from ..bus import Bus
from ..specs import compile_shipped


class DevilPermedia2Driver:
    """Accelerated 2D driver built on the generated Devil interface."""

    def __init__(self, bus: Bus, regs_base: int, fb_base: int = 0,
                 debug: bool = False):
        spec = compile_shipped("permedia2")
        self.dev = spec.bind(bus, {"regs": regs_base, "fb": fb_base},
                             debug=debug)
        #: Total FIFO-wait iterations, for the #w accounting.
        self.wait_iterations = 0

    # ------------------------------------------------------------------
    # FIFO pacing
    # ------------------------------------------------------------------

    def _wait_fifo(self, entries: int) -> None:
        while True:
            self.wait_iterations += 1
            if self.dev.get_fifo_space() >= entries:
                return

    # ------------------------------------------------------------------
    # Mode setting
    # ------------------------------------------------------------------

    def set_mode(self, depth_bits: int, width: int, height: int) -> None:
        depth = {8: "BPP8", 16: "BPP16", 24: "BPP24", 32: "BPP32"}
        self._wait_fifo(5)
        self.dev.set_pixel_depth(depth[depth_bits])
        self.dev.set_scissor_min(scissor_min_x=0, scissor_min_y=0)
        self.dev.set_scissor_max(scissor_max_x=width, scissor_max_y=height)
        self.dev.set_window_origin(window_x=0, window_y=0)
        self.dev.set_fb_write_mask(0xFFFFFFFF)

    # ------------------------------------------------------------------
    # Accelerated primitives
    # ------------------------------------------------------------------

    def fill_rect(self, x: int, y: int, width: int, height: int,
                  color: int) -> None:
        self._wait_fifo(3)
        self.dev.set_block_color(color)
        self.dev.set_fb_write_mask(0xFFFFFFFF)
        self.dev.set_logical_op(0x3)
        self._wait_fifo(2)
        self.dev.set_rect_x(x)
        self.dev.set_rect_y(y)
        self.dev.set_rect_width(width)
        self.dev.set_rect_height(height)
        self._wait_fifo(1)
        self.dev.set_render("FILL_RECT")

    def screen_copy(self, src_x: int, src_y: int, dst_x: int, dst_y: int,
                    width: int, height: int) -> None:
        self._wait_fifo(2)
        self.dev.set_copy_offset(copy_dx=src_x - dst_x,
                                 copy_dy=src_y - dst_y)
        self.dev.set_logical_op(0x3)
        self._wait_fifo(2)
        self.dev.set_rect_x(dst_x)
        self.dev.set_rect_y(dst_y)
        self.dev.set_rect_width(width)
        self.dev.set_rect_height(height)
        self._wait_fifo(1)
        self.dev.set_render("COPY_RECT")

    # ------------------------------------------------------------------
    # Software rendering fallback
    # ------------------------------------------------------------------

    def write_pixels(self, start: int, pixels: list[int]) -> None:
        self._wait_fifo(1)
        self.dev.set_fb_address(start)
        self.dev.write_fb_data_block(pixels)

    def read_pixels(self, start: int, count: int) -> list[int]:
        self._wait_fifo(1)
        self.dev.set_fb_address(start)
        return self.dev.read_fb_data_block(count)
