"""Hand-crafted Permedia2 Xfree86-style driver.

Follows the 3Dlabs Xfree86 driver structure the paper re-engineered:
before every group of drawing-register stores the driver polls the
FIFO-space register until enough entries are free (``#w`` iterations
per wait loop, one I/O operation each), then queues packed 32-bit
register writes and finally the render command.  Fill-rectangle and
screen-copy are the two accelerated primitives (Tables 3 and 4).
"""

from __future__ import annotations

from ..bus import Bus

# --- begin hardware operating code (register offsets, in 32-bit words) ---
PM2_FIFO_SPACE = 0x0
PM2_BLOCK_COLOR = 0x1
PM2_RECT_ORIGIN = 0x2
PM2_RECT_SIZE = 0x3
PM2_COPY_OFFSET = 0x4
PM2_RENDER = 0x5
PM2_STATUS = 0x6
PM2_MODE = 0x7
PM2_SCISSOR_MIN = 0x8
PM2_SCISSOR_MAX = 0x9
PM2_WRITE_MASK = 0xA
PM2_LOGIC_OP = 0xB
PM2_WINDOW_ORIGIN = 0xC
PM2_FB_ADDR = 0xD

RENDER_FILL = 0x1
RENDER_COPY = 0x2

DEPTH_CODE = {8: 0x0, 16: 0x1, 24: 0x2, 32: 0x3}
# --- end hardware operating code ---


class CStylePermedia2Driver:
    """Accelerated 2D driver using raw MMIO stores."""

    def __init__(self, bus: Bus, regs_base: int, fb_base: int = 0):
        self.bus = bus
        self.regs = regs_base
        self.fb_base = fb_base
        #: Total FIFO-wait iterations, for the #w accounting.
        self.wait_iterations = 0

    # ------------------------------------------------------------------
    # FIFO pacing
    # ------------------------------------------------------------------

    def _wait_fifo(self, entries: int) -> None:
        while True:
            self.wait_iterations += 1
            if self.bus.inl(self.regs + PM2_FIFO_SPACE) >= entries:
                return

    # ------------------------------------------------------------------
    # Mode setting (once per screen configuration)
    # ------------------------------------------------------------------

    def set_mode(self, depth_bits: int, width: int, height: int) -> None:
        self._wait_fifo(5)
        self.bus.outl(DEPTH_CODE[depth_bits], self.regs + PM2_MODE)
        self.bus.outl(0x00000000, self.regs + PM2_SCISSOR_MIN)
        self.bus.outl((height << 16) | width, self.regs + PM2_SCISSOR_MAX)
        self.bus.outl(0x00000000, self.regs + PM2_WINDOW_ORIGIN)
        self.bus.outl(0xFFFFFFFF, self.regs + PM2_WRITE_MASK)

    # ------------------------------------------------------------------
    # Accelerated primitives
    # ------------------------------------------------------------------

    def fill_rect(self, x: int, y: int, width: int, height: int,
                  color: int) -> None:
        self._wait_fifo(3)
        self.bus.outl(color, self.regs + PM2_BLOCK_COLOR)
        self.bus.outl(0xFFFFFFFF, self.regs + PM2_WRITE_MASK)
        self.bus.outl(0x3, self.regs + PM2_LOGIC_OP)
        self._wait_fifo(2)
        self.bus.outl((y << 16) | x, self.regs + PM2_RECT_ORIGIN)
        self.bus.outl((height << 16) | width, self.regs + PM2_RECT_SIZE)
        self._wait_fifo(1)
        self.bus.outl(RENDER_FILL, self.regs + PM2_RENDER)

    def screen_copy(self, src_x: int, src_y: int, dst_x: int, dst_y: int,
                    width: int, height: int) -> None:
        delta_x = (src_x - dst_x) & 0xFFFF
        delta_y = (src_y - dst_y) & 0xFFFF
        self._wait_fifo(2)
        self.bus.outl((delta_y << 16) | delta_x,
                      self.regs + PM2_COPY_OFFSET)
        self.bus.outl(0x3, self.regs + PM2_LOGIC_OP)
        self._wait_fifo(2)
        self.bus.outl((dst_y << 16) | dst_x, self.regs + PM2_RECT_ORIGIN)
        self.bus.outl((height << 16) | width, self.regs + PM2_RECT_SIZE)
        self._wait_fifo(1)
        self.bus.outl(RENDER_COPY, self.regs + PM2_RENDER)

    # ------------------------------------------------------------------
    # Software rendering fallback (framebuffer aperture)
    # ------------------------------------------------------------------

    def write_pixels(self, start: int, pixels: list[int]) -> None:
        self._wait_fifo(1)
        self.bus.outl(start, self.regs + PM2_FB_ADDR)
        self.bus.block_write(self.fb_base, pixels, 32)

    def read_pixels(self, start: int, count: int) -> list[int]:
        self._wait_fifo(1)
        self.bus.outl(start, self.regs + PM2_FB_ADDR)
        return self.bus.block_read(self.fb_base, count, 32)
