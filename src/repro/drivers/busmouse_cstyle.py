"""Hand-crafted Logitech busmouse driver (Figure 2 idiom).

A line-for-line transliteration of the original Linux 2.2
``logibusmouse`` hardware operating code: macro-style hex constants,
explicit nibble masking and shifting, direct port accesses.  This is
the kind of code the paper's mutation analysis shows to be fragile —
every constant below is a silent-failure point.
"""

from __future__ import annotations

from ..bus import Bus

# --- begin hardware operating code (macro definitions, Figure 2a) ---
MSE_DATA_PORT = 0x0
MSE_SIGNATURE_PORT = 0x1
MSE_CONTROL_PORT = 0x2
MSE_CONFIG_PORT = 0x3

MSE_READ_X_LOW = 0x80
MSE_READ_X_HIGH = 0xA0
MSE_READ_Y_LOW = 0xC0
MSE_READ_Y_HIGH = 0xE0

MSE_INT_ON = 0x00
MSE_INT_OFF = 0x10

MSE_CONFIG_BYTE = 0x91
MSE_DEFAULT_MODE = 0x90
MSE_SIGNATURE_BYTE = 0xA5
# --- end hardware operating code ---


class CStyleBusmouseDriver:
    """Mouse driver talking to the device with raw port operations."""

    def __init__(self, bus: Bus, base: int):
        self.bus = bus
        self.base = base

    # ------------------------------------------------------------------
    # Detection and configuration
    # ------------------------------------------------------------------

    def probe(self) -> bool:
        """Detect the mouse: the signature register must echo a byte."""
        self.bus.outb(MSE_CONFIG_BYTE, self.base + MSE_CONFIG_PORT)
        self.bus.outb(MSE_SIGNATURE_BYTE, self.base + MSE_SIGNATURE_PORT)
        if self.bus.inb(self.base + MSE_SIGNATURE_PORT) != \
                MSE_SIGNATURE_BYTE:
            return False
        self.bus.outb(MSE_DEFAULT_MODE, self.base + MSE_CONFIG_PORT)
        return True

    def enable_interrupts(self) -> None:
        self.bus.outb(MSE_INT_ON, self.base + MSE_CONTROL_PORT)

    def disable_interrupts(self) -> None:
        self.bus.outb(MSE_INT_OFF, self.base + MSE_CONTROL_PORT)

    # ------------------------------------------------------------------
    # Interrupt handler body (Figure 2b)
    # ------------------------------------------------------------------

    def read_event(self) -> tuple[int, int, int]:
        """Read one (dx, dy, buttons) event and re-arm the interrupt."""
        # --- begin hardware operating code (Figure 2b) ---
        self.bus.outb(MSE_READ_X_LOW, self.base + MSE_CONTROL_PORT)
        dx = self.bus.inb(self.base + MSE_DATA_PORT) & 0xF
        self.bus.outb(MSE_READ_X_HIGH, self.base + MSE_CONTROL_PORT)
        dx |= (self.bus.inb(self.base + MSE_DATA_PORT) & 0xF) << 4
        self.bus.outb(MSE_READ_Y_LOW, self.base + MSE_CONTROL_PORT)
        dy = self.bus.inb(self.base + MSE_DATA_PORT) & 0xF
        self.bus.outb(MSE_READ_Y_HIGH, self.base + MSE_CONTROL_PORT)
        buttons = self.bus.inb(self.base + MSE_DATA_PORT)
        dy |= (buttons & 0xF) << 4
        buttons = (buttons >> 5) & 0x07
        self.bus.outb(MSE_INT_ON, self.base + MSE_CONTROL_PORT)
        # --- end hardware operating code ---
        return (_signed8(dx), _signed8(dy), buttons)


def _signed8(value: int) -> int:
    return value - 256 if value >= 128 else value
