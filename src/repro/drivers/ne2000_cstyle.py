"""Hand-crafted NE2000 driver (Linux ``ne.c``/``8390.c`` idiom).

Raw port accesses with the traditional macro constants: command
register values are built with OR-ed hex flags, the remote-DMA window
is programmed byte by byte, and the packet ring header is decoded with
explicit masks — all the patterns the paper's mutation analysis
identifies as silent-failure points.
"""

from __future__ import annotations

from ..bus import Bus

# --- begin hardware operating code (macro definitions) ---
E8390_CMD = 0x00
EN0_STARTPG = 0x01
EN0_STOPPG = 0x02
EN0_BOUNDARY = 0x03
EN0_TPSR = 0x04
EN0_TCNTLO = 0x05
EN0_TCNTHI = 0x06
EN0_ISR = 0x07
EN0_RSARLO = 0x08
EN0_RSARHI = 0x09
EN0_RCNTLO = 0x0A
EN0_RCNTHI = 0x0B
EN0_RXCR = 0x0C
EN0_TXCR = 0x0D
EN0_DCFG = 0x0E
EN0_IMR = 0x0F
EN1_PHYS = 0x01
EN1_CURPAG = 0x07

E8390_STOP = 0x01
E8390_START = 0x02
E8390_TRANS = 0x04
E8390_RREAD = 0x08
E8390_RWRITE = 0x10
E8390_NODMA = 0x20
E8390_PAGE0 = 0x00
E8390_PAGE1 = 0x40

ENISR_RX = 0x01
ENISR_TX = 0x02
ENISR_RDC = 0x40
ENISR_ALL = 0x3F

NE_DATAPORT = 0x10
NE_RESET = 0x1F

TX_START_PAGE = 0x40
RX_START_PAGE = 0x46
RX_STOP_PAGE = 0x80
# --- end hardware operating code ---


class CStyleNe2000Driver:
    """NE2000 driver talking to the NIC with raw port operations."""

    def __init__(self, bus: Bus, base: int = 0x300):
        self.bus = bus
        self.base = base

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------

    def reset(self) -> None:
        self.bus.outb(self.bus.inb(self.base + NE_RESET),
                      self.base + NE_RESET)

    def init(self, mac: bytes) -> None:
        base = self.base
        self.bus.outb(E8390_STOP | E8390_NODMA | E8390_PAGE0,
                      base + E8390_CMD)
        self.bus.outb(0x49, base + EN0_DCFG)      # word-wide, FIFO8
        self.bus.outb(0x00, base + EN0_RCNTLO)
        self.bus.outb(0x00, base + EN0_RCNTHI)
        self.bus.outb(0x04, base + EN0_RXCR)      # accept broadcast
        self.bus.outb(0x02, base + EN0_TXCR)      # internal loopback
        self.bus.outb(TX_START_PAGE, base + EN0_TPSR)
        self.bus.outb(RX_START_PAGE, base + EN0_STARTPG)
        self.bus.outb(RX_START_PAGE, base + EN0_BOUNDARY)
        self.bus.outb(RX_STOP_PAGE, base + EN0_STOPPG)
        self.bus.outb(0xFF, base + EN0_ISR)       # ack everything
        self.bus.outb(ENISR_ALL, base + EN0_IMR)
        self.bus.outb(E8390_STOP | E8390_NODMA | E8390_PAGE1,
                      base + E8390_CMD)
        for index in range(6):
            self.bus.outb(mac[index], base + EN1_PHYS + index)
        self.bus.outb(RX_START_PAGE, base + EN1_CURPAG)
        self.bus.outb(E8390_START | E8390_NODMA | E8390_PAGE0,
                      base + E8390_CMD)
        self.bus.outb(0x00, base + EN0_TXCR)      # normal operation

    def read_mac(self) -> bytes:
        self.bus.outb(E8390_START | E8390_NODMA | E8390_PAGE1,
                      self.base + E8390_CMD)
        mac = bytes(self.bus.inb(self.base + EN1_PHYS + i)
                    for i in range(6))
        self.bus.outb(E8390_START | E8390_NODMA | E8390_PAGE0,
                      self.base + E8390_CMD)
        return mac

    # ------------------------------------------------------------------
    # Remote DMA helpers
    # ------------------------------------------------------------------

    def _remote_setup(self, address: int, count: int, write: bool) -> None:
        base = self.base
        self.bus.outb(E8390_START | E8390_NODMA | E8390_PAGE0,
                      base + E8390_CMD)
        self.bus.outb(count & 0xFF, base + EN0_RCNTLO)
        self.bus.outb((count >> 8) & 0xFF, base + EN0_RCNTHI)
        self.bus.outb(address & 0xFF, base + EN0_RSARLO)
        self.bus.outb((address >> 8) & 0xFF, base + EN0_RSARHI)
        command = E8390_RWRITE if write else E8390_RREAD
        self.bus.outb(E8390_START | command | E8390_PAGE0,
                      base + E8390_CMD)

    def _remote_write(self, address: int, data: bytes) -> None:
        if len(data) % 2:
            data += b"\x00"
        self._remote_setup(address, len(data), write=True)
        words = [data[i] | (data[i + 1] << 8)
                 for i in range(0, len(data), 2)]
        self.bus.block_write(self.base + NE_DATAPORT, words, 16)
        self.bus.outb(ENISR_RDC, self.base + EN0_ISR)

    def _remote_read(self, address: int, count: int) -> bytes:
        if count % 2:
            count += 1
        self._remote_setup(address, count, write=False)
        words = self.bus.block_read(self.base + NE_DATAPORT, count // 2, 16)
        self.bus.outb(ENISR_RDC, self.base + EN0_ISR)
        return b"".join(word.to_bytes(2, "little") for word in words)

    def _ring_read(self, address: int, count: int) -> bytes:
        """Remote read that splits at the receive-ring wrap point.

        The DP8390's remote DMA runs straight through the end of the
        on-board RAM; software must split a read that crosses the ring
        boundary (the Linux driver's well-known "ring wrap" handling).
        """
        ring_end = RX_STOP_PAGE << 8
        if address + count <= ring_end:
            return self._remote_read(address, count)
        first = ring_end - address
        head = self._remote_read(address, first)
        tail = self._remote_read(RX_START_PAGE << 8, count - first)
        return head[:first] + tail[:count - first]

    # ------------------------------------------------------------------
    # Transmit / receive
    # ------------------------------------------------------------------

    def send_frame(self, frame: bytes) -> None:
        self._remote_write(TX_START_PAGE << 8, frame)
        base = self.base
        self.bus.outb(TX_START_PAGE, base + EN0_TPSR)
        self.bus.outb(len(frame) & 0xFF, base + EN0_TCNTLO)
        self.bus.outb((len(frame) >> 8) & 0xFF, base + EN0_TCNTHI)
        self.bus.outb(E8390_START | E8390_TRANS | E8390_NODMA,
                      base + E8390_CMD)
        self.bus.outb(ENISR_TX, base + EN0_ISR)

    def poll_receive(self) -> list[bytes]:
        """Drain every complete packet out of the receive ring."""
        base = self.base
        frames: list[bytes] = []
        while True:
            self.bus.outb(E8390_START | E8390_NODMA | E8390_PAGE1,
                          base + E8390_CMD)
            current = self.bus.inb(base + EN1_CURPAG)
            self.bus.outb(E8390_START | E8390_NODMA | E8390_PAGE0,
                          base + E8390_CMD)
            boundary = self.bus.inb(base + EN0_BOUNDARY)
            if boundary == current:
                self.bus.outb(ENISR_RX, base + EN0_ISR)
                return frames
            header = self._remote_read(boundary << 8, 4)
            next_page = header[1]
            total = header[2] | (header[3] << 8)
            body = self._ring_read((boundary << 8) + 4, total - 4)
            frames.append(body[:total - 4])
            self.bus.outb(next_page, base + EN0_BOUNDARY)
