"""Devil-based Logitech busmouse driver (Figure 3 idiom).

All hardware communication goes through the stubs generated from
``busmouse.devil``; the driver itself only manipulates abstract values
(`'CONFIGURATION'`, `'ENABLE'`, decoded signed deltas), exactly like
Figure 3b of the paper:

.. code-block:: c

    bm_get_mouse_state();
    dy = bm_get_dy();
    buttons = bm_get_buttons();
"""

from __future__ import annotations

from ..bus import Bus
from ..devil.runtime import DeviceInstance
from ..specs import compile_shipped

SIGNATURE_BYTE = 0xA5


class DevilBusmouseDriver:
    """Mouse driver built on the generated Devil interface."""

    def __init__(self, bus: Bus, base: int, debug: bool = True):
        spec = compile_shipped("busmouse")
        self.dev: DeviceInstance = spec.bind(bus, {"base": base},
                                             debug=debug)

    # ------------------------------------------------------------------
    # Detection and configuration
    # ------------------------------------------------------------------

    def probe(self) -> bool:
        self.dev.set_config("CONFIGURATION")
        self.dev.set_signature(SIGNATURE_BYTE)
        if self.dev.get_signature() != SIGNATURE_BYTE:
            return False
        self.dev.set_config("DEFAULT_MODE")
        return True

    def enable_interrupts(self) -> None:
        self.dev.set_interrupt("ENABLE")

    def disable_interrupts(self) -> None:
        self.dev.set_interrupt("DISABLE")

    # ------------------------------------------------------------------
    # Interrupt handler body (Figure 3b)
    # ------------------------------------------------------------------

    def read_event(self) -> tuple[int, int, int]:
        """Read one (dx, dy, buttons) event and re-arm the interrupt."""
        state = self.dev.get_mouse_state()
        dx = self.dev.get_dx()
        dy = self.dev.get_dy()
        buttons = state["buttons"]
        self.dev.set_interrupt("ENABLE")
        return (dx, dy, buttons)
