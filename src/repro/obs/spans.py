"""Variable-level telemetry spans and the collecting observer.

A *span* covers one public stub call — ``get_dx()``,
``set_left_dac_output(...)``, ``read_ide_data_block(256)`` — and records
the device, the device variable (or structure), the access kind, the
execution strategy, the pre/post/set actions that fired, and the exact
port I/O the call caused.  The flat :attr:`repro.bus.Bus.trace` thereby
becomes *attributable*: every port access belongs to exactly one device
variable.

Spans never nest.  The runtime's action machinery re-enters the stub
layer (a ``pre`` action on an index register calls the index variable's
setter; the specializer inlines the same call; the generated backend
routes it through the public method), and the three execution
strategies re-enter at different depths.  The collector therefore
counts depth and only materialises the *outermost* stub call — which is
exactly the granularity the paper argues for: driver-visible operations
on device variables, not raw signal events.  Parity of span streams
across strategies is asserted by ``tests/test_obs.py``.

The collector is attached to a :class:`repro.bus.Bus` via its
``collector`` attribute; instrumented stubs find it there at call time,
so a single bound instance can be observed, detached and re-observed
without rebinding.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from .metrics import MetricsRegistry


@dataclass(frozen=True)
class IoEvent:
    """One bus operation attributed to a span.

    ``op`` follows :class:`repro.bus.IoTraceEntry` ('r', 'w', 'rb',
    'wb'); ``count`` is the word count of a block transfer (1 for
    single accesses); ``value`` is the transferred value for single
    accesses and ``None`` for block transfers (the per-word data lives
    in the bus trace).  ``elided=True`` marks a read served from the
    runtime's register shadow cache: no bus operation happened (the
    event does not appear in the bus trace), and ``value`` is the
    shadow's view of the register's variable bits.
    """

    op: str
    port: int
    value: int | None
    width: int
    count: int = 1
    elided: bool = False


@dataclass
class Span:
    """One observed device-variable access."""

    device: str
    #: Public stub name (``get_dx``, ``write_fb_data_block``...).
    stub: str
    #: Device variable or structure the stub accesses.
    variable: str
    #: ``get``/``set``/``get_struct``/``set_struct``/``block_read``/
    #: ``block_write``.
    kind: str
    strategy: str
    start: float = 0.0
    duration: float = 0.0
    seq: int = 0
    io: list[IoEvent] = field(default_factory=list)
    #: ``(action_kind, target)`` pairs in firing order; action_kind is
    #: ``pre``/``post``/``reg-set`` (register-attached) or ``var-set``
    #: (variable-attached, after the write).
    actions: list[tuple[str, str]] = field(default_factory=list)
    #: True when at least one write this span deferred was merged into
    #: a transactional flush (set by :meth:`Collector.mark_coalesced`).
    coalesced: bool = False
    error: str | None = None

    @property
    def io_ops(self) -> int:
        """Real bus operations attributed to the span (elided excluded)."""
        return sum(1 for event in self.io if not event.elided)

    @property
    def io_words(self) -> int:
        return sum(event.count for event in self.io if not event.elided)

    @property
    def io_elided(self) -> int:
        """Reads served from the shadow cache instead of the bus."""
        return sum(1 for event in self.io if event.elided)

    def signature(self) -> tuple:
        """Strategy- and timing-independent identity, for parity checks."""
        return (self.device, self.stub, self.variable, self.kind,
                tuple((e.op, e.port, e.value, e.width, e.count, e.elided)
                      for e in self.io),
                tuple(self.actions), self.coalesced, self.error)

    def to_dict(self) -> dict:
        """Plain-data form (the JSONL record)."""
        return {
            "device": self.device,
            "stub": self.stub,
            "variable": self.variable,
            "kind": self.kind,
            "strategy": self.strategy,
            "seq": self.seq,
            "start_us": self.start * 1e6,
            "dur_us": self.duration * 1e6,
            "io": [{"op": e.op, "port": e.port, "value": e.value,
                    "width": e.width, "count": e.count,
                    "elided": e.elided}
                   for e in self.io],
            "actions": [{"kind": kind, "target": target}
                        for kind, target in self.actions],
            "coalesced": self.coalesced,
            "error": self.error,
        }


class _WorkerBuffer:
    """Per-thread span state: the open span, depth, finished spans.

    One buffer per thread that ever reported to the collector.  All
    fields are touched only by the owning thread (lock-free hot path);
    the collector merges the ``spans`` lists at read time.
    """

    __slots__ = ("open", "depth", "spans")

    def __init__(self):
        self.open: Span | None = None
        self.depth = 0
        self.spans: list[Span] = []


class Collector:
    """Receives span, action and I/O events; aggregates metrics.

    One collector can observe several buses and devices at once (the
    IDE + PIIX4 machine binds two instances to one bus).  Port→register
    attribution maps are registered per device at bind time so the
    metrics rollups can report per-register traffic without the bus
    knowing anything about Devil models.

    Thread model: spans never nest *per thread*.  Each reporting thread
    owns a private :class:`_WorkerBuffer` (open span, depth counter,
    finished-span list), so the per-event hot path — ``io_event``,
    ``record_action`` — appends to thread-local state without any lock
    and parallel workers never serialize on tracing.  Only span
    *completion* takes the collector lock (sequence number, metrics
    rollup), once per stub call.  :attr:`spans` merges every worker's
    buffer ordered by completion sequence; under a single thread this
    is byte-identical to the pre-concurrency behaviour.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 clock=time.perf_counter):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock
        #: ``port -> (device, register)`` for metrics attribution.
        self._port_map: dict[int, tuple[str, str]] = {}
        #: Guards the buffer list, sequence numbering and every metrics
        #: mutation (rollups and unattributed-I/O counters).
        self._lock = threading.Lock()
        self._buffers: list[_WorkerBuffer] = []
        self._tls = threading.local()
        self._seq = itertools.count()

    def _buffer(self) -> _WorkerBuffer:
        buffer = getattr(self._tls, "buffer", None)
        if buffer is None:
            buffer = _WorkerBuffer()
            self._tls.buffer = buffer
            with self._lock:
                self._buffers.append(buffer)
        return buffer

    @property
    def spans(self) -> list[Span]:
        """Every finished span, merged across workers in seq order."""
        with self._lock:
            merged = [span for buffer in self._buffers
                      for span in buffer.spans]
        merged.sort(key=lambda span: span.seq)
        return merged

    # -- wiring ---------------------------------------------------------

    def register_ports(self, device: str,
                       ports: dict[int, str]) -> None:
        """Record that ``ports`` (absolute) belong to ``device``'s
        registers, for per-register rollups."""
        for port, register in ports.items():
            self._port_map[port] = (device, register)

    # -- span lifecycle (called by instrumented stubs) -------------------

    def span_start(self, device: str, stub: str, variable: str,
                   kind: str, strategy: str) -> None:
        buffer = self._buffer()
        if buffer.depth:
            buffer.depth += 1
            return
        buffer.depth = 1
        buffer.open = Span(device=device, stub=stub, variable=variable,
                           kind=kind, strategy=strategy,
                           start=self._clock())

    def span_end(self, error: str | None = None) -> None:
        buffer = self._buffer()
        buffer.depth -= 1
        span = buffer.open
        if buffer.depth or span is None:
            if error is not None and span is not None \
                    and span.error is None:
                span.error = error
            return
        buffer.open = None
        span.duration = self._clock() - span.start
        if error is not None and span.error is None:
            span.error = error
        with self._lock:
            span.seq = next(self._seq)
            buffer.spans.append(span)
            self._roll_up(span)

    # -- event feeds (bus and runtimes) ---------------------------------

    def io_event(self, op: str, port: int, value: int | None,
                 width: int, count: int = 1,
                 elided: bool = False) -> None:
        span = self._buffer().open
        if span is not None:
            span.io.append(IoEvent(op, port, value, width, count, elided))
            return
        with self._lock:
            if elided:
                self.metrics.counter("io.elided_unattributed",
                                     op=op).inc()
            else:
                self.metrics.counter("io.unattributed", op=op).inc()

    def mark_coalesced(self) -> None:
        """Flag the open span: its deferred write joined a txn flush."""
        span = self._buffer().open
        if span is not None:
            span.coalesced = True

    def record_action(self, kind: str, target: str) -> None:
        span = self._buffer().open
        if span is not None:
            span.actions.append((kind, target))

    def record_trace_drops(self, dropped: int) -> None:
        """Surface the bus ring-buffer drop count (absolute value)."""
        with self._lock:
            counter = self.metrics.counter("bus.trace_dropped")
            if dropped > counter.value:
                counter.inc(dropped - counter.value)

    # -- metrics rollups -------------------------------------------------

    def _roll_up(self, span: Span) -> None:
        metrics = self.metrics
        device, variable = span.device, span.variable
        metrics.counter("var.calls", device=device, variable=variable,
                        kind=span.kind).inc()
        metrics.counter("dev.calls", device=device).inc()
        if span.io:
            metrics.counter("var.io_ops", device=device,
                            variable=variable).inc(span.io_ops)
            metrics.counter("var.io_words", device=device,
                            variable=variable).inc(span.io_words)
            metrics.counter("dev.io_ops", device=device).inc(span.io_ops)
            elided = span.io_elided
            if elided:
                metrics.counter("var.io_elided", device=device,
                                variable=variable).inc(elided)
        if span.coalesced:
            metrics.counter("var.coalesced", device=device,
                            variable=variable).inc()
        metrics.histogram("var.us", device=device,
                          variable=variable).observe(span.duration * 1e6)
        for event in span.io:
            if event.elided:
                continue  # no bus traffic to attribute
            owner = self._port_map.get(event.port)
            if owner is None:
                continue
            owner_device, register = owner
            direction = "reads" if event.op in ("r", "rb") else "writes"
            metrics.counter(f"reg.{direction}", device=owner_device,
                            register=register).inc()
            metrics.counter("reg.words", device=owner_device,
                            register=register).inc(event.count)

    # -- cross-process export ---------------------------------------------

    def ingest(self, spans) -> None:
        """Merge spans exported from another collector (or process).

        The span-export half of the process fleet's merge step: worker
        processes collect spans with their own collectors, ship them
        back as plain pickled :class:`Span` objects, and the parent
        ingests them here.  Each span is renumbered into this
        collector's sequence (in the order given — callers pass worker
        batches in the worker's completion order) and rolled up into
        the metrics registry exactly as if it had completed locally, so
        ``dev.calls``/``var.*``/``reg.*`` totals are backend-agnostic.
        Timestamps are left untouched; they are worker-process clocks
        and remain comparable only within one worker.
        """
        buffer = self._buffer()
        with self._lock:
            for span in spans:
                span.seq = next(self._seq)
                buffer.spans.append(span)
                self._roll_up(span)

    # -- convenience ------------------------------------------------------

    def clear(self) -> None:
        """Drop every finished span and restart sequence numbering.

        Open spans (a worker mid-call) are left alone; they land in the
        fresh numbering when they complete.
        """
        with self._lock:
            for buffer in self._buffers:
                buffer.spans.clear()
            self._seq = itertools.count()

    def signatures(self) -> list[tuple]:
        return [span.signature() for span in self.spans]


# ---------------------------------------------------------------------------
# Stub instrumentation (shared by the interpreter and the specializer)
# ---------------------------------------------------------------------------


def wrap_stub(bus, device: str, stub: str, variable: str, kind: str,
              strategy: str, func):
    """Wrap one bound stub so each call opens/closes a span.

    The wrapper resolves ``bus.collector`` per call: when no collector
    is attached the only cost is one attribute load and an ``is None``
    test, and attaching/detaching a collector needs no rebinding.
    """

    def observed(*args, **kwargs):
        collector = bus.collector
        if collector is None:
            return func(*args, **kwargs)
        collector.span_start(device, stub, variable, kind, strategy)
        try:
            result = func(*args, **kwargs)
        except BaseException as error:
            collector.span_end(error=type(error).__name__)
            raise
        collector.span_end()
        return result

    observed.__name__ = getattr(func, "__name__", stub)
    observed.__doc__ = getattr(func, "__doc__", None)
    observed.__wrapped__ = func
    return observed


def stub_catalog(model) -> list[tuple[str, str, str]]:
    """``(stub_name, variable, kind)`` for every public stub of a model.

    Mirrors the attachment rules of
    :meth:`repro.devil.runtime.DeviceInstance._attach_stubs` — the same
    catalogue drives instrumentation of interpreted and specialized
    instances, so the two strategies cannot disagree about what is
    observable.
    """
    def readable(variable):
        return variable.memory or all(
            model.registers[c.register].readable
            for c in variable.chunks)

    def writable(variable):
        return variable.memory or all(
            model.registers[c.register].writable
            for c in variable.chunks)

    catalog: list[tuple[str, str, str]] = []
    for variable in model.public_variables():
        name = variable.name
        if readable(variable):
            catalog.append((f"get_{name}", name, "get"))
        if writable(variable):
            catalog.append((f"set_{name}", name, "set"))
        if variable.behaviors.block:
            if readable(variable):
                catalog.append((f"read_{name}_block", name, "block_read"))
            if writable(variable):
                catalog.append((f"write_{name}_block", name,
                                "block_write"))
    for structure in model.structures.values():
        members = [model.variables[m] for m in structure.members]
        if all(readable(m) for m in members):
            catalog.append((f"get_{structure.name}", structure.name,
                            "get_struct"))
        if all(writable(m) for m in members):
            catalog.append((f"set_{structure.name}", structure.name,
                            "set_struct"))
    return catalog


def instrument_instance(instance) -> None:
    """Wrap every public stub attribute of a bound ``DeviceInstance``.

    Called once at bind time (interpreted strategy) or after
    specialization replaced the stub attributes; also registers the
    instance's absolute port→register map with any future collector via
    ``instance._obs_ports`` (the CLI and tests feed it to
    :meth:`Collector.register_ports`).
    """
    model = instance.model
    bus = instance.bus
    device = model.name
    strategy = instance.strategy
    for stub, variable, kind in stub_catalog(model):
        func = getattr(instance, stub, None)
        if func is None:
            continue
        setattr(instance, stub,
                wrap_stub(bus, device, stub, variable, kind, strategy,
                          func))
    instance._obs_ports = port_map(instance)


def port_map(instance) -> dict[int, str]:
    """``absolute port -> register name`` for one bound instance."""
    return model_port_map(instance.model, instance.bases)


def model_port_map(model, bases: dict[str, int]) -> dict[int, str]:
    """``absolute port -> register name`` for a model at ``bases``.

    Read and write ports are both attributed; when two registers share
    a port (index-addressed register files) the first declaration wins,
    which matches how the hardware multiplexes them.
    """
    ports: dict[int, str] = {}
    for name, register in model.registers.items():
        for port in (register.read_port, register.write_port):
            if port is None:
                continue
            absolute = bases[port[0]] + port[1]
            ports.setdefault(absolute, name)
    return ports


class BusObserver:
    """Adapter giving generated stub modules ``bus.collector`` semantics.

    An observe-mode generated module reports to whatever ``observer``
    it was constructed with.  Handing it a ``BusObserver`` makes that
    report resolve the bus's attached collector *per call* — a
    generated instance can then be observed, detached and re-observed
    without reconstruction, exactly like instrumented interpreted and
    specialized instances (whose wrappers resolve ``bus.collector``
    themselves).
    """

    __slots__ = ("_bus",)

    def __init__(self, bus):
        self._bus = bus

    def span_start(self, device, stub, variable, kind, strategy):
        collector = self._bus.collector
        if collector is not None:
            collector.span_start(device, stub, variable, kind, strategy)

    def span_end(self, error=None):
        collector = self._bus.collector
        if collector is not None:
            collector.span_end(error)

    def record_action(self, kind, target):
        collector = self._bus.collector
        if collector is not None:
            collector.record_action(kind, target)

    def io_event(self, op, port, value, width, count=1, elided=False):
        """Report an elided (cache-served) access for a generated stub.

        Real bus operations reach the collector through the bus itself;
        this path exists for shadow-cache hits, which cause no bus
        traffic.  It shares the bus's ``tracing`` gate so instrumented
        strategies agree on when elided events are visible.
        """
        bus = self._bus
        if bus.tracing:
            collector = bus.collector
            if collector is not None:
                collector.io_event(op, port, value, width, count, elided)

    def mark_coalesced(self):
        collector = self._bus.collector
        if collector is not None:
            collector.mark_coalesced()
