"""Shipped driver workloads, shared by tests, benchmarks and the CLI.

One simulated machine and one representative driver workload per
shipped specification.  ``tests/test_specialize.py`` runs them to prove
three-way trace parity, ``tests/test_obs.py`` to prove three-way *span*
parity, and ``devilc trace`` replays them to produce example telemetry
from a real driver-shaped interaction.

The base addresses are the canonical ones the whole repository uses
(``tests/conftest.py`` re-exports them), chosen to match the historical
PC I/O map where one exists.
"""

from __future__ import annotations

import threading

from ..bus import Bus
from ..devices.busmouse import REGION_SIZE as MOUSE_REGION
from ..devices.busmouse import BusmouseModel
from ..devices.cs4236 import REGION_SIZE as CS_REGION
from ..devices.cs4236 import Cs4236Model
from ..devices.dma8237 import REGION_SIZE as DMA_REGION
from ..devices.dma8237 import Dma8237Model
from ..devices.ide import REGION_SIZE as IDE_REGION
from ..devices.ide import IdeControlPort, IdeDiskModel
from ..devices.ne2000 import REGION_SIZE as NE_REGION
from ..devices.ne2000 import (
    Ne2000DataPort,
    Ne2000Model,
    Ne2000ResetPort,
)
from ..devices.permedia2 import REGION_SIZE as PM2_REGION
from ..devices.permedia2 import Permedia2Aperture, Permedia2Model
from ..devices.pic8259 import REGION_SIZE as PIC_REGION
from ..devices.pic8259 import Pic8259Model
from ..devices.piix4 import REGION_SIZE as BM_REGION
from ..devices.piix4 import Piix4Model
from ..specs import compile_shipped
from .spans import BusObserver, model_port_map

MOUSE_BASE = 0x23C
DMA_BASE = 0x00
PIC_BASE = 0x20
CS_BASE = 0x534
IDE_BASE = 0x1F0
IDE_CTRL = 0x3F6
BM_BASE = 0xC000
NE_BASE = 0x300
NE_DATA = 0x310
NE_RESET = 0x31F
PM2_REGS = 0xF000
PM2_FB = 0xF800

STRATEGIES = ("interpret", "specialize", "generated")


# ---------------------------------------------------------------------------
# Machines (one per shipped spec)
# ---------------------------------------------------------------------------


def build_machine(name: str, tracing: bool = True,
                  trace_limit: int | None = None):
    """A fresh simulated machine for spec ``name``.

    Returns ``(bus, aux, bases)``: the tracing bus, auxiliary device
    models the workload pokes directly, and the base-address dict.
    """
    bus = Bus(tracing=tracing, trace_limit=trace_limit)
    if name == "busmouse":
        mouse = BusmouseModel()
        mouse.move(5, -3)
        mouse.set_buttons(0b101)
        bus.map_device(MOUSE_BASE, MOUSE_REGION, mouse, "busmouse")
        return bus, {"mouse": mouse}, {"base": MOUSE_BASE}
    if name == "dma8237":
        dma = Dma8237Model()
        bus.map_device(DMA_BASE, DMA_REGION, dma, "dma8237")
        return bus, {"dma": dma}, {"base": DMA_BASE}
    if name == "pic8259":
        pic = Pic8259Model()
        bus.map_device(PIC_BASE, PIC_REGION, pic, "pic8259")
        return bus, {"pic": pic}, {"base": PIC_BASE}
    if name == "ne2000":
        nic = Ne2000Model()
        bus.map_device(NE_BASE, NE_REGION, nic, "ne2000")
        bus.map_device(NE_DATA, 2, Ne2000DataPort(nic), "ne2000-data")
        bus.map_device(NE_RESET, 1, Ne2000ResetPort(nic), "ne2000-reset")
        return bus, {"nic": nic}, \
            {"base": NE_BASE, "data": NE_DATA, "rst": NE_RESET}
    if name == "cs4236":
        chip = Cs4236Model()
        bus.map_device(CS_BASE, CS_REGION, chip, "cs4236")
        return bus, {"chip": chip}, {"base": CS_BASE}
    if name == "ide":
        disk = IdeDiskModel(total_sectors=16)
        for index in range(0, len(disk.store), 3):
            disk.store[index] = (index * 7) & 0xFF
        bus.map_device(IDE_BASE, IDE_REGION, disk, "ide")
        bus.map_device(IDE_CTRL, 1, IdeControlPort(disk), "ide-ctrl")
        return bus, {"disk": disk}, \
            {"cmd": IDE_BASE, "data": IDE_BASE, "data32": IDE_BASE,
             "ctrl": IDE_CTRL}
    if name == "piix4":
        disk = IdeDiskModel(total_sectors=16)
        memory = bytearray(1 << 16)
        busmaster = Piix4Model(disk, memory)
        bus.map_device(BM_BASE, BM_REGION, busmaster, "piix4")
        return bus, {"busmaster": busmaster, "memory": memory}, \
            {"io": BM_BASE, "dtp": BM_BASE + 4}
    if name == "permedia2":
        gpu = Permedia2Model(width=64, height=48)
        bus.map_device(PM2_REGS, PM2_REGION, gpu, "permedia2")
        bus.map_device(PM2_FB, 1, Permedia2Aperture(gpu), "permedia2-fb")
        return bus, {"gpu": gpu}, {"regs": PM2_REGS, "fb": PM2_FB}
    raise ValueError(f"no machine builder for {name!r}")


# ---------------------------------------------------------------------------
# Driver workloads
# ---------------------------------------------------------------------------


def _drive_busmouse(stubs, aux):
    results = [stubs.set_config("CONFIGURATION"),
               stubs.set_signature(0xA5),
               stubs.get_signature(),
               stubs.set_interrupt("ENABLE"),
               stubs.get_mouse_state(),
               stubs.get_dx(), stubs.get_dy(), stubs.get_buttons()]
    aux["mouse"].move(-2, 7)
    results += [stubs.get_mouse_state(), stubs.get_dx()]
    return results


def _drive_dma8237(stubs, aux):
    stubs.set_master_clear(0)
    stubs.set_address1(0x1234)
    stubs.set_count1(0x0010)
    stubs.set_channel_mode(mode_channel=1, mode_transfer="READ_MEM",
                           mode_autoinit=False, mode_down=False,
                           mode_kind="SINGLE")
    stubs.set_channel_mask(mask_channel=1, mask_set="MASK_OFF")
    stubs.set_request(req_channel=1, req_set="CLEAR")
    stubs.set_mask_bits(0b0101)
    results = [stubs.get_mask_bits(), stubs.get_status(),
               stubs.get_reached_tc(), stubs.get_dma_requests(),
               stubs.get_address1(), stubs.get_count1()]
    stubs.set_clear_mask(0)
    return results


def _drive_pic8259(stubs, aux):
    stubs.set_init(addr_vector=0, ltim="EDGE", adi="INTERVAL8",
                   sngl="CASCADED", ic4=True, vector_base=0x20,
                   slaves=0x04, sfnm=False, buffered=False,
                   master="BUF_SLAVE", aeoi=False,
                   microprocessor="X8086")
    stubs.set_device_mode("operation")
    stubs.set_irq_mask(0xFE)
    results = [stubs.get_device_mode(), stubs.get_irq_mask()]
    aux["pic"].raise_irq(1)
    stubs.set_read_select(special_mask="NO_SMM_ACTION", poll=False,
                          reg_select="READ_IRR")
    results.append(stubs.get_irq_register())
    stubs.set_eoi(eoi_kind="NON_SPECIFIC_EOI", eoi_level=0)
    return results


def _drive_ne2000(stubs, aux):
    stubs.set_st("START")
    stubs.set_remote_byte_count(8)
    stubs.set_remote_start_address(0x4000)
    stubs.set_rd("REMOTE_WRITE")
    stubs.write_dma_data_block([0x0102, 0x0304, 0x0506, 0x0708])
    stubs.set_remote_byte_count(8)
    stubs.set_remote_start_address(0x4000)
    stubs.set_rd("REMOTE_READ")
    return [stubs.read_dma_data_block(4),
            bytes(aux["nic"].ram[0:8])]


def _drive_cs4236(stubs, aux):
    stubs.set_left_dac_output(left_dac_attenuation=9,
                              left_dac_mute=True, left_dac_pad=False)
    stubs.set_left_adc_input(left_input_gain=3, left_mic_boost=True,
                             left_input_source="MIC",
                             left_input_pad=False)
    results = [stubs.get_version(), stubs.get_chip_id()]
    stubs.set_mic_left_volume(7)
    results.append(stubs.get_mic_left_volume())
    stubs.set_ACF(True)
    results.append(aux["chip"].extended_mode)
    return results


def _drive_ide(stubs, aux):
    stubs.set_irq_disabled(True)
    stubs.set_lba_mode(True)
    stubs.set_drive("MASTER")
    stubs.set_head(0)
    stubs.set_sector_count(1)
    stubs.set_lba_low(2)
    stubs.set_lba_mid(0)
    stubs.set_lba_high(0)
    stubs.set_command("READ_SECTORS")
    results = [stubs.get_ide_bsy(), stubs.get_ide_drq(),
               stubs.get_ide_err()]
    results.append(stubs.read_ide_data_block(256))
    results += [stubs.get_alt_status(), stubs.get_ide_error()]
    return results


def _drive_piix4(stubs, aux):
    stubs.set_prd_pointer(0x00010000)
    stubs.set_dma_direction("TO_MEMORY")
    results = [stubs.get_prd_pointer(), stubs.get_dma_direction()]
    stubs.set_dma_start(False)
    results += [stubs.get_bm_active(), stubs.get_bm_error(),
                stubs.get_bm_irq(), stubs.get_drive0_dma_capable()]
    return results


def _drive_permedia2(stubs, aux):
    stubs.set_pixel_depth("BPP8")
    stubs.set_scissor_min(scissor_min_x=0, scissor_min_y=0)
    stubs.set_scissor_max(scissor_max_x=64, scissor_max_y=48)
    stubs.set_window_origin(window_x=0, window_y=0)
    stubs.set_fb_write_mask(0xFFFFFFFF)
    stubs.set_logical_op(3)
    results = [stubs.get_fifo_space()]
    stubs.set_block_color(0x55)
    stubs.set_rect_x(2)
    stubs.set_rect_y(3)
    stubs.set_rect_width(8)
    stubs.set_rect_height(4)
    stubs.set_render("FILL_RECT")
    results += [stubs.get_graphics_busy(), stubs.get_fifo_overflow()]
    stubs.set_fb_address(0)
    stubs.write_fb_data_block([0x11, 0x22, 0x33])
    stubs.set_fb_address(0)
    results.append(stubs.read_fb_data_block(3))
    return results


WORKLOADS = {
    "busmouse": _drive_busmouse,
    "dma8237": _drive_dma8237,
    "pic8259": _drive_pic8259,
    "ne2000": _drive_ne2000,
    "cs4236": _drive_cs4236,
    "ide": _drive_ide,
    "piix4": _drive_piix4,
    "permedia2": _drive_permedia2,
}


# ---------------------------------------------------------------------------
# Transactional workload variants (shadow cache + txn coalescing)
# ---------------------------------------------------------------------------


def _drive_ide_txn(stubs, aux):
    """The IDE read-sector setup, written the coalescing way.

    The eight field writes of the command block collapse to one write
    per register (device/head composes three fields into one ``outb``),
    and the driver's defensive readbacks of the device/head fields are
    served by the shadow cache when it is enabled.
    """
    with stubs.txn():
        stubs.set_irq_disabled(True)
        stubs.set_lba_mode(True)
        stubs.set_drive("MASTER")
        stubs.set_head(0)
        stubs.set_sector_count(1)
        stubs.set_lba_low(2)
        stubs.set_lba_mid(0)
        stubs.set_lba_high(0)
    results = [stubs.get_lba_mode(), stubs.get_drive(),
               stubs.get_head(), stubs.get_sector_count()]
    stubs.set_command("READ_SECTORS")
    results += [stubs.get_ide_bsy(), stubs.get_ide_drq(),
                stubs.get_ide_err()]
    results.append(stubs.read_ide_data_block(256))
    results += [stubs.get_alt_status(), stubs.get_ide_error(),
                stubs.get_lba_low()]
    return results


def _drive_ne2000_txn(stubs, aux):
    """Remote-DMA programming with composed command writes.

    ``START`` and the remote-DMA command live in one command register;
    each transaction issues them as a single composed write (the
    ``START | REMOTE_*`` idiom of the hand-written driver), while the
    byte-count/address setup keeps its program order inside the flush.
    """
    with stubs.txn():
        stubs.set_remote_byte_count(8)
        stubs.set_remote_start_address(0x4000)
        stubs.set_st("START")
        stubs.set_rd("REMOTE_WRITE")
    stubs.write_dma_data_block([0x0102, 0x0304, 0x0506, 0x0708])
    with stubs.txn():
        stubs.set_remote_byte_count(8)
        stubs.set_remote_start_address(0x4000)
        stubs.set_rd("REMOTE_READ")
    return [stubs.read_dma_data_block(4),
            bytes(aux["nic"].ram[0:8])]


def _drive_permedia2_txn(stubs, aux):
    """A fill-rect primitive queued with packed-register writes.

    The four rectangle fields span two packed registers; a transaction
    writes each packed word once, exactly like the hand-written
    driver's two MMIO stores (Table 3's baseline).
    """
    stubs.set_pixel_depth("BPP8")
    stubs.set_fb_write_mask(0xFFFFFFFF)
    with stubs.txn():
        stubs.set_block_color(0x55)
        stubs.set_rect_x(2)
        stubs.set_rect_y(3)
        stubs.set_rect_width(8)
        stubs.set_rect_height(4)
    stubs.set_render("FILL_RECT")
    results = [stubs.get_graphics_busy(), stubs.get_fifo_space()]
    with stubs.txn():
        stubs.set_rect_x(12)
        stubs.set_rect_y(13)
        stubs.set_rect_width(4)
        stubs.set_rect_height(2)
        stubs.set_render("FILL_RECT")
    results += [stubs.get_graphics_busy(), stubs.get_fifo_overflow()]
    return results


#: Workloads exercising ``txn()`` blocks and shadow-served readbacks;
#: run by the parity suite with the cache both on and off.
TXN_WORKLOADS = {
    "ide": _drive_ide_txn,
    "ne2000": _drive_ne2000_txn,
    "permedia2": _drive_permedia2_txn,
}


# ---------------------------------------------------------------------------
# Binding under any strategy (telemetry-aware)
# ---------------------------------------------------------------------------

#: ``(spec name, observe) -> generated stub class`` — exec'd once each.
_GENERATED_CACHE: dict[tuple[str, bool], type] = {}
_GENERATED_LOCK = threading.Lock()


def load_generated(name: str, observe: bool = False):
    """exec the generated module for ``name``; returns its stub class.

    Thread-safe (hit: one dict probe; miss: emit + exec exactly once
    under a lock) so concurrent fleet binds share one stub class.
    """
    key = (name, observe)
    cls = _GENERATED_CACHE.get(key)
    if cls is None:
        with _GENERATED_LOCK:
            cls = _GENERATED_CACHE.get(key)
            if cls is None:
                source = compile_shipped(name).emit_python(
                    observe=observe)
                namespace: dict = {}
                exec(compile(source, f"{name}_stubs.py", "exec"),
                     namespace)
                (cls,) = [value for attr, value in namespace.items()
                          if attr.endswith("Stubs")]
                _GENERATED_CACHE[key] = cls
    return cls


def bind_stubs(name: str, strategy: str, bus: Bus, bases: dict,
               debug: bool = False, shadow_cache: bool = False):
    """Bind spec ``name`` to ``bus`` under one execution strategy.

    Honours the :mod:`repro.obs` enabled flag uniformly: interpreted
    and specialized instances instrument themselves at bind time, and
    the generated path selects the observe-mode module with a
    :class:`~repro.obs.spans.BusObserver` so all three report to
    ``bus.collector``.
    """
    from . import is_enabled
    if strategy == "generated":
        spec = compile_shipped(name)
        observe = is_enabled()
        cls = load_generated(name, observe=observe)
        arguments = [bases[param] for param in spec.model.params]
        if observe:
            stubs = cls(bus, *arguments, debug=debug,
                        shadow_cache=shadow_cache,
                        observer=BusObserver(bus))
            stubs._obs_ports = model_port_map(spec.model, bases)
            return stubs
        return cls(bus, *arguments, debug=debug,
                   shadow_cache=shadow_cache)
    return compile_shipped(name).bind(bus, bases, debug=debug,
                                      strategy=strategy,
                                      shadow_cache=shadow_cache)


def run_workload(name: str, strategy: str, debug: bool = False,
                 trace_limit: int | None = None,
                 shadow_cache: bool = False):
    """Build the machine, bind, drive; returns the evidence triple.

    ``(results, trace list, accounting snapshot)`` — the comparison
    payload of the three-way parity tests.
    """
    bus, aux, bases = build_machine(name, trace_limit=trace_limit)
    stubs = bind_stubs(name, strategy, bus, bases, debug,
                       shadow_cache=shadow_cache)
    results = WORKLOADS[name](stubs, aux)
    return results, list(bus.trace), bus.accounting.snapshot()


def run_txn_workload(name: str, strategy: str, debug: bool = False,
                     trace_limit: int | None = None,
                     shadow_cache: bool = False):
    """Like :func:`run_workload` for the transactional variants."""
    bus, aux, bases = build_machine(name, trace_limit=trace_limit)
    stubs = bind_stubs(name, strategy, bus, bases, debug,
                       shadow_cache=shadow_cache)
    results = TXN_WORKLOADS[name](stubs, aux)
    return results, list(bus.trace), bus.accounting.snapshot()
