"""Zero-dependency metrics registry: counters, gauges, histograms, sinks.

The runtime previously exposed exactly one aggregate view of device
traffic — the flat :class:`repro.bus.IoAccounting` counter block.  This
module generalises that into a small metrics registry in the style of
``prometheus_client`` (names + label sets, counters, gauges and
histograms) without taking any dependency: the telemetry collector
feeds it per-variable, per-register and per-driver rollups, the fleet's
live plane (:mod:`repro.obs.live`) feeds it request latencies and
queue-depth gauges, and pluggable sinks receive snapshots for export.

Everything here is plain data; nothing imports from :mod:`repro.devil`
or :mod:`repro.bus`, so the bus and runtime can import this package
without cycles.

Thread model: every instrument mutation (``inc``/``set``/``observe``)
and every multi-field read (``snapshot``/``quantile``) takes that
instrument's own lock, so instruments shared between fleet workers are
exact — no torn ``+=``, no half-updated histogram ever observed.  The
registry's get-or-create is separately thread-safe (hit = one dict
probe, miss registers under the registry lock).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterable

#: Default histogram bucket upper bounds (microseconds-friendly
#: log-ish scale, similar to Prometheus defaults).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                   500.0, 1000.0, 2500.0, 5000.0, 10000.0)

#: Bucket bounds for fleet request latencies (microseconds).  Fleet
#: requests span tens of port operations — with the sleeping latency
#: model a request runs milliseconds, so the span-level default scale
#: (capped at 10ms) would dump everything into the overflow bucket.
LATENCY_BUCKETS_US = (50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
                      5000.0, 10000.0, 25000.0, 50000.0, 100000.0,
                      250000.0, 500000.0, 1000000.0)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing counter (updates are atomic)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc by {amount})")
        with self._lock:
            self.value += amount

    def raise_to(self, value: int) -> None:
        """Monotonically lift the counter to an absolute ``value``.

        The idiom for re-publishing an external absolute counter (the
        bus's ``trace_dropped``) without double counting: repeated
        calls with the same or a smaller value are no-ops.
        """
        with self._lock:
            if value > self.value:
                self.value = value

    def snapshot(self) -> dict:
        return {"type": "counter", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down: queue depths, occupancy.

    Unlike :class:`Counter` a gauge represents the *current* level of
    something, so it supports ``set``/``inc``/``dec``.  All updates are
    atomic under the instrument's own lock.
    """

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def snapshot(self) -> dict:
        return {"type": "gauge", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """A histogram with fixed upper-bound buckets plus sum/min/max."""

    __slots__ = ("name", "labels", "buckets", "bucket_counts",
                 "count", "total", "minimum", "maximum", "_lock")

    def __init__(self, name: str, labels: dict[str, str],
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = dict(labels)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        #: One count per bound, plus a final +Inf overflow slot.
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Returns the upper bound of the bucket where the cumulative
        count crosses ``q * count`` — a conservative (over-) estimate,
        which is the right bias for a stall detector sizing its window
        from the observed p95.  Values landing in the +Inf overflow
        bucket resolve to the exact observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self.count:
                return 0.0
            target = q * self.count
            cumulative = 0
            for bound, bucket_count in zip(self.buckets,
                                           self.bucket_counts):
                cumulative += bucket_count
                if cumulative >= target:
                    return bound
            return float(self.maximum)  # overflow bucket

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        The merge seam for the process fleet: workers observe request
        latencies into private histograms and ship plain snapshot
        dicts at sync points (locks don't pickle; snapshots do).
        Bucket bounds must match exactly.
        """
        keys = [repr(bound) for bound in self.buckets] + ["+Inf"]
        buckets = snapshot["buckets"]
        if sorted(buckets) != sorted(keys):
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds differ "
                f"({sorted(buckets)} vs {sorted(keys)})")
        with self._lock:
            for index, key in enumerate(keys):
                self.bucket_counts[index] += buckets[key]
            self.count += snapshot["count"]
            self.total += snapshot["sum"]
            for bound_name, better in (("min", min), ("max", max)):
                theirs = snapshot[bound_name]
                if theirs is None:
                    continue
                attr = "minimum" if bound_name == "min" else "maximum"
                ours = getattr(self, attr)
                setattr(self, attr,
                        theirs if ours is None else better(ours, theirs))

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": "histogram", "name": self.name,
                    "labels": dict(self.labels),
                    "count": self.count, "sum": self.total,
                    "min": self.minimum, "max": self.maximum,
                    "buckets": {
                        **{repr(bound): count for bound, count
                           in zip(self.buckets, self.bucket_counts)},
                        "+Inf": self.bucket_counts[-1]}}


#: A sink receives the full registry snapshot (a list of metric dicts).
Sink = Callable[[list[dict]], None]


class MetricsRegistry:
    """Get-or-create registry of named, labelled metrics.

    ``counter("var.calls", device="ide", variable="head")`` returns the
    same :class:`Counter` for the same name + label set, so call sites
    never hold references across rebinds.  :meth:`flush` pushes a
    snapshot to every registered sink — the pluggable-export point
    (JSONL writers, CI trend collectors, test probes).

    Get-or-create is thread-safe (hit = one dict probe, miss registers
    under a lock), so fleet workers can share one registry.  Mutating a
    metric (``inc``/``set``/``observe``) is also atomic — each
    instrument carries its own lock — so concurrent workers hammering
    one shared counter lose no updates.
    """

    def __init__(self):
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}
        self._sinks: list[Sink] = []
        self._lock = threading.Lock()

    # -- construction ---------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = ("counter", name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = self._metrics[key] = Counter(name, labels)
        return metric  # type: ignore[return-value]

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = ("gauge", name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = self._metrics[key] = Gauge(name, labels)
        return metric  # type: ignore[return-value]

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        key = ("histogram", name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = self._metrics[key] = Histogram(
                        name, labels, buckets)
        return metric  # type: ignore[return-value]

    # -- inspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> list[dict]:
        """Every metric as plain data, deterministically ordered."""
        return [self._metrics[key].snapshot()
                for key in sorted(self._metrics)]

    def value(self, name: str, **labels: str) -> int | float:
        """Current value of a counter or gauge (0 if it never fired)."""
        for kind in ("counter", "gauge"):
            metric = self._metrics.get((kind, name, _label_key(labels)))
            if metric is not None:
                return metric.value  # type: ignore[union-attr]
        return 0

    def find(self, name: str) -> list[Counter | Gauge | Histogram]:
        """Every metric registered under ``name``, any label set."""
        return [metric for (_, metric_name, _), metric
                in sorted(self._metrics.items())
                if metric_name == name]

    # -- sinks ----------------------------------------------------------

    def add_sink(self, sink: Sink) -> None:
        self._sinks.append(sink)

    def flush(self) -> list[dict]:
        """Snapshot once and hand it to every sink; returns it too."""
        snapshot = self.snapshot()
        for sink in self._sinks:
            sink(snapshot)
        return snapshot
