"""Zero-dependency metrics registry: counters, histograms, sinks.

The runtime previously exposed exactly one aggregate view of device
traffic — the flat :class:`repro.bus.IoAccounting` counter block.  This
module generalises that into a small metrics registry in the style of
``prometheus_client`` (names + label sets, counters and histograms)
without taking any dependency: the telemetry collector feeds it
per-variable, per-register and per-driver rollups, and pluggable sinks
receive snapshots for export.

Everything here is plain data; nothing imports from :mod:`repro.devil`
or :mod:`repro.bus`, so the bus and runtime can import this package
without cycles.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterable

#: Default histogram bucket upper bounds (microseconds-friendly
#: log-ish scale, similar to Prometheus defaults).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                   500.0, 1000.0, 2500.0, 5000.0, 10000.0)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """A histogram with fixed upper-bound buckets plus sum/min/max."""

    __slots__ = ("name", "labels", "buckets", "bucket_counts",
                 "count", "total", "minimum", "maximum")

    def __init__(self, name: str, labels: dict[str, str],
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = dict(labels)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        #: One count per bound, plus a final +Inf overflow slot.
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {"type": "histogram", "name": self.name,
                "labels": dict(self.labels),
                "count": self.count, "sum": self.total,
                "min": self.minimum, "max": self.maximum,
                "buckets": {
                    **{repr(bound): count for bound, count
                       in zip(self.buckets, self.bucket_counts)},
                    "+Inf": self.bucket_counts[-1]}}


#: A sink receives the full registry snapshot (a list of metric dicts).
Sink = Callable[[list[dict]], None]


class MetricsRegistry:
    """Get-or-create registry of named, labelled metrics.

    ``counter("var.calls", device="ide", variable="head")`` returns the
    same :class:`Counter` for the same name + label set, so call sites
    never hold references across rebinds.  :meth:`flush` pushes a
    snapshot to every registered sink — the pluggable-export point
    (JSONL writers, CI trend collectors, test probes).

    Get-or-create is thread-safe (hit = one dict probe, miss registers
    under a lock), so fleet workers can share one registry.  Mutating a
    metric (``inc``/``observe``) is *not* internally locked — the
    telemetry collector serializes every rollup under its own lock, and
    per-worker metrics should use distinct label sets.
    """

    def __init__(self):
        self._metrics: dict[tuple, Counter | Histogram] = {}
        self._sinks: list[Sink] = []
        self._lock = threading.Lock()

    # -- construction ---------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = ("counter", name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = self._metrics[key] = Counter(name, labels)
        return metric  # type: ignore[return-value]

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        key = ("histogram", name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = self._metrics[key] = Histogram(
                        name, labels, buckets)
        return metric  # type: ignore[return-value]

    # -- inspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> list[dict]:
        """Every metric as plain data, deterministically ordered."""
        return [self._metrics[key].snapshot()
                for key in sorted(self._metrics)]

    def value(self, name: str, **labels: str) -> int:
        """Current value of a counter (0 if it never fired)."""
        key = ("counter", name, _label_key(labels))
        metric = self._metrics.get(key)
        return metric.value if metric is not None else 0  # type: ignore

    def find(self, name: str) -> list[Counter | Histogram]:
        """Every metric registered under ``name``, any label set."""
        return [metric for (_, metric_name, _), metric
                in sorted(self._metrics.items())
                if metric_name == name]

    # -- sinks ----------------------------------------------------------

    def add_sink(self, sink: Sink) -> None:
        self._sinks.append(sink)

    def flush(self) -> list[dict]:
        """Snapshot once and hand it to every sink; returns it too."""
        snapshot = self.snapshot()
        for sink in self._sinks:
            sink(snapshot)
        return snapshot
