"""The live fleet telemetry plane: heartbeats, health, flight recorder.

Everything PR 2 built is *post-hoc*: spans, metrics and traces become
visible when a run detaches or a sync point merges worker reports.  A
fleet serving traffic needs the opposite — a view of queue depths,
worker liveness and request latency **while the run is in flight**,
because a server cannot wait for drain to notice a dead worker.  This
module is that view, spanning both fleet backends:

* **Heartbeats** — each worker publishes a :class:`Heartbeat` at every
  request boundary: thread workers into a :class:`HeartbeatBoard`
  (single-writer slots, one atomic reference store per publish),
  process workers into a seqlock
  :class:`~repro.engine.shm.HeartbeatSlot` in shared memory.  Either
  way the parent reads the latest state without locks, queues or sync
  points.
* **Health** — :class:`FleetHealth` folds heartbeats, liveness and
  queue/batch depths into per-worker ``healthy`` / ``slow`` /
  ``stalled`` / ``dead`` statuses.  The stall detector is the
  heartbeat's *absence of progress*: a worker whose inflight request
  has outlived the detector window (``stall_after`` seconds, or N× the
  observed p95 request latency) is stalled even though it is alive —
  precisely the wedge that a drain would hang on.
* **Flight recorder** — :class:`FlightRecorder` keeps a bounded ring
  of recent structured events (submit, batch-flush, sync, worker
  error, stall transitions).  On a stall or worker failure the ring is
  dumped automatically, so a wedged run leaves a post-mortem instead
  of a hang.
* **Monitor** — :class:`LiveMonitor` is the periodic sampler behind
  ``devil fleet --health-log`` and ``devil top``: every tick it runs
  the health check, appends heartbeat/health JSONL records (the
  schema in ``docs/trace_schema.json``), and flushes metric sinks.

Exactness contract: none of this touches the bus or the device models.
Heartbeats ride side channels (a Python dict; a dedicated shared
memory slot), latency histograms live in a :class:`MetricsRegistry`
off the request path, and a fleet built without ``telemetry=`` pays
one ``is None`` test per submit.  The parity harness runs byte-equal
with the plane on or off.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import IO, Callable

from .metrics import LATENCY_BUCKETS_US, Histogram, MetricsRegistry

HEALTHY = "healthy"
SLOW = "slow"
STALLED = "stalled"
DEAD = "dead"

#: Default stall window when no latency has been observed yet, and the
#: floor under the p95-derived window (a fleet of microsecond requests
#: should not flag a scheduling hiccup as a stall).
MIN_STALL_SECONDS = 0.25

#: Stall window = this many times the observed p95 request latency.
STALL_FACTOR = 8.0


# ---------------------------------------------------------------------------
# Heartbeats
# ---------------------------------------------------------------------------


@dataclass
class Heartbeat:
    """One worker's most recent state, published at request boundaries.

    ``timestamp`` is the worker's last-progress instant
    (``time.monotonic``, comparable across processes on one machine):
    set when a request begins and when it completes.  A worker wedged
    *inside* a request cannot publish — which is the point: its
    heartbeat ages while ``inflight`` stays set, and that age is what
    the stall detector measures.
    """

    worker: str
    backend: str
    completed: int = 0
    inflight: str | None = None
    timestamp: float = 0.0
    errors: int = 0
    trace_dropped: int = 0
    latency_p50_us: float | None = None
    latency_p95_us: float | None = None

    def to_dict(self) -> dict:
        return {"record": "heartbeat", "worker": self.worker,
                "backend": self.backend, "completed": self.completed,
                "inflight": self.inflight, "timestamp": self.timestamp,
                "errors": self.errors,
                "trace_dropped": self.trace_dropped,
                "latency_p50_us": self.latency_p50_us,
                "latency_p95_us": self.latency_p95_us}


class HeartbeatBoard:
    """Thread-backend heartbeat store: one slot per worker.

    Each slot is written by exactly one pool thread and replaced
    wholesale (a single reference store, atomic under the GIL), so
    publishing takes no lock and readers never see a half-written
    record — the in-process analogue of the shared-memory seqlock slot.
    """

    def __init__(self):
        self._slots: dict[str, Heartbeat] = {}

    def publish(self, beat: Heartbeat) -> None:
        self._slots[beat.worker] = beat

    def latest(self) -> dict[str, Heartbeat]:
        return dict(self._slots)


class WorkerPulse:
    """One worker's heartbeat publisher.

    Wraps a sink with a ``publish(record)`` method — the
    :class:`HeartbeatBoard` in-process, a
    :class:`~repro.engine.shm.HeartbeatSlot` across processes — and
    keeps the worker-local running state (completed count, error
    count, a private latency histogram whose p50/p95 ride along in
    each beat).  Single-writer: only the owning worker calls it.
    """

    def __init__(self, sink, worker: str, backend: str,
                 clock: Callable[[], float] = time.monotonic):
        self._sink = sink
        self._clock = clock
        self.worker = worker
        self.backend = backend
        self.completed = 0
        self.errors = 0
        self.trace_dropped = 0
        self._latency = Histogram("fleet.request_us", {},
                                  LATENCY_BUCKETS_US)

    def _publish(self, inflight: str | None) -> None:
        count = self._latency.count
        self._sink.publish(Heartbeat(
            worker=self.worker, backend=self.backend,
            completed=self.completed, inflight=inflight,
            timestamp=self._clock(), errors=self.errors,
            trace_dropped=self.trace_dropped,
            latency_p50_us=self._latency.quantile(0.5) if count else None,
            latency_p95_us=self._latency.quantile(0.95) if count else None,
        ))

    def begin(self, request: str | None) -> None:
        self._publish(request)

    def done(self, latency_us: float | None = None,
             error: bool = False, trace_dropped: int = 0) -> None:
        self.completed += 1
        if error:
            self.errors += 1
        if trace_dropped > self.trace_dropped:
            self.trace_dropped = trace_dropped
        if latency_us is not None:
            self._latency.observe(latency_us)
        self._publish(None)

    def idle(self) -> None:
        """Publish an idle beat (startup, post-batch, sync points)."""
        self._publish(None)


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlightEvent:
    """One structured event in the recorder ring."""

    ts_us: float
    kind: str
    worker: str | None
    detail: dict

    def to_dict(self) -> dict:
        return {"record": "event", "ts_us": self.ts_us,
                "kind": self.kind, "worker": self.worker,
                "detail": dict(self.detail)}


class FlightRecorder:
    """A bounded ring of recent structured fleet events.

    Same discipline as the bus trace ring: bounded memory, evictions
    counted (``dropped``), never a reason a run slows down or blows up.
    ``dump()`` returns the surviving window oldest-first;
    ``dump_jsonl`` / ``dump_text`` render it for post-mortems.
    """

    def __init__(self, limit: int = 256,
                 clock: Callable[[], float] = time.monotonic):
        if limit < 1:
            raise ValueError(f"recorder limit must be positive, "
                             f"got {limit}")
        self.limit = limit
        self._clock = clock
        self._events: deque[FlightEvent] = deque(maxlen=limit)
        self._lock = threading.Lock()
        self.dropped = 0

    def record(self, kind: str, worker: str | None = None,
               **detail) -> None:
        event = FlightEvent(ts_us=self._clock() * 1e6, kind=kind,
                            worker=worker, detail=detail)
        with self._lock:
            if len(self._events) == self.limit:
                self.dropped += 1
            self._events.append(event)

    def events(self) -> list[FlightEvent]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def dump(self) -> list[dict]:
        return [event.to_dict() for event in self.events()]

    def dump_jsonl(self, target: IO[str] | str) -> int:
        """Append the ring as JSONL records; returns the line count."""
        records = self.dump()
        lines = "".join(json.dumps(record, sort_keys=True) + "\n"
                        for record in records)
        if isinstance(target, str):
            with open(target, "a", encoding="utf-8") as handle:
                handle.write(lines)
        else:
            target.write(lines)
        return len(records)

    def dump_text(self) -> str:
        events = self.events()
        lines = [f"flight recorder: {len(events)} event(s)"
                 + (f", {self.dropped} older dropped" if self.dropped
                    else "")]
        for event in events:
            detail = " ".join(f"{key}={value}" for key, value
                              in sorted(event.detail.items()))
            worker = event.worker or "-"
            lines.append(f"  {event.ts_us / 1e6:12.6f}s "
                         f"{event.kind:<12} {worker:<12} {detail}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The per-fleet telemetry bundle
# ---------------------------------------------------------------------------


class FleetTelemetry:
    """Everything one fleet's live plane hangs off.

    Pass ``telemetry=True`` (or an instance, to share a registry or
    set ``dump_path``) to :class:`~repro.engine.Fleet` /
    :class:`~repro.engine.mp.ProcessFleet`.  The fleet wires the
    request hooks; this object owns the metrics registry, the flight
    recorder, and the heartbeat stores for both backends.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 recorder: FlightRecorder | None = None,
                 dump_path: str | None = None,
                 clock: Callable[[], float] = time.monotonic):
        # Explicit None tests: both types define __len__, so an empty
        # (still unused) registry or recorder is falsy.
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self.recorder = FlightRecorder() if recorder is None else recorder
        self.dump_path = dump_path
        self.clock = clock
        self.board = HeartbeatBoard()
        self._pulses: dict[str, WorkerPulse] = {}
        self._pulse_lock = threading.Lock()
        #: Process-backend heartbeat readers (worker -> HeartbeatSlot).
        self._readers: dict[str, object] = {}
        self._read_cache: dict[str, Heartbeat] = {}

    # -- thread-backend request hooks ----------------------------------

    def pulse(self, worker: str, backend: str = "thread") -> WorkerPulse:
        pulse = self._pulses.get(worker)
        if pulse is None:
            with self._pulse_lock:
                pulse = self._pulses.setdefault(
                    worker, WorkerPulse(self.board, worker, backend,
                                        clock=self.clock))
        return pulse

    def note_submit(self, backend: str, spec: str, device: str,
                    request: str) -> None:
        self.metrics.counter("fleet.submitted",
                             spec=spec, backend=backend).inc()
        self.recorder.record("submit", spec=spec, device=device,
                             request=request)

    def request_begin(self, worker: str, backend: str,
                      request: str) -> None:
        self.pulse(worker, backend).begin(request)

    def request_done(self, worker: str, backend: str, spec: str,
                     submitted_at: float,
                     error: BaseException | None = None) -> None:
        latency_us = (time.perf_counter() - submitted_at) * 1e6
        self.metrics.histogram("fleet.request_us", LATENCY_BUCKETS_US,
                               spec=spec,
                               backend=backend).observe(latency_us)
        self.pulse(worker, backend).done(latency_us,
                                         error=error is not None)
        if error is not None:
            self.recorder.record("worker-error", worker=worker,
                                 spec=spec, error=repr(error))

    # -- process-backend plumbing --------------------------------------

    def attach_reader(self, worker: str, slot) -> None:
        """Register a worker's shared-memory heartbeat slot (parent)."""
        self._readers[worker] = slot

    def merge_latency(self, spec: str, backend: str,
                      snapshot: dict) -> None:
        """Fold a worker-shipped latency histogram snapshot in."""
        self.metrics.histogram("fleet.request_us", LATENCY_BUCKETS_US,
                               spec=spec,
                               backend=backend).merge_snapshot(snapshot)

    # -- reads ----------------------------------------------------------

    def heartbeats(self) -> dict[str, Heartbeat]:
        """Latest heartbeat per worker, both stores merged.

        A shared-memory read that catches a worker mid-publish keeps
        the previous sample (latest-value semantics never go backward
        to ``None``).
        """
        beats = self.board.latest()
        for worker, slot in self._readers.items():
            beat = slot.read()
            if beat is not None:
                self._read_cache[worker] = beat
            cached = self._read_cache.get(worker)
            if cached is not None:
                beats[worker] = cached
        return beats

    def observed_p95_us(self) -> float:
        """The largest per-(spec, backend) p95 request latency so far."""
        best = 0.0
        for histogram in self.metrics.find("fleet.request_us"):
            if histogram.count:
                best = max(best, histogram.quantile(0.95))
        return best

    def note_trace_dropped(self, dropped: int) -> None:
        """Surface the bus's drop count in metrics *while running*."""
        if dropped:
            self.metrics.counter("bus.trace_dropped").raise_to(dropped)

    def dump(self, reason: str, path: str | None = None) -> str | None:
        """Write a flight-recorder post-mortem; returns the path used."""
        target = path or self.dump_path
        self.recorder.record("dump", reason=reason,
                             path=target or "(memory)")
        if target is None:
            return None
        self.recorder.dump_jsonl(target)
        return target


# ---------------------------------------------------------------------------
# Health
# ---------------------------------------------------------------------------


@dataclass
class WorkerHealth:
    """One worker's status as computed by :class:`FleetHealth`."""

    worker: str
    status: str
    backend: str
    completed: int = 0
    inflight: str | None = None
    inflight_age_s: float | None = None
    queue_depth: int | None = None
    batch_occupancy: int | None = None
    stall_window_s: float = 0.0
    latency_p50_us: float | None = None
    latency_p95_us: float | None = None

    def to_dict(self) -> dict:
        return {"record": "health", "worker": self.worker,
                "status": self.status, "backend": self.backend,
                "completed": self.completed, "inflight": self.inflight,
                "inflight_age_s": self.inflight_age_s,
                "queue_depth": self.queue_depth,
                "batch_occupancy": self.batch_occupancy,
                "stall_window_s": self.stall_window_s,
                "ts_us": time.time() * 1e6}


class FleetHealth:
    """Parent-side per-worker health over a fleet's live telemetry.

    The stall detector: a worker whose heartbeat shows an inflight
    request older than the *stall window* is ``stalled``; older than
    half the window, ``slow``; a worker whose thread/process is gone is
    ``dead``; anything else — idle included, however long — is
    ``healthy``.  The window is ``stall_after`` seconds when given,
    otherwise ``stall_factor`` × the observed p95 request latency,
    floored at ``min_stall_s`` so microsecond fleets don't flag
    scheduler jitter.

    :meth:`check` is the effectful variant: it also updates the live
    gauges, surfaces ``bus.trace_dropped``, records stall/recovery
    transitions in the flight recorder, and triggers the automatic
    post-mortem dump on a new stall.
    """

    def __init__(self, fleet, *, stall_after: float | None = None,
                 stall_factor: float = STALL_FACTOR,
                 slow_fraction: float = 0.5,
                 min_stall_s: float = MIN_STALL_SECONDS,
                 clock: Callable[[], float] = time.monotonic):
        if fleet.telemetry is None:
            raise ValueError(
                "fleet has no telemetry plane — construct it with "
                "telemetry=True (or a FleetTelemetry instance)")
        self.fleet = fleet
        self.telemetry: FleetTelemetry = fleet.telemetry
        self.stall_after = stall_after
        self.stall_factor = stall_factor
        self.slow_fraction = slow_fraction
        self.min_stall_s = min_stall_s
        self.clock = clock
        self._last_status: dict[str, str] = {}

    def stall_window(self) -> float:
        if self.stall_after is not None:
            return self.stall_after
        p95_us = self.telemetry.observed_p95_us()
        return max(self.min_stall_s, self.stall_factor * p95_us * 1e-6)

    def snapshot(self) -> list[WorkerHealth]:
        """Compute every worker's status (no side effects)."""
        now = self.clock()
        window = self.stall_window()
        slow_window = window * self.slow_fraction
        beats = self.telemetry.heartbeats()
        liveness = self.fleet.worker_liveness()
        depths = self.fleet.queue_depths()
        occupancy = self.fleet.batch_occupancy()
        rows: list[WorkerHealth] = []
        for worker in sorted(liveness):
            beat = beats.get(worker)
            age: float | None = None
            if not liveness[worker]:
                status = DEAD
            elif beat is None or beat.inflight is None:
                status = HEALTHY
            else:
                age = now - beat.timestamp
                if age >= window:
                    status = STALLED
                elif age >= slow_window:
                    status = SLOW
                else:
                    status = HEALTHY
            rows.append(WorkerHealth(
                worker=worker, status=status,
                backend=beat.backend if beat else self.fleet.backend,
                completed=beat.completed if beat else 0,
                inflight=beat.inflight if beat else None,
                inflight_age_s=age,
                queue_depth=depths.get(worker),
                batch_occupancy=occupancy.get(worker),
                stall_window_s=window,
                latency_p50_us=beat.latency_p50_us if beat else None,
                latency_p95_us=beat.latency_p95_us if beat else None))
        return rows

    def check(self) -> list[WorkerHealth]:
        """Snapshot + gauges + transition events + auto-dump."""
        rows = self.snapshot()
        telemetry = self.telemetry
        metrics = telemetry.metrics
        dropped = 0
        for row in rows:
            if row.queue_depth is not None:
                metrics.gauge("fleet.queue_depth",
                              worker=row.worker).set(row.queue_depth)
            if row.batch_occupancy is not None:
                metrics.gauge("fleet.batch_pending",
                              worker=row.worker).set(row.batch_occupancy)
            metrics.gauge("fleet.inflight", worker=row.worker).set(
                0 if row.inflight is None else 1)
            previous = self._last_status.get(row.worker, HEALTHY)
            if row.status != previous:
                if row.status == STALLED:
                    telemetry.recorder.record(
                        "stall", worker=row.worker,
                        inflight=row.inflight or "",
                        age_s=round(row.inflight_age_s or 0.0, 6),
                        window_s=round(row.stall_window_s, 6))
                    telemetry.dump(f"stall:{row.worker}")
                elif previous == STALLED:
                    telemetry.recorder.record("recovered",
                                              worker=row.worker,
                                              status=row.status)
                self._last_status[row.worker] = row.status
        beats = telemetry.heartbeats()
        if self.fleet.backend == "thread":
            dropped = self.fleet.bus.trace_dropped
        else:
            dropped = sum(beat.trace_dropped for beat in beats.values())
        telemetry.note_trace_dropped(dropped)
        return rows

    def statuses(self) -> dict[str, str]:
        """``{worker: status}`` via :meth:`check` (transitions fire)."""
        return {row.worker: row.status for row in self.check()}


# ---------------------------------------------------------------------------
# Periodic monitor
# ---------------------------------------------------------------------------


class LiveMonitor:
    """A background sampler driving :meth:`FleetHealth.check`.

    Every ``interval`` seconds: run the health check, append one
    heartbeat record and one health record per worker to ``log_path``
    (JSONL, schema-validatable), and ``flush()`` the registry so
    registered sinks (e.g. :class:`repro.obs.export.JsonlSnapshotSink`)
    see fresh snapshots.  Stop with :meth:`stop` or use as a context
    manager; a final sample runs at stop so short runs never log
    nothing.
    """

    def __init__(self, fleet, interval: float = 0.5,
                 log_path: str | None = None,
                 health: FleetHealth | None = None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, "
                             f"got {interval}")
        self.fleet = fleet
        self.health = health or FleetHealth(fleet)
        self.interval = interval
        self.log_path = log_path
        self.samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def sample(self) -> list[WorkerHealth]:
        rows = self.health.check()
        if self.log_path:
            beats = self.health.telemetry.heartbeats()
            with open(self.log_path, "a", encoding="utf-8") as handle:
                for beat in sorted(beats.values(),
                                   key=lambda b: b.worker):
                    handle.write(json.dumps(beat.to_dict(),
                                            sort_keys=True) + "\n")
                for row in rows:
                    handle.write(json.dumps(row.to_dict(),
                                            sort_keys=True) + "\n")
        self.health.telemetry.metrics.flush()
        self.samples += 1
        return rows

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def start(self) -> "LiveMonitor":
        if self._thread is not None:
            raise RuntimeError("monitor already started")
        self._thread = threading.Thread(target=self._run,
                                        name="fleet-monitor",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.sample()  # final state always lands in the log

    def __enter__(self) -> "LiveMonitor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
