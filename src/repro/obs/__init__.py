"""``repro.obs`` — device-variable telemetry for the Devil runtime.

The paper's case for an IDL is that the hardware operating layer
becomes *inspectable*; this package supplies the inspection machinery
for the reproduction.  It threads through all three execution
strategies (interpreted runtime, bind-time specialized closures,
generated standalone stubs) and the simulated bus:

* **spans** (:mod:`.spans`) — every public stub call becomes a span
  recording the device variable, the strategy, the pre/post/set
  actions that fired, and the exact port I/O it caused;
* **metrics** (:mod:`.metrics`) — a zero-dependency registry of
  counters and histograms with per-variable, per-register and
  per-driver rollups and pluggable sinks;
* **exporters** (:mod:`.export`) — JSONL, Chrome ``trace_event``
  (Perfetto-loadable) and a text "hot variables" profile;
* **workloads** (:mod:`.workloads`, imported lazily) — the shipped
  driver workloads that ``devil trace`` replays.

Cost model
----------

Telemetry is **off by default** and is designed to cost nearly nothing
while off.  Instrumentation is decided *at bind time* from the
module-level flag (:func:`enable` / :func:`disable` /
:func:`is_enabled`): instances bound while the flag is off get exactly
the same stubs as an uninstrumented build — no wrappers, no generated
probe statements — and the bus's collector hook rides the existing
``tracing`` gate, so an untraced bus checks exactly the one flag it
always did.  ``benchmarks/bench_obs_overhead.py`` enforces the bound.
Instances bound while the flag is on carry wrapped stubs that look up
``bus.collector`` per call, so a collector can be attached and
detached without rebinding.  Port-level attribution inside spans
requires ``tracing=True`` on the bus (the default for machines built
by :mod:`.workloads`); spans, actions and call metrics work either
way.

Typical session::

    from repro import obs

    with obs.observe(bus) as collector:     # enables + attaches
        device = spec.bind(bus, bases, strategy="specialize")
        device.set_command("READ_SECTORS")
    print(obs.hot_report(collector.spans, collector.metrics))
"""

from __future__ import annotations

from contextlib import contextmanager

from .export import (
    JsonlSnapshotSink,
    hot_report,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
)
from .live import (
    FleetHealth,
    FleetTelemetry,
    FlightRecorder,
    Heartbeat,
    LiveMonitor,
    WorkerHealth,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import (
    BusObserver,
    Collector,
    IoEvent,
    Span,
    instrument_instance,
    model_port_map,
    port_map,
    stub_catalog,
    wrap_stub,
)

__all__ = [
    "BusObserver", "Collector", "Counter", "FleetHealth",
    "FleetTelemetry", "FlightRecorder", "Gauge", "Heartbeat",
    "Histogram", "IoEvent", "JsonlSnapshotSink", "LiveMonitor",
    "MetricsRegistry", "Span", "WorkerHealth", "disable", "enable",
    "hot_report", "instrument_instance", "is_enabled",
    "model_port_map", "observe", "port_map", "stub_catalog",
    "to_chrome_trace", "to_jsonl", "to_prometheus", "wrap_stub",
]

#: Module-level master switch, consulted at bind time.
_ENABLED = False


def enable() -> None:
    """Instrument instances bound from now on."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Stop instrumenting instances bound from now on."""
    global _ENABLED
    _ENABLED = False


def is_enabled() -> bool:
    return _ENABLED


@contextmanager
def observe(*buses, metrics: MetricsRegistry | None = None,
            collector: Collector | None = None):
    """Enable telemetry and attach one collector to ``buses``.

    Restores the previous enabled state and detaches the collector on
    exit (the collected spans stay available on the yielded collector).
    Instances must be bound *inside* the block to be instrumented.
    """
    global _ENABLED
    previous = _ENABLED
    active = collector or Collector(metrics=metrics)
    enable()
    for bus in buses:
        bus.collector = active
    try:
        yield active
    finally:
        _ENABLED = previous
        for bus in buses:
            if bus.collector is active:
                active.record_trace_drops(bus.trace_dropped)
                bus.collector = None
