"""A dependency-free validator for the JSONL trace schema.

Implements exactly the JSON-Schema subset ``docs/trace_schema.json``
uses — ``type`` (with union lists), ``enum``, ``required``,
``properties``, ``additionalProperties: false``, ``items``,
``minimum`` and ``oneOf`` — so CI can assert the machine interface of
``devil trace --format=jsonl`` (and the live plane's heartbeat /
health / metrics / flight-recorder records) without installing
``jsonschema``.

Usage::

    python -m repro.obs.validate docs/trace_schema.json trace.jsonl

validates every line of ``trace.jsonl`` and exits non-zero on the
first violation.
"""

from __future__ import annotations

import json
import pathlib
import sys

#: Repo-relative location of the shipped record schema.
DEFAULT_SCHEMA = (pathlib.Path(__file__).resolve().parents[3]
                  / "docs" / "trace_schema.json")

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


class SchemaViolation(ValueError):
    """The instance does not conform to the schema."""


def load_schema(path=None) -> dict:
    """Load a schema file (defaults to ``docs/trace_schema.json``)."""
    with open(path or DEFAULT_SCHEMA, encoding="utf-8") as handle:
        return json.load(handle)


def _check_type(instance, expected: str, path: str) -> None:
    python_type = _TYPES.get(expected)
    if python_type is None:
        raise SchemaViolation(f"{path}: unsupported schema type "
                              f"{expected!r}")
    ok = isinstance(instance, python_type)
    # bool is a subclass of int in Python; JSON keeps them distinct.
    if expected in ("number", "integer") and isinstance(instance, bool):
        ok = False
    if not ok:
        raise SchemaViolation(
            f"{path}: expected {expected}, got "
            f"{type(instance).__name__} ({instance!r})")


def validate(instance, schema: dict, path: str = "$") -> None:
    """Raise :class:`SchemaViolation` unless ``instance`` conforms."""
    if "oneOf" in schema:
        failures = []
        for index, alternative in enumerate(schema["oneOf"]):
            try:
                validate(instance, alternative, path)
                return
            except SchemaViolation as error:
                title = alternative.get("title", f"alternative {index}")
                failures.append(f"[{title}] {error}")
        raise SchemaViolation(
            f"{path}: no oneOf alternative matched: "
            + "; ".join(failures))
    if "enum" in schema:
        if instance not in schema["enum"]:
            raise SchemaViolation(
                f"{path}: {instance!r} not one of {schema['enum']!r}")
        return
    expected = schema.get("type")
    if expected is not None:
        if isinstance(expected, list):
            if not any(_conforms_type(instance, one) for one in expected):
                raise SchemaViolation(
                    f"{path}: expected one of {expected!r}, got "
                    f"{type(instance).__name__}")
        else:
            _check_type(instance, expected, path)
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool):
        if instance < schema["minimum"]:
            raise SchemaViolation(
                f"{path}: {instance!r} below minimum "
                f"{schema['minimum']!r}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                raise SchemaViolation(f"{path}: missing required "
                                      f"property {name!r}")
        properties = schema.get("properties", {})
        for name, value in instance.items():
            if name in properties:
                validate(value, properties[name], f"{path}.{name}")
            elif schema.get("additionalProperties", True) is False:
                raise SchemaViolation(f"{path}: unexpected property "
                                      f"{name!r}")
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            validate(item, schema["items"], f"{path}[{index}]")


def _conforms_type(instance, expected: str) -> bool:
    try:
        _check_type(instance, expected, "$")
    except SchemaViolation:
        return False
    return True


def validate_jsonl(schema: dict, lines) -> int:
    """Validate each non-empty line; returns the record count."""
    count = 0
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise SchemaViolation(f"line {number}: not JSON: {error}")
        try:
            validate(record, schema)
        except SchemaViolation as error:
            raise SchemaViolation(f"line {number}: {error}")
        count += 1
    return count


def main(argv: list[str] | None = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    if len(arguments) != 2:
        print("usage: python -m repro.obs.validate SCHEMA.json "
              "DATA.jsonl", file=sys.stderr)
        return 2
    schema_path, data_path = arguments
    with open(schema_path, encoding="utf-8") as handle:
        schema = json.load(handle)
    try:
        with open(data_path, encoding="utf-8") as handle:
            count = validate_jsonl(schema, handle)
    except SchemaViolation as error:
        print(f"{data_path}: {error}", file=sys.stderr)
        return 1
    print(f"{data_path}: {count} record(s) conform to "
          f"{schema.get('title', schema_path)!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
