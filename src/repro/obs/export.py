"""Trace exporters: JSONL, Chrome ``trace_event`` and text profiles.

Three consumers, three formats:

* :func:`to_jsonl` — one span per line, schema-checked in CI against
  ``docs/trace_schema.json``; the stable machine interface.
* :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON object
  format (``{"traceEvents": [...]}``), loadable in Perfetto or
  ``about:tracing``: spans become complete (``"ph": "X"``) events on
  one track per device, with the attributed port I/O and fired actions
  in ``args``.
* :func:`hot_report` — a "hot variables" text profile (top device
  variables by calls, I/O operations and time) plus the metrics
  rollups, for terminals and commit-able results files.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from .metrics import MetricsRegistry
from .spans import Span


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def to_jsonl(spans: Iterable[Span], stream: IO[str]) -> int:
    """Write one JSON object per span; returns the line count."""
    count = 0
    for span in spans:
        stream.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        count += 1
    return count


# ---------------------------------------------------------------------------
# Chrome trace_event (Perfetto / about:tracing)
# ---------------------------------------------------------------------------


def to_chrome_trace(spans: Iterable[Span]) -> dict:
    """Spans as a Chrome ``trace_event`` JSON object.

    Timestamps are rebased to the first span so traces start at zero;
    durations below the format's microsecond resolution are clamped to
    a visible minimum.  One ``tid`` per device keeps multi-device
    machines (IDE + PIIX4) on separate tracks.
    """
    spans = list(spans)
    origin = min((span.start for span in spans), default=0.0)
    tids: dict[str, int] = {}
    events: list[dict] = []
    for span in spans:
        tid = tids.setdefault(span.device, len(tids) + 1)
        events.append({
            "name": span.stub,
            "cat": f"devil,{span.kind},{span.strategy}",
            "ph": "X",
            "ts": (span.start - origin) * 1e6,
            "dur": max(span.duration * 1e6, 0.01),
            "pid": 1,
            "tid": tid,
            "args": {
                "variable": span.variable,
                "kind": span.kind,
                "strategy": span.strategy,
                "seq": span.seq,
                "io": [[e.op, e.port, e.value, e.width, e.count,
                        e.elided]
                       for e in span.io],
                "actions": [list(pair) for pair in span.actions],
                **({"error": span.error} if span.error else {}),
            },
        })
    thread_meta = [
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
         "args": {"name": device}}
        for device, tid in sorted(tids.items(), key=lambda kv: kv[1])]
    return {
        "traceEvents": thread_meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs (Devil reproduction)"},
    }


# ---------------------------------------------------------------------------
# Text profile
# ---------------------------------------------------------------------------


def hot_report(spans: Iterable[Span],
               metrics: MetricsRegistry | None = None,
               top: int = 10) -> str:
    """The "hot variables" profile: where a workload spends its I/O."""
    spans = list(spans)
    per_variable: dict[tuple[str, str], dict] = {}
    for span in spans:
        row = per_variable.setdefault(
            (span.device, span.variable),
            {"calls": 0, "io_ops": 0, "io_words": 0, "us": 0.0,
             "actions": 0})
        row["calls"] += 1
        row["io_ops"] += span.io_ops
        row["io_words"] += span.io_words
        row["us"] += span.duration * 1e6
        row["actions"] += len(span.actions)

    total_io = sum(row["io_ops"] for row in per_variable.values())
    lines = [
        f"hot device variables ({len(spans)} spans, "
        f"{total_io} attributed I/O operations; top {top} by words):",
        "",
        f"{'device':<20} {'variable':<22} {'calls':>6} {'io':>5} "
        f"{'words':>6} {'actions':>8} {'us':>9} {'io%':>5}",
    ]
    # Words first: one rep transfer is one operation but moves an
    # entire sector, and that is what "hot" should surface.
    ranked = sorted(per_variable.items(),
                    key=lambda kv: (-kv[1]["io_words"], -kv[1]["io_ops"],
                                    -kv[1]["calls"], kv[0]))
    for (device, variable), row in ranked[:top]:
        share = 100.0 * row["io_ops"] / total_io if total_io else 0.0
        lines.append(
            f"{device:<20} {variable:<22} {row['calls']:>6} "
            f"{row['io_ops']:>5} {row['io_words']:>6} "
            f"{row['actions']:>8} {row['us']:>9.1f} {share:>4.0f}%")
    if len(ranked) > top:
        lines.append(f"... and {len(ranked) - top} more variables")

    total_elided = sum(span.io_elided for span in spans)
    coalesced_spans = sum(1 for span in spans if span.coalesced)
    if total_elided or coalesced_spans:
        lines += ["",
                  f"shadow-cache reads elided: {total_elided}",
                  f"spans coalesced into txn flushes: {coalesced_spans}"]

    if metrics is not None:
        dropped = metrics.value("bus.trace_dropped")
        unattributed = sum(m.value
                           for m in metrics.find("io.unattributed"))
        lines += ["",
                  f"trace entries dropped (ring buffer): {dropped}",
                  f"unattributed I/O operations: {unattributed}"]
    return "\n".join(lines)
