"""Trace exporters: JSONL, Chrome ``trace_event``, Prometheus, text.

Five consumers, five formats:

* :func:`to_jsonl` — one span per line, schema-checked in CI against
  ``docs/trace_schema.json``; the stable machine interface.
* :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON object
  format (``{"traceEvents": [...]}``), loadable in Perfetto or
  ``about:tracing``: spans become complete (``"ph": "X"``) events on
  one track per device, with the attributed port I/O and fired actions
  in ``args``.
* :func:`to_prometheus` — the registry rendered in the Prometheus
  text exposition format (version 0.0.4), zero-dependency, so a
  fleet daemon can serve ``/metrics`` with nothing but a socket.
* :class:`JsonlSnapshotSink` — a registry sink writing one
  ``{"record": "metrics", ...}`` line per flush; the periodic
  snapshot feed behind ``devil fleet --health-log``.
* :func:`hot_report` — a "hot variables" text profile (top device
  variables by calls, I/O operations and time) plus the metrics
  rollups, for terminals and commit-able results files.
"""

from __future__ import annotations

import json
import time
from typing import IO, Iterable

from .metrics import MetricsRegistry
from .spans import Span


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def to_jsonl(spans: Iterable[Span], stream: IO[str]) -> int:
    """Write one JSON object per span; returns the line count."""
    count = 0
    for span in spans:
        stream.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        count += 1
    return count


# ---------------------------------------------------------------------------
# Chrome trace_event (Perfetto / about:tracing)
# ---------------------------------------------------------------------------


def to_chrome_trace(spans: Iterable[Span]) -> dict:
    """Spans as a Chrome ``trace_event`` JSON object.

    Timestamps are rebased to the first span so traces start at zero;
    durations below the format's microsecond resolution are clamped to
    a visible minimum.  One ``tid`` per device keeps multi-device
    machines (IDE + PIIX4) on separate tracks.
    """
    spans = list(spans)
    origin = min((span.start for span in spans), default=0.0)
    tids: dict[str, int] = {}
    events: list[dict] = []
    for span in spans:
        tid = tids.setdefault(span.device, len(tids) + 1)
        events.append({
            "name": span.stub,
            "cat": f"devil,{span.kind},{span.strategy}",
            "ph": "X",
            "ts": (span.start - origin) * 1e6,
            "dur": max(span.duration * 1e6, 0.01),
            "pid": 1,
            "tid": tid,
            "args": {
                "variable": span.variable,
                "kind": span.kind,
                "strategy": span.strategy,
                "seq": span.seq,
                "io": [[e.op, e.port, e.value, e.width, e.count,
                        e.elided]
                       for e in span.io],
                "actions": [list(pair) for pair in span.actions],
                **({"error": span.error} if span.error else {}),
            },
        })
    thread_meta = [
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
         "args": {"name": device}}
        for device, tid in sorted(tids.items(), key=lambda kv: kv[1])]
    return {
        "traceEvents": thread_meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs (Devil reproduction)"},
    }


# ---------------------------------------------------------------------------
# Prometheus text exposition format
# ---------------------------------------------------------------------------


def _prom_name(name: str, suffix: str = "") -> str:
    """``var.io_ops`` → ``devil_var_io_ops`` (+ conventional suffix)."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_"
                      for ch in name)
    return f"devil_{cleaned}{suffix}"


def _prom_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(
            key,
            str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))
        for key, value in sorted(labels.items()))
    return "{" + rendered + "}"


def to_prometheus(metrics: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format.

    Counters get the conventional ``_total`` suffix, histograms emit
    *cumulative* ``_bucket{le=...}`` series plus ``_sum``/``_count``,
    gauges render as-is.  Output is deterministic (sorted snapshot
    order) and ends with a newline as the format requires.
    """
    by_name: dict[tuple[str, str], list[dict]] = {}
    for row in metrics.snapshot():
        by_name.setdefault((row["type"], row["name"]), []).append(row)

    lines: list[str] = []
    for (kind, name), rows in sorted(by_name.items()):
        if kind == "counter":
            base = _prom_name(name, "_total")
            lines.append(f"# TYPE {base} counter")
            for row in rows:
                lines.append(
                    f"{base}{_prom_labels(row['labels'])} {row['value']}")
        elif kind == "gauge":
            base = _prom_name(name)
            lines.append(f"# TYPE {base} gauge")
            for row in rows:
                lines.append(
                    f"{base}{_prom_labels(row['labels'])} {row['value']}")
        else:  # histogram
            base = _prom_name(name)
            lines.append(f"# TYPE {base} histogram")
            for row in rows:
                bounds = sorted((float(bound), count) for bound, count
                                in row["buckets"].items()
                                if bound != "+Inf")
                cumulative = 0
                for bound, count in bounds:
                    cumulative += count
                    labels = _prom_labels(
                        {**row["labels"], "le": f"{bound:g}"})
                    lines.append(f"{base}_bucket{labels} {cumulative}")
                labels = _prom_labels({**row["labels"], "le": "+Inf"})
                lines.append(f"{base}_bucket{labels} {row['count']}")
                plain = _prom_labels(row["labels"])
                lines.append(f"{base}_sum{plain} {row['sum']}")
                lines.append(f"{base}_count{plain} {row['count']}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Periodic JSONL metrics snapshots
# ---------------------------------------------------------------------------


class JsonlSnapshotSink:
    """A registry sink appending one JSON line per flush.

    Registered via :meth:`MetricsRegistry.add_sink`, each
    ``registry.flush()`` appends::

        {"record": "metrics", "ts_us": ..., "metrics": [...]}

    — a record shape ``docs/trace_schema.json`` admits, so health logs
    interleave with heartbeat/event/health records in one stream and
    still validate.  Accepts an open text stream or a path (opened in
    append mode per write, so log rotation stays safe).
    """

    def __init__(self, target: IO[str] | str):
        self._target = target
        self.writes = 0

    def __call__(self, snapshot: list[dict]) -> None:
        line = json.dumps({"record": "metrics",
                           "ts_us": time.time() * 1e6,
                           "metrics": snapshot},
                          sort_keys=True) + "\n"
        if isinstance(self._target, str):
            with open(self._target, "a", encoding="utf-8") as handle:
                handle.write(line)
        else:
            self._target.write(line)
        self.writes += 1


# ---------------------------------------------------------------------------
# Text profile
# ---------------------------------------------------------------------------


def hot_report(spans: Iterable[Span],
               metrics: MetricsRegistry | None = None,
               top: int = 10) -> str:
    """The "hot variables" profile: where a workload spends its I/O."""
    spans = list(spans)
    per_variable: dict[tuple[str, str], dict] = {}
    for span in spans:
        row = per_variable.setdefault(
            (span.device, span.variable),
            {"calls": 0, "io_ops": 0, "io_words": 0, "us": 0.0,
             "actions": 0})
        row["calls"] += 1
        row["io_ops"] += span.io_ops
        row["io_words"] += span.io_words
        row["us"] += span.duration * 1e6
        row["actions"] += len(span.actions)

    total_io = sum(row["io_ops"] for row in per_variable.values())
    lines = [
        f"hot device variables ({len(spans)} spans, "
        f"{total_io} attributed I/O operations; top {top} by words):",
        "",
        f"{'device':<20} {'variable':<22} {'calls':>6} {'io':>5} "
        f"{'words':>6} {'actions':>8} {'us':>9} {'io%':>5}",
    ]
    # Words first: one rep transfer is one operation but moves an
    # entire sector, and that is what "hot" should surface.
    ranked = sorted(per_variable.items(),
                    key=lambda kv: (-kv[1]["io_words"], -kv[1]["io_ops"],
                                    -kv[1]["calls"], kv[0]))
    for (device, variable), row in ranked[:top]:
        share = 100.0 * row["io_ops"] / total_io if total_io else 0.0
        lines.append(
            f"{device:<20} {variable:<22} {row['calls']:>6} "
            f"{row['io_ops']:>5} {row['io_words']:>6} "
            f"{row['actions']:>8} {row['us']:>9.1f} {share:>4.0f}%")
    if len(ranked) > top:
        lines.append(f"... and {len(ranked) - top} more variables")

    total_elided = sum(span.io_elided for span in spans)
    coalesced_spans = sum(1 for span in spans if span.coalesced)
    if total_elided or coalesced_spans:
        lines += ["",
                  f"shadow-cache reads elided: {total_elided}",
                  f"spans coalesced into txn flushes: {coalesced_spans}"]

    if metrics is not None:
        dropped = metrics.value("bus.trace_dropped")
        unattributed = sum(m.value
                           for m in metrics.find("io.unattributed"))
        lines += ["",
                  f"trace entries dropped (ring buffer): {dropped}",
                  f"unattributed I/O operations: {unattributed}"]
    return "\n".join(lines)
