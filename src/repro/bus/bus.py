"""The simulated I/O bus.

A :class:`Bus` owns a flat address space into which behavioural device
models are mapped.  Drivers (hand-written or Devil-generated) perform
``inb``/``outb``-style accesses; the bus routes them to the owning
device model, enforces width and range rules, and accounts every
access.

Accounting distinguishes single accesses from block (``rep``) transfers
because the paper's Table 2 shows that Devil's ``block`` stubs — which
compile to a single ``rep`` instruction on the Pentium — close the 10 %
throughput gap that a C loop over single-word stubs leaves open.  The
performance models in :mod:`repro.perf` convert these counters into
throughput figures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol


class BusError(Exception):
    """Raised for accesses that no real bus could satisfy.

    In a physical machine a stray port access yields bus garbage; in the
    simulation we prefer to fail loudly, because a stray access from a
    generated stub is always a bug in this reproduction.
    """


class MappedDevice(Protocol):
    """Interface a behavioural device model exposes to the bus.

    ``offset`` is relative to the base address the device was mapped
    at; ``width`` is the access width in bits (8, 16 or 32).
    """

    def io_read(self, offset: int, width: int) -> int:
        """Handle a read; returns the raw value (width bits)."""
        ...  # pragma: no cover - protocol

    def io_write(self, offset: int, value: int, width: int) -> None:
        """Handle a write of ``value`` (width bits)."""
        ...  # pragma: no cover - protocol


@dataclass
class IoAccounting:
    """Counters for every kind of bus access.

    ``reads``/``writes`` count single port operations.  A block
    transfer counts as **one** operation in ``block_ops`` (matching the
    paper's I/O-operation columns, where a ``rep insw`` is one
    instruction) while ``block_words`` records how many words moved.
    """

    reads: int = 0
    writes: int = 0
    block_ops: int = 0
    block_words: int = 0
    #: Single operations broken down by access width (bits); the
    #: timing models charge 8/16-bit and 32-bit cycles differently.
    single_by_width: dict = field(default_factory=dict)
    #: Block-transferred words by access width.
    block_words_by_width: dict = field(default_factory=dict)
    #: Reads served from a runtime shadow cache instead of the bus.
    #: *Not* counted in :attr:`total_ops` — no port operation happened;
    #: the counter exists so elision is visible, never silent.
    elided_reads: int = 0
    #: Register writes merged away by transactional coalescing (the
    #: writes deferred set calls would have issued, minus the register
    #: writes the flush actually performed).  Introspection only, like
    #: :attr:`elided_reads`.
    coalesced_writes: int = 0

    @property
    def single_ops(self) -> int:
        return self.reads + self.writes

    @property
    def total_ops(self) -> int:
        """Operations as counted by the paper (block transfer = 1)."""
        return self.single_ops + self.block_ops

    @property
    def bus_transactions(self) -> int:
        """Every word moved, loop or rep — the per-sector counts of
        Table 2 (128 or 256 data operations per sector)."""
        return self.single_ops + self.block_words

    def record_single(self, width: int) -> None:
        self.single_by_width[width] = \
            self.single_by_width.get(width, 0) + 1

    def record_block(self, width: int, words: int) -> None:
        self.block_words_by_width[width] = \
            self.block_words_by_width.get(width, 0) + words

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.block_ops = 0
        self.block_words = 0
        self.single_by_width = {}
        self.block_words_by_width = {}
        self.elided_reads = 0
        self.coalesced_writes = 0

    def snapshot(self) -> "IoAccounting":
        return IoAccounting(self.reads, self.writes,
                            self.block_ops, self.block_words,
                            dict(self.single_by_width),
                            dict(self.block_words_by_width),
                            self.elided_reads, self.coalesced_writes)

    def add(self, other: "IoAccounting") -> "IoAccounting":
        """Accumulate ``other``'s counters into this one (returns self).

        The merge half of the shard/merge API used by
        :class:`~repro.bus.concurrent.ThreadSafeBus`: per-device shards
        are summed into one consistent view.
        """
        self.reads += other.reads
        self.writes += other.writes
        self.block_ops += other.block_ops
        self.block_words += other.block_words
        for width, count in other.single_by_width.items():
            self.single_by_width[width] = \
                self.single_by_width.get(width, 0) + count
        for width, words in other.block_words_by_width.items():
            self.block_words_by_width[width] = \
                self.block_words_by_width.get(width, 0) + words
        self.elided_reads += other.elided_reads
        self.coalesced_writes += other.coalesced_writes
        return self

    def delta(self, earlier: "IoAccounting") -> "IoAccounting":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        widths = set(self.single_by_width) | set(earlier.single_by_width)
        block_widths = set(self.block_words_by_width) | \
            set(earlier.block_words_by_width)
        return IoAccounting(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.block_ops - earlier.block_ops,
            self.block_words - earlier.block_words,
            {w: self.single_by_width.get(w, 0)
                - earlier.single_by_width.get(w, 0) for w in widths},
            {w: self.block_words_by_width.get(w, 0)
                - earlier.block_words_by_width.get(w, 0)
             for w in block_widths},
            self.elided_reads - earlier.elided_reads,
            self.coalesced_writes - earlier.coalesced_writes,
        )


@dataclass(frozen=True)
class IoTraceEntry:
    """One traced access: ``op`` is 'r', 'w', 'rb' (block read) or 'wb'.

    ``count`` is the word count of the block operation the entry
    belongs to (1 for single accesses).  A block transfer of N words
    appends N entries, each carrying ``count=N``, so adjacent block
    operations to the same port remain distinguishable and the
    operation structure is reconstructible from the trace alone (see
    :func:`iter_operations`).
    """

    op: str
    port: int
    value: int
    width: int
    count: int = 1


def iter_operations(trace: Iterable[IoTraceEntry]) \
        -> Iterator[tuple[IoTraceEntry, ...]]:
    """Group a trace back into bus operations.

    Single accesses yield one-entry tuples; a block transfer yields one
    tuple of its ``count`` per-word entries.  This is the inverse of the
    trace encoding: ``sum(len(op) for op in iter_operations(t)) ==
    len(t)`` and the grouping matches :class:`IoAccounting.total_ops`.
    """
    entries = iter(trace)
    for entry in entries:
        if entry.op in ("r", "w"):
            yield (entry,)
            continue
        words = [entry]
        for _ in range(entry.count - 1):
            words.append(next(entries))
        yield tuple(words)


@dataclass
class _Mapping:
    base: int
    size: int
    device: MappedDevice
    name: str
    #: Per-device lock and accounting shard, populated only by
    #: :class:`~repro.bus.concurrent.ThreadSafeBus`; the base bus never
    #: touches either, so the single-threaded hot path pays nothing.
    lock: object = None
    shard: object = None

    def contains(self, port: int) -> bool:
        return self.base <= port < self.base + self.size


@dataclass
class Bus:
    """A flat port/memory address space with mapped device models."""

    accounting: IoAccounting = field(default_factory=IoAccounting)
    #: When True, every access is appended to :attr:`trace`.
    tracing: bool = False
    trace: list[IoTraceEntry] = field(default_factory=list)
    #: When set, :attr:`trace` becomes a ring buffer of this many
    #: entries: long workloads keep the most recent window instead of
    #: growing without bound, and every evicted entry is counted in
    #: :attr:`trace_dropped` (surfaced as the ``bus.trace_dropped``
    #: metric by :mod:`repro.obs`).
    trace_limit: int | None = None
    #: Entries evicted from the ring buffer so far.
    trace_dropped: int = 0
    #: Telemetry observer (:class:`repro.obs.Collector`) or None.  The
    #: hook shares the ``tracing`` gate, so port-level attribution
    #: requires ``tracing=True`` (the default everywhere telemetry is
    #: used) and an untraced bus pays nothing for it: the hot paths
    #: check exactly one flag, as they did before telemetry existed.
    #: When attached and tracing, every access is attributed to the
    #: currently open device-variable span.
    collector: object | None = None
    _mappings: list[_Mapping] = field(default_factory=list)
    #: Port-dispatch fast path: memoized ``port -> _Mapping`` so the hot
    #: ``read``/``write`` path costs one dict probe instead of a linear
    #: scan over every mapping.  Populated lazily on first access to a
    #: port and invalidated whenever the topology changes.
    _port_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.trace_limit is not None:
            if self.trace_limit < 0:
                raise BusError(
                    f"trace_limit must be non-negative, "
                    f"got {self.trace_limit}")
            self.trace = deque(self.trace, maxlen=self.trace_limit)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def _trace_add(self, entry: IoTraceEntry) -> None:
        trace = self.trace
        if self.trace_limit is not None and \
                len(trace) >= self.trace_limit:
            self.trace_dropped += 1  # the deque evicts the oldest entry
        trace.append(entry)

    def _trace_extend(self, entries: list[IoTraceEntry]) -> None:
        """Append one block operation's per-word entries.

        A single overridable point so :class:`ThreadSafeBus` can keep
        the group contiguous in the ring buffer under concurrent
        writers (``iter_operations`` relies on block contiguity).
        """
        for entry in entries:
            self._trace_add(entry)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def map_device(self, base: int, size: int, device: MappedDevice,
                   name: str = "") -> None:
        """Map ``device`` at ``[base, base+size)``; ranges must not overlap."""
        if size <= 0:
            raise BusError(f"mapping size must be positive, got {size}")
        if base < 0:
            raise BusError(f"mapping base must be non-negative, got {base}")
        for mapping in self._mappings:
            if base < mapping.base + mapping.size and \
                    mapping.base < base + size:
                raise BusError(
                    f"mapping [{base:#x}, {base + size:#x}) overlaps "
                    f"{mapping.name or 'existing mapping'} at "
                    f"[{mapping.base:#x}, {mapping.base + mapping.size:#x})")
        self._mappings.append(
            _Mapping(base, size, device, name or type(device).__name__))
        self._port_cache.clear()

    def unmap_device(self, device: MappedDevice) -> None:
        """Remove every mapping of ``device``."""
        self._mappings = [m for m in self._mappings if m.device is not device]
        self._port_cache.clear()

    # ------------------------------------------------------------------
    # State snapshot / restore (the cross-process parity seam)
    # ------------------------------------------------------------------

    def state_snapshot(self) -> dict[str, bytes]:
        """``mapping name -> pickled device state``, byte-comparable.

        The end-state parity seam used by the fleet backends: two buses
        that mapped the same device models under the same names and
        executed equivalent traffic produce *byte-identical* snapshots,
        regardless of which process (or backend) ran the traffic.  Each
        mapping's device is pickled independently with a pinned
        protocol, so a device shared by several mappings (the NE2000
        model behind its register file, data port and reset port) is
        serialized the same way on every side of the comparison.

        For a restorable capture that preserves object sharing between
        mappings, use :meth:`state_blob` / :meth:`restore_state`.
        """
        import pickle
        snapshot: dict[str, bytes] = {}
        for mapping in self._mappings:
            if mapping.name in snapshot:
                raise BusError(
                    f"duplicate mapping name {mapping.name!r}: "
                    f"state_snapshot needs unique names")
            snapshot[mapping.name] = pickle.dumps(
                mapping.device, protocol=4)
        return snapshot

    def state_blob(self) -> bytes:
        """One pickle of every mapped device, sharing preserved.

        Unlike :meth:`state_snapshot` (independent per-mapping pickles,
        for comparison), this serializes the whole device list in one
        payload so aliased models stay aliased across a
        :meth:`restore_state` round trip.
        """
        import pickle
        return pickle.dumps([m.device for m in self._mappings],
                            protocol=4)

    def restore_state(self, blob: bytes) -> None:
        """Replace every mapped device's state from a :meth:`state_blob`.

        The topology (bases, sizes, names, locks, accounting) is left
        untouched; only the device objects are swapped.  The blob must
        come from a bus with the same mapping list, in the same order.
        """
        import pickle
        devices = pickle.loads(blob)
        if len(devices) != len(self._mappings):
            raise BusError(
                f"state blob has {len(devices)} devices, bus has "
                f"{len(self._mappings)} mappings")
        for mapping, device in zip(self._mappings, devices):
            mapping.device = device

    def _find(self, port: int) -> _Mapping:
        mapping = self._port_cache.get(port)
        if mapping is not None:
            return mapping
        for mapping in self._mappings:
            if mapping.contains(port):
                self._port_cache[port] = mapping
                return mapping
        raise BusError(f"no device mapped at port {port:#x}")

    # ------------------------------------------------------------------
    # Single accesses
    # ------------------------------------------------------------------

    @staticmethod
    def _check_width(width: int) -> None:
        if width not in (8, 16, 32):
            raise BusError(f"unsupported access width {width}")

    def read(self, port: int, width: int = 8) -> int:
        """One port read of ``width`` bits (``inb``/``inw``/``inl``)."""
        mapping = self._port_cache.get(port)
        if mapping is None:
            self._check_width(width)
            mapping = self._find(port)
        elif width not in (8, 16, 32):
            raise BusError(f"unsupported access width {width}")
        value = mapping.device.io_read(port - mapping.base, width)
        value &= (1 << width) - 1
        accounting = self.accounting
        accounting.reads += 1
        by_width = accounting.single_by_width
        by_width[width] = by_width.get(width, 0) + 1
        if self.tracing:
            self._trace_add(IoTraceEntry("r", port, value, width))
            collector = self.collector
            if collector is not None:
                collector.io_event("r", port, value, width)
        return value

    def write(self, value: int, port: int, width: int = 8) -> None:
        """One port write (``outb``/``outw``/``outl``).

        The argument order (value first) follows the x86 convention used
        throughout the paper's code fragments: ``outb(value, port)``.
        """
        mapping = self._port_cache.get(port)
        if mapping is None:
            self._check_width(width)
            mapping = self._find(port)
        elif width not in (8, 16, 32):
            raise BusError(f"unsupported access width {width}")
        value &= (1 << width) - 1
        mapping.device.io_write(port - mapping.base, value, width)
        accounting = self.accounting
        accounting.writes += 1
        by_width = accounting.single_by_width
        by_width[width] = by_width.get(width, 0) + 1
        if self.tracing:
            self._trace_add(IoTraceEntry("w", port, value, width))
            collector = self.collector
            if collector is not None:
                collector.io_event("w", port, value, width)

    # ------------------------------------------------------------------
    # Shadow-cache bookkeeping (no bus traffic)
    # ------------------------------------------------------------------

    def note_elided(self, count: int = 1) -> None:
        """Record ``count`` reads served from a shadow cache.

        No port operation happened — nothing is traced and
        ``total_ops`` is unaffected; the counter keeps elision honest
        in accounting comparisons.
        """
        self.accounting.elided_reads += count

    def note_coalesced(self, count: int = 1) -> None:
        """Record ``count`` deferred writes merged away at a txn flush."""
        self.accounting.coalesced_writes += count

    # Convenience aliases in driver idiom.
    def inb(self, port: int) -> int:
        return self.read(port, 8)

    def outb(self, value: int, port: int) -> None:
        self.write(value, port, 8)

    def inw(self, port: int) -> int:
        return self.read(port, 16)

    def outw(self, value: int, port: int) -> None:
        self.write(value, port, 16)

    def inl(self, port: int) -> int:
        return self.read(port, 32)

    def outl(self, value: int, port: int) -> None:
        self.write(value, port, 32)

    # ------------------------------------------------------------------
    # Block (rep) transfers
    # ------------------------------------------------------------------

    def block_read(self, port: int, count: int, width: int = 16) -> list[int]:
        """``rep insw``-style transfer: ``count`` reads from one port.

        Accounted as a single block operation; the per-word traffic is
        recorded in ``block_words`` so the performance model can charge
        hardware-paced transfer time without per-instruction overhead.
        """
        self._check_width(width)
        if count < 0:
            raise BusError(f"negative block count {count}")
        mapping = self._find(port)
        offset = port - mapping.base
        mask = (1 << width) - 1
        values = [mapping.device.io_read(offset, width) & mask
                  for _ in range(count)]
        self.accounting.block_ops += 1
        self.accounting.block_words += count
        self.accounting.record_block(width, count)
        if self.tracing:
            self._trace_extend(
                [IoTraceEntry("rb", port, value, width, count)
                 for value in values])
            collector = self.collector
            if collector is not None:
                collector.io_event("rb", port, None, width, count)
        return values

    def block_write(self, port: int, values: Iterable[int],
                    width: int = 16) -> int:
        """``rep outsw``-style transfer; returns the word count."""
        self._check_width(width)
        mapping = self._find(port)
        offset = port - mapping.base
        mask = (1 << width) - 1
        count = 0
        traced: list[int] | None = [] if self.tracing else None
        for value in values:
            mapping.device.io_write(offset, value & mask, width)
            count += 1
            if traced is not None:
                traced.append(value & mask)
        if traced is not None:
            # Entries carry the operation's final word count, so the
            # trace is appended once the transfer length is known.
            self._trace_extend(
                [IoTraceEntry("wb", port, value, width, count)
                 for value in traced])
            collector = self.collector
            if collector is not None:
                collector.io_event("wb", port, None, width, count)
        self.accounting.block_ops += 1
        self.accounting.block_words += count
        self.accounting.record_block(width, count)
        return count
