"""Simulated I/O bus substrate.

The paper's generated stubs talk to hardware exclusively through port
reads and writes (``inb``/``outb`` and friends) or memory-mapped
accesses; the port abstraction of Devil deliberately hides which of the
two a device uses.  This package provides the equivalent substrate for
the reproduction: a :class:`~repro.bus.bus.Bus` with pluggable
behavioural device models, per-access accounting (the basis of the
paper's I/O-operation columns in Tables 2-4), block (``rep``-style)
transfers, and optional tracing.
"""

from .bus import (
    Bus,
    BusError,
    IoAccounting,
    IoTraceEntry,
    MappedDevice,
    iter_operations,
)
from .concurrent import ThreadSafeBus

__all__ = [
    "Bus",
    "BusError",
    "IoAccounting",
    "IoTraceEntry",
    "MappedDevice",
    "ThreadSafeBus",
    "iter_operations",
]
