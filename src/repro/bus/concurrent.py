"""Thread-safe bus variant: per-device locks, sharded accounting.

The base :class:`~repro.bus.bus.Bus` is deliberately lock-free — every
existing benchmark and single-threaded driver pays nothing for the
fleet engine.  :class:`ThreadSafeBus` is the concurrent drop-in: a
subclass whose access paths are safe when many threads issue port
operations at once, built on three ideas:

* **per-device locking** — every mapping owns its own
  ``threading.Lock``; an access to one device's port range serializes
  only against other accesses *to that device*.  Workers driving
  different devices never contend, which is what lets the fleet
  scheduler scale (a global bus lock would serialize the whole fleet).
* **lock-sharded accounting** — each mapping also owns a private
  :class:`IoAccounting` shard mutated only under that mapping's lock.
  The public :attr:`accounting` attribute becomes a *merged snapshot*:
  reading it takes every shard lock in turn and sums the shards with
  :meth:`IoAccounting.add`, so totals are always exact (no torn
  ``+=``), at the cost of making the attribute a read-only view.
  Portless counters (``note_elided``/``note_coalesced`` and anything
  assigned to ``accounting`` at construction) live in a dedicated misc
  shard with its own lock.
* **a trace lock** — the ring buffer (and its ``trace_dropped``
  eviction counter) is guarded by one short lock taken *inside* the
  device lock.  Ordering guarantee: entries of one device appear in
  that device's program order (its lock serializes them), a block
  transfer's per-word entries are always contiguous
  (:meth:`_trace_extend` holds the trace lock across the group), and
  the interleaving *between* devices is best-effort wall-clock order.
  Lock order is always device lock → trace lock, so no cycle exists.

Topology changes (``map_device``/``unmap_device``) are *not* safe
against in-flight traffic — map the machine first, then start the
workers, exactly like real hardware enumeration.

What this class does **not** make safe is the Devil runtime state
layered above it (register shadow caches, transaction buffers,
``_last_written``): those belong to one :class:`DeviceInstance` and
are protected by giving each fleet device an exclusive session (see
:mod:`repro.engine` and ``docs/CONCURRENCY.md``).
"""

from __future__ import annotations

import threading

from .bus import Bus, BusError, IoAccounting, IoTraceEntry


class ThreadSafeBus(Bus):
    """A :class:`Bus` whose access paths are safe under concurrency.

    Construction arguments are identical to :class:`Bus`.  The
    ``accounting`` attribute is a merged snapshot (recomputed on every
    read); per-device totals are available from
    :meth:`accounting_by_device`.
    """

    def __init__(self, **kwargs):
        # The misc shard absorbs the dataclass __init__'s assignment to
        # ``accounting`` (see the property below) and every portless
        # counter update; created before super().__init__ so the setter
        # always has somewhere to write.
        self._misc = IoAccounting()
        self._misc_lock = threading.Lock()
        self._trace_lock = threading.Lock()
        super().__init__(**kwargs)

    # ------------------------------------------------------------------
    # Sharded accounting
    # ------------------------------------------------------------------

    @property
    def accounting(self) -> IoAccounting:
        """Exact merged totals across every per-device shard.

        Returns a fresh :class:`IoAccounting`; mutating it does not
        affect the bus (use :meth:`reset_accounting` to zero counters).
        Each shard is summed under its own lock, so no torn counter is
        ever observed; the merge is not a single atomic cut across
        devices, but any operation fully finished before the call is
        fully included — which is exact whenever the caller has
        quiesced the traffic it is asserting about (the fleet drains
        its queue before reading totals).
        """
        total = IoAccounting()
        with self._misc_lock:
            total.add(self._misc)
        for mapping in list(self._mappings):
            with mapping.lock:
                total.add(mapping.shard)
        return total

    @accounting.setter
    def accounting(self, value: IoAccounting) -> None:
        # The dataclass-generated __init__ assigns the default here;
        # whatever is assigned becomes the misc shard.
        self._misc = value

    def accounting_by_device(self) -> dict:
        """``mapping name -> IoAccounting`` snapshot of each shard."""
        shards: dict[str, IoAccounting] = {}
        for mapping in list(self._mappings):
            with mapping.lock:
                snapshot = mapping.shard.snapshot()
            if mapping.name in shards:
                shards[mapping.name].add(snapshot)
            else:
                shards[mapping.name] = snapshot
        return shards

    def reset_accounting(self) -> None:
        """Zero every shard (only sound while traffic is quiesced)."""
        with self._misc_lock:
            self._misc.reset()
        for mapping in list(self._mappings):
            with mapping.lock:
                mapping.shard.reset()

    # ------------------------------------------------------------------
    # Topology: attach a lock + shard to every mapping
    # ------------------------------------------------------------------

    def map_device(self, base, size, device, name: str = "") -> None:
        super().map_device(base, size, device, name)
        mapping = self._mappings[-1]
        mapping.lock = threading.Lock()
        mapping.shard = IoAccounting()

    # ------------------------------------------------------------------
    # Tracing: ring buffer guarded by one short lock
    # ------------------------------------------------------------------

    def _trace_add(self, entry: IoTraceEntry) -> None:
        with self._trace_lock:
            Bus._trace_add(self, entry)

    def _trace_extend(self, entries) -> None:
        # One lock hold for the whole block operation keeps its
        # per-word entries contiguous (iter_operations depends on it).
        with self._trace_lock:
            for entry in entries:
                Bus._trace_add(self, entry)

    # ------------------------------------------------------------------
    # Access paths (mirror the base class, under the device lock)
    # ------------------------------------------------------------------

    def read(self, port: int, width: int = 8) -> int:
        mapping = self._port_cache.get(port)
        if mapping is None:
            self._check_width(width)
            mapping = self._find(port)
        elif width not in (8, 16, 32):
            raise BusError(f"unsupported access width {width}")
        with mapping.lock:
            value = mapping.device.io_read(port - mapping.base, width)
            value &= (1 << width) - 1
            shard = mapping.shard
            shard.reads += 1
            by_width = shard.single_by_width
            by_width[width] = by_width.get(width, 0) + 1
            if self.tracing:
                self._trace_add(IoTraceEntry("r", port, value, width))
                collector = self.collector
                if collector is not None:
                    collector.io_event("r", port, value, width)
        return value

    def write(self, value: int, port: int, width: int = 8) -> None:
        mapping = self._port_cache.get(port)
        if mapping is None:
            self._check_width(width)
            mapping = self._find(port)
        elif width not in (8, 16, 32):
            raise BusError(f"unsupported access width {width}")
        value &= (1 << width) - 1
        with mapping.lock:
            mapping.device.io_write(port - mapping.base, value, width)
            shard = mapping.shard
            shard.writes += 1
            by_width = shard.single_by_width
            by_width[width] = by_width.get(width, 0) + 1
            if self.tracing:
                self._trace_add(IoTraceEntry("w", port, value, width))
                collector = self.collector
                if collector is not None:
                    collector.io_event("w", port, value, width)

    def block_read(self, port: int, count: int,
                   width: int = 16) -> list[int]:
        self._check_width(width)
        if count < 0:
            raise BusError(f"negative block count {count}")
        mapping = self._find(port)
        offset = port - mapping.base
        mask = (1 << width) - 1
        with mapping.lock:
            values = [mapping.device.io_read(offset, width) & mask
                      for _ in range(count)]
            shard = mapping.shard
            shard.block_ops += 1
            shard.block_words += count
            shard.record_block(width, count)
            if self.tracing:
                self._trace_extend(
                    [IoTraceEntry("rb", port, value, width, count)
                     for value in values])
                collector = self.collector
                if collector is not None:
                    collector.io_event("rb", port, None, width, count)
        return values

    def block_write(self, port: int, values, width: int = 16) -> int:
        self._check_width(width)
        mapping = self._find(port)
        offset = port - mapping.base
        mask = (1 << width) - 1
        count = 0
        with mapping.lock:
            traced: list[int] | None = [] if self.tracing else None
            for value in values:
                mapping.device.io_write(offset, value & mask, width)
                count += 1
                if traced is not None:
                    traced.append(value & mask)
            if traced is not None:
                self._trace_extend(
                    [IoTraceEntry("wb", port, value, width, count)
                     for value in traced])
                collector = self.collector
                if collector is not None:
                    collector.io_event("wb", port, None, width, count)
            shard = mapping.shard
            shard.block_ops += 1
            shard.block_words += count
            shard.record_block(width, count)
        return count

    # ------------------------------------------------------------------
    # Portless counters: the misc shard
    # ------------------------------------------------------------------

    def note_elided(self, count: int = 1) -> None:
        with self._misc_lock:
            self._misc.elided_reads += count

    def note_coalesced(self, count: int = 1) -> None:
        with self._misc_lock:
            self._misc.coalesced_writes += count
