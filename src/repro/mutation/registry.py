"""The campaign's target registry: every (device, style) pair, shared.

A campaign target is addressed by a stable id ``"<spec>/<style>"``:
``style`` is ``devil`` (the shipped specification itself, available
for **all 8 specs**), or ``c`` / ``cdevil`` (the transliterated Linux
driver fragment and its stub-using rewrite, available for the paper's
three devices with corpus programs).

Target construction is *hoisted and memoized per process*:
:func:`get_target` builds each :class:`~.targets.LanguageTarget` at
most once, under a lock, exactly like ``repro.specs.compile_shipped``
— so campaign-scale runs (and repeated :func:`~.experiment.run_table1`
calls) never repay the baseline spec parse, classifier-environment
construction, or site extraction.  :data:`BUILD_COUNT` counts actual
builds, which is what the memoization regression test pins.

With the process fleet's default ``fork`` start method, worker
processes inherit the parent's warm registry: the parent enumerates
sites (building every target) before the fleet starts, so workers
begin with zero re-parses.
"""

from __future__ import annotations

import hashlib
import threading

from ..specs import SPEC_NAMES, compile_shipped, load_source
from . import corpus
from .targets import LanguageTarget, c_target, cdevil_target, \
    devil_target

#: Campaign styles, in the order Table 1 prints them.
STYLES = ("c", "devil", "cdevil")

#: ``spec -> (C source, CDevil source, [(spec name, stub prefix)])``
#: for the devices with driver corpus programs (the paper's three).
DRIVER_CORPUS = {
    "busmouse": (corpus.BUSMOUSE_C, corpus.BUSMOUSE_CDEVIL,
                 [("busmouse", "bm")]),
    "ide": (corpus.IDE_C, corpus.IDE_CDEVIL,
            [("ide", "ide"), ("piix4", "pii")]),
    "ne2000": (corpus.NE2000_C, corpus.NE2000_CDEVIL,
               [("ne2000", "ne")]),
}

#: Number of actual target constructions this process performed
#: (observable memoization behaviour, mirroring the native build
#: cache's ``BUILD_COUNT``).
BUILD_COUNT = 0

_TARGETS: dict[str, LanguageTarget] = {}
_FINGERPRINTS: dict[str, str] = {}
_LOCK = threading.Lock()


def available_styles(spec: str) -> tuple[str, ...]:
    """The styles target-able for ``spec`` (all 8 specs speak Devil;
    only the corpus devices also have C and CDevil driver programs)."""
    if spec in DRIVER_CORPUS:
        return STYLES
    return ("devil",)


def target_ids(specs=SPEC_NAMES, styles=STYLES) -> list[str]:
    """Deterministic target enumeration for a campaign scope.

    Specs iterate in shipped order, styles in Table 1 order, so the
    unit stream — and therefore fleet placement — is a pure function
    of the scope, never of the caller's set ordering.
    """
    wanted_specs = set(specs)
    unknown = wanted_specs - set(SPEC_NAMES)
    if unknown:
        raise ValueError(
            f"unknown specs {sorted(unknown)}; shipped specs are "
            f"{', '.join(SPEC_NAMES)}")
    wanted_styles = set(styles)
    unknown = wanted_styles - set(STYLES)
    if unknown:
        raise ValueError(
            f"unknown styles {sorted(unknown)}; campaign styles are "
            f"{', '.join(STYLES)}")
    ids = []
    for spec in SPEC_NAMES:
        if spec not in wanted_specs:
            continue
        for style in STYLES:
            if style in wanted_styles and \
                    style in available_styles(spec):
                ids.append(f"{spec}/{style}")
    return ids


def parse_target_id(target_id: str) -> tuple[str, str]:
    spec, _, style = target_id.partition("/")
    if spec not in SPEC_NAMES or \
            style not in available_styles(spec):
        raise ValueError(f"unknown campaign target {target_id!r}")
    return spec, style


def _build_target(target_id: str) -> LanguageTarget:
    spec, style = parse_target_id(target_id)
    if style == "devil":
        return devil_target(spec, load_source(spec))
    c_source, cdevil_source, stub_specs = DRIVER_CORPUS[spec]
    if style == "c":
        return c_target(spec, c_source)
    models = [(compile_shipped(name).model, prefix)
              for name, prefix in stub_specs]
    return cdevil_target(spec, cdevil_source, models)


def get_target(target_id: str) -> LanguageTarget:
    """The shared, memoized target for ``target_id``.

    Treat the result as immutable: its sites list and classifier are
    read-only and safe to share across fleet worker threads.
    """
    global BUILD_COUNT
    target = _TARGETS.get(target_id)
    if target is None:
        with _LOCK:
            target = _TARGETS.get(target_id)
            if target is None:
                target = _build_target(target_id)
                BUILD_COUNT += 1
                _TARGETS[target_id] = target
    return target


def target_fingerprint(target_id: str) -> str:
    """Content hash of everything that determines a target's verdicts.

    Covers the mutated source itself and — for CDevil targets — the
    spec sources whose generated stub surface the classifier checks
    against: editing ``ide.devil`` re-keys every ``ide/cdevil`` unit
    even though the CDevil fragment text is unchanged.
    """
    cached = _FINGERPRINTS.get(target_id)
    if cached is not None:
        return cached
    spec, style = parse_target_id(target_id)
    digest = hashlib.sha256()
    target = get_target(target_id)
    digest.update(f"{target_id}\0{target.language}\0".encode())
    digest.update(target.source.encode())
    if style == "cdevil":
        for name, prefix in DRIVER_CORPUS[spec][2]:
            digest.update(f"\0{name}:{prefix}\0".encode())
            digest.update(load_source(name).encode())
    fingerprint = digest.hexdigest()
    with _LOCK:
        _FINGERPRINTS[target_id] = fingerprint
    return fingerprint


def _reset_registry() -> None:
    """Test hook: forget every memoized target (and the build count
    stays — tests read deltas)."""
    with _LOCK:
        _TARGETS.clear()
        _FINGERPRINTS.clear()
