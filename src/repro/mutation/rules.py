"""Mutation rules: single-character edits of program tokens.

Per §4.2 of the paper, mutants are produced by *inserting, replacing or
removing one character* of a token — the classes of error the
DeMillo/Mathur study found to be both frequent and long-lived
(typographic and inattention errors).  The rules are identical for
every language in the comparison, which is what makes Table 1 a fair
experiment: the same finger slip is applied to the C driver, the Devil
specification and the stub-using CDevil code.

Each token kind draws its edit characters from an alphabet of the same
class (digits for numbers, letters matching the token's case for
identifiers, operator glyphs for operators, mask characters for Devil
bit patterns): a typo stays within the keyboard neighbourhood of the
token, and — as the paper requires — most resulting programs remain
syntactically valid, pushing the burden of detection onto semantic
checking.

``max_mutants_per_site`` bounds the per-site workload; selection is
deterministic (seeded by the site), so every run of the analysis sees
the same mutant population.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

#: Token-class alphabets for insert/replace edits.
DIGITS = "0123456789"
HEX_DIGITS = "0123456789abcdef"
LOWER = "abcdefghijklmnopqrstuvwxyz_"
UPPER = "ABCDEFGHIJKLMNOPQRSTUVWXYZ_"
OPERATOR_CHARS = "+-*/%<>=!&|^~.@#"
BITPATTERN_CHARS = "01.*-"


@dataclass(frozen=True)
class MutationSite:
    """One mutable token of the target program."""

    kind: str          # "ident", "number", "operator", "bitpattern"
    text: str
    offset: int        # character offset of the token in the source
    line: int

    def key(self) -> str:
        return f"{self.kind}:{self.text}@{self.offset}"


@dataclass(frozen=True)
class Mutant:
    """One single-character edit of one site."""

    site: MutationSite
    mutated_token: str
    description: str

    def apply(self, source: str) -> str:
        """Rewrite the source with the mutated token in place."""
        start = self.site.offset
        end = start + len(self.site.text)
        return source[:start] + self.mutated_token + source[end:]


def alphabet_for(site: MutationSite) -> str:
    """Edit alphabet, matched to the token's character class."""
    if site.kind == "number":
        return HEX_DIGITS if site.text.lower().startswith("0x") else DIGITS
    if site.kind == "ident":
        letters = [c for c in site.text if c.isalpha()]
        if letters and all(c.isupper() for c in letters):
            return UPPER
        return LOWER
    if site.kind == "operator":
        return OPERATOR_CHARS
    if site.kind == "bitpattern":
        return BITPATTERN_CHARS
    raise ValueError(f"unknown site kind {site.kind!r}")


def _all_edits(site: MutationSite) -> Iterator[Mutant]:
    """Every removal, insertion and replacement, in a stable order."""
    text = site.text
    alphabet = alphabet_for(site)
    # Number tokens keep their radix prefix intact: mutating '0x' into
    # 'ax' is a lexical error, not a typo class the paper studies.
    protected = 2 if (site.kind == "number"
                      and text.lower().startswith("0x")) else 0
    for index in range(protected, len(text)):
        if len(text) > max(1, protected):
            removed = text[:index] + text[index + 1:]
            if removed != text:
                yield Mutant(site, removed,
                             f"remove {text[index]!r} at {index}")
    for index in range(protected, len(text) + 1):
        for char in alphabet:
            inserted = text[:index] + char + text[index:]
            yield Mutant(site, inserted, f"insert {char!r} at {index}")
    for index in range(protected, len(text)):
        for char in alphabet:
            if char == text[index]:
                continue
            replaced = text[:index] + char + text[index + 1:]
            yield Mutant(site, replaced, f"replace {text[index]!r} with "
                                         f"{char!r} at {index}")


def mutants_for_site(site: MutationSite,
                     max_mutants: int | None = None) -> list[Mutant]:
    """The mutant population of ``site``.

    When ``max_mutants`` is given, a deterministic site-seeded sample of
    that size is drawn (stratified over the full edit enumeration), so
    partial runs measure the same population every time.
    """
    all_mutants = list(_all_edits(site))
    # Distinct mutated tokens only (different edits can collide).
    unique: dict[str, Mutant] = {}
    for mutant in all_mutants:
        unique.setdefault(mutant.mutated_token, mutant)
    population = list(unique.values())
    if max_mutants is None or len(population) <= max_mutants:
        return population
    seed = int.from_bytes(
        hashlib.sha256(site.key().encode()).digest()[:8], "big")
    stride = max(1, len(population) // max_mutants)
    start = seed % stride
    sample = population[start::stride][:max_mutants]
    return sample
