"""Mutation analysis: the robustness study of Table 1.

Reproduces §4.2 of the paper: single-character mutants are injected
into the hardware operating code of three drivers written in C, into
the corresponding Devil specifications, and into the stub-using CDevil
code; the fraction the compiler/checker rejects measures each
language's error-detection coverage.

Two entry points share one engine: :func:`run_table1` is the paper's
serial three-device study, and :func:`run_campaign` scales the same
verdicts into a fleet-scheduled, verdict-cached campaign over all 8
shipped specs (see ``docs/MUTATION.md``).
"""

from .analysis import (
    MutantCaps,
    DeviceRows,
    SiteOutcome,
    TargetOutcome,
    analyze_target,
    format_table,
)
from .campaign import (
    BACKENDS,
    CAMPAIGN_VERSION,
    CampaignConfig,
    CampaignResult,
    CampaignUnit,
    evaluate_unit,
    generate_units,
    run_campaign,
    unit_key,
)
from .experiment import run_table1
from .registry import (
    DRIVER_CORPUS,
    STYLES,
    available_styles,
    get_target,
    parse_target_id,
    target_fingerprint,
    target_ids,
)
from .report import CampaignReport
from .rules import Mutant, MutationSite, mutants_for_site
from .vcache import VerdictCache, default_cache_dir
from .targets import (
    LanguageTarget,
    c_target,
    cdevil_target,
    devil_target,
    stub_externals,
)

__all__ = [
    "BACKENDS",
    "CAMPAIGN_VERSION",
    "CampaignConfig",
    "CampaignReport",
    "CampaignResult",
    "CampaignUnit",
    "DRIVER_CORPUS",
    "DeviceRows",
    "MutantCaps",
    "STYLES",
    "VerdictCache",
    "available_styles",
    "default_cache_dir",
    "evaluate_unit",
    "generate_units",
    "get_target",
    "parse_target_id",
    "run_campaign",
    "target_fingerprint",
    "target_ids",
    "unit_key",
    "LanguageTarget",
    "Mutant",
    "MutationSite",
    "SiteOutcome",
    "TargetOutcome",
    "analyze_target",
    "c_target",
    "cdevil_target",
    "devil_target",
    "format_table",
    "mutants_for_site",
    "run_table1",
    "stub_externals",
]
