"""Mutation analysis: the robustness study of Table 1.

Reproduces §4.2 of the paper: single-character mutants are injected
into the hardware operating code of three drivers written in C, into
the corresponding Devil specifications, and into the stub-using CDevil
code; the fraction the compiler/checker rejects measures each
language's error-detection coverage.
"""

from .analysis import (
    MutantCaps,
    DeviceRows,
    SiteOutcome,
    TargetOutcome,
    analyze_target,
    format_table,
)
from .experiment import run_table1
from .rules import Mutant, MutationSite, mutants_for_site
from .targets import (
    LanguageTarget,
    c_target,
    cdevil_target,
    devil_target,
    stub_externals,
)

__all__ = [
    "DeviceRows",
    "MutantCaps",
    "LanguageTarget",
    "Mutant",
    "MutationSite",
    "SiteOutcome",
    "TargetOutcome",
    "analyze_target",
    "c_target",
    "cdevil_target",
    "devil_target",
    "format_table",
    "mutants_for_site",
    "run_table1",
    "stub_externals",
]
