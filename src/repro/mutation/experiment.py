"""The Table 1 experiment: wiring corpus, specifications and engine.

:func:`run_table1` reproduces the paper's robustness study on the same
three devices (Logitech busmouse, IDE/PIIX4, NE2000) across the same
four rows per device (C, Devil, CDevil, Devil+CDevil).

Targets come from the shared :mod:`.registry`, so the spec parses,
classifier environments and site extraction are built once per process
no matter how many times (or through how many entry points — this
function, a :mod:`.campaign`, the CLI) the experiment runs.
"""

from __future__ import annotations

from .analysis import DeviceRows, MutantCaps, analyze_target
from .registry import get_target


def _busmouse_rows(caps: MutantCaps | None) -> DeviceRows:
    return DeviceRows(
        "Busmouse",
        analyze_target(get_target("busmouse/c"), caps),
        analyze_target(get_target("busmouse/devil"), caps),
        analyze_target(get_target("busmouse/cdevil"), caps))


def _ide_rows(caps: MutantCaps | None) -> DeviceRows:
    c_outcome = analyze_target(get_target("ide/c"), caps)
    # The paper wrote two specifications for the re-engineered IDE
    # driver (IDE proper and the PIIX4 busmaster); both are mutated.
    devil_outcome = analyze_target(get_target("ide/devil"), caps)
    piix4_outcome = analyze_target(get_target("piix4/devil"), caps)
    devil_merged = devil_outcome.merged_with(piix4_outcome, "ide")
    devil_merged.language = "Devil"
    cdevil_outcome = analyze_target(get_target("ide/cdevil"), caps)
    return DeviceRows("IDE", c_outcome, devil_merged, cdevil_outcome)


def _ne2000_rows(caps: MutantCaps | None) -> DeviceRows:
    return DeviceRows(
        "Ethernet",
        analyze_target(get_target("ne2000/c"), caps),
        analyze_target(get_target("ne2000/devil"), caps),
        analyze_target(get_target("ne2000/cdevil"), caps))


def run_table1(caps: MutantCaps | None = None,
               devices: tuple[str, ...] = ("busmouse", "ide", "ne2000")
               ) -> list[DeviceRows]:
    """Run the full mutation study and return one row set per device."""
    builders = {
        "busmouse": _busmouse_rows,
        "ide": _ide_rows,
        "ne2000": _ne2000_rows,
    }
    return [builders[device](caps) for device in devices]
