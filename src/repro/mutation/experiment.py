"""The Table 1 experiment: wiring corpus, specifications and engine.

:func:`run_table1` reproduces the paper's robustness study on the same
three devices (Logitech busmouse, IDE/PIIX4, NE2000) across the same
four rows per device (C, Devil, CDevil, Devil+CDevil).
"""

from __future__ import annotations

from ..specs import compile_shipped, load_source
from . import corpus
from .analysis import DeviceRows, MutantCaps, analyze_target
from .targets import c_target, cdevil_target, devil_target


def _busmouse_rows(caps: MutantCaps | None) -> DeviceRows:
    spec = compile_shipped("busmouse")
    c_outcome = analyze_target(
        c_target("busmouse", corpus.BUSMOUSE_C), caps)
    devil_outcome = analyze_target(
        devil_target("busmouse", load_source("busmouse")), caps)
    cdevil_outcome = analyze_target(
        cdevil_target("busmouse", corpus.BUSMOUSE_CDEVIL,
                      [(spec.model, "bm")]), caps)
    return DeviceRows("Busmouse", c_outcome, devil_outcome, cdevil_outcome)


def _ide_rows(caps: MutantCaps | None) -> DeviceRows:
    ide_spec = compile_shipped("ide")
    piix4_spec = compile_shipped("piix4")
    c_outcome = analyze_target(c_target("ide", corpus.IDE_C), caps)
    # The paper wrote two specifications for the re-engineered IDE
    # driver (IDE proper and the PIIX4 busmaster); both are mutated.
    devil_outcome = analyze_target(
        devil_target("ide", load_source("ide")), caps)
    piix4_outcome = analyze_target(
        devil_target("piix4", load_source("piix4")), caps)
    devil_merged = devil_outcome.merged_with(piix4_outcome, "ide")
    devil_merged.language = "Devil"
    cdevil_outcome = analyze_target(
        cdevil_target("ide", corpus.IDE_CDEVIL,
                      [(ide_spec.model, "ide"),
                       (piix4_spec.model, "pii")]), caps)
    return DeviceRows("IDE", c_outcome, devil_merged, cdevil_outcome)


def _ne2000_rows(caps: MutantCaps | None) -> DeviceRows:
    spec = compile_shipped("ne2000")
    c_outcome = analyze_target(
        c_target("ne2000", corpus.NE2000_C), caps)
    devil_outcome = analyze_target(
        devil_target("ne2000", load_source("ne2000")), caps)
    cdevil_outcome = analyze_target(
        cdevil_target("ne2000", corpus.NE2000_CDEVIL,
                      [(spec.model, "ne")]), caps)
    return DeviceRows("Ethernet", c_outcome, devil_outcome, cdevil_outcome)


def run_table1(caps: MutantCaps | None = None,
               devices: tuple[str, ...] = ("busmouse", "ide", "ne2000")
               ) -> list[DeviceRows]:
    """Run the full mutation study and return one row set per device."""
    builders = {
        "busmouse": _busmouse_rows,
        "ide": _ide_rows,
        "ne2000": _ne2000_rows,
    }
    return [builders[device](caps) for device in devices]
