"""The mutation campaign engine: Table 1 as a fleet workload.

The paper's robustness study was a one-shot serial script over three
devices.  :func:`run_campaign` scales it into a scheduled workload:

1. **Scope** — a :class:`CampaignConfig` names the spec subset (up to
   all 8 shipped specs), the driver styles (``c``/``devil``/
   ``cdevil``), the per-site mutant budget and an optional per-target
   site budget.
2. **Unit generation** — every mutation site of every in-scope target
   becomes one :class:`CampaignUnit`, keyed by a content hash over the
   target fingerprint, the site, and the *exact mutant population*
   (see :mod:`.vcache`).  Unit order is deterministic.
3. **Cache probe** — units whose verdicts the on-disk cache already
   holds are served without evaluation; everything else is scheduled.
4. **Scheduling** — pending units are encoded as picklable fleet
   requests (``functools.partial`` over
   :func:`evaluate_unit_request`) and run on a serial loop, the thread
   :class:`~repro.engine.fleet.Fleet`, or the
   :class:`~repro.engine.mp.ProcessFleet` (built by
   :func:`repro.engine.compute.compute_fleet`).  Placement happens at
   submit time under a deterministic policy, so a campaign's
   unit→worker assignment is a pure function of its scope — and
   because each unit's verdict is a pure function of its key, every
   backend produces byte-identical reports.
5. **Aggregation** — workers publish verdicts through the cache (the
   result transport); the parent reads them back after ``drain`` and
   folds them into a :class:`~.report.CampaignReport` with
   per-device/per-language/per-rule breakdowns plus the paper's
   Table 1 rows as a projection.

Re-runs are incremental: a spec or corpus edit re-keys only the units
it touches; everything else is a cache hit.  An unchanged immediate
re-run evaluates nothing.
"""

from __future__ import annotations

import functools
import hashlib
import json
import shutil
import tempfile
import time
from dataclasses import dataclass, field

from .analysis import MutantCaps, _analyze_site
from .registry import STYLES, get_target, target_fingerprint, target_ids
from .rules import mutants_for_site
from .vcache import SCHEMA_VERSION, VerdictCache
from ..specs import SPEC_NAMES

#: Bump when unit evaluation semantics change without a vcache schema
#: change (classification rules, site analysis); part of every unit key.
CAMPAIGN_VERSION = 1

#: Campaign execution backends.
BACKENDS = ("serial", "thread", "process")


def _caps_tuple(caps: MutantCaps) -> tuple:
    return (caps.ident, caps.number, caps.operator, caps.bitpattern)


def _caps_from_tuple(values) -> MutantCaps:
    return MutantCaps(*values)


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign's scope and execution substrate."""

    specs: tuple = SPEC_NAMES
    styles: tuple = STYLES
    caps: MutantCaps = field(default_factory=lambda: MutantCaps.quick())
    #: Per-target site budget (first N sites, deterministic); None =
    #: every site — required for an exact Table 1 projection.
    max_sites: int | None = None
    backend: str = "serial"
    workers: int = 4
    #: Process-backend IPC batching (see ``repro.engine.mp``).
    batch_size: int | str = "auto"

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown campaign backend {self.backend!r} "
                f"(have: {', '.join(BACKENDS)})")
        if self.workers < 1:
            raise ValueError(
                f"need at least one worker (got {self.workers})")
        if self.max_sites is not None and self.max_sites < 1:
            raise ValueError(
                f"max_sites must be positive or None "
                f"(got {self.max_sites})")

    def describe(self) -> dict:
        """The verdict-determining scope — deliberately excludes the
        execution substrate (backend, workers, batching), so reports
        built from the same scope are byte-identical whatever ran
        them.  See :meth:`CampaignResult.stats` for the run side."""
        return {
            "specs": list(self.specs),
            "styles": list(self.styles),
            "caps": list(_caps_tuple(self.caps)),
            "max_sites": self.max_sites,
        }


@dataclass(frozen=True)
class CampaignUnit:
    """One schedulable verdict: one site of one target, one budget."""

    target_id: str
    site_index: int
    site_key: str          # guard against registry/version skew
    caps: tuple
    key: str               # the vcache key

    def token(self) -> dict:
        """The picklable wire form (plain primitives only)."""
        return {"target_id": self.target_id,
                "site_index": self.site_index,
                "site_key": self.site_key,
                "caps": self.caps,
                "key": self.key}

    @classmethod
    def from_token(cls, token: dict) -> "CampaignUnit":
        return cls(target_id=token["target_id"],
                   site_index=token["site_index"],
                   site_key=token["site_key"],
                   caps=tuple(token["caps"]),
                   key=token["key"])


def unit_key(target_id: str, fingerprint: str, site,
             caps: MutantCaps) -> str:
    """Content hash identifying one unit's verdict.

    Includes the hash of the exact mutant-token population, so a
    change to the mutation rules re-keys affected units even if the
    version constants were forgotten.
    """
    population = mutants_for_site(site, caps.for_kind(site.kind))
    mutant_digest = hashlib.sha256(
        "\0".join(m.mutated_token for m in population).encode())
    payload = json.dumps([
        SCHEMA_VERSION, CAMPAIGN_VERSION, target_id, fingerprint,
        site.kind, site.text, site.offset, site.line,
        list(_caps_tuple(caps)), mutant_digest.hexdigest(),
    ], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def generate_units(config: CampaignConfig) -> list[CampaignUnit]:
    """The campaign's deterministic unit stream.

    Building the units builds (and memoizes) every in-scope target in
    the parent — which is what lets forked process workers start with
    a warm registry — and verifies each target's unmutated baseline
    checks clean, exactly like :func:`~.analysis.analyze_target`.
    """
    units: list[CampaignUnit] = []
    caps = config.caps
    for target_id in target_ids(config.specs, config.styles):
        target = get_target(target_id)
        if target.classify(target.source) != "undetected":
            raise ValueError(
                f"campaign target {target_id!r} must check clean "
                f"unmutated")
        fingerprint = target_fingerprint(target_id)
        sites = target.sites
        if config.max_sites is not None:
            sites = sites[:config.max_sites]
        for index, site in enumerate(sites):
            units.append(CampaignUnit(
                target_id=target_id, site_index=index,
                site_key=site.key(), caps=_caps_tuple(caps),
                key=unit_key(target_id, fingerprint, site, caps)))
    return units


# ---------------------------------------------------------------------------
# Unit evaluation (runs in fleet workers — must stay picklable)
# ---------------------------------------------------------------------------


def evaluate_unit(token: dict, cache_root: str) -> dict:
    """Evaluate one unit and publish its verdict record to the cache.

    Pure with respect to scheduling: the record depends only on the
    unit, never on which worker ran it or in what order.
    """
    unit = CampaignUnit.from_token(token)
    target = get_target(unit.target_id)
    if unit.site_index >= len(target.sites):
        raise ValueError(
            f"unit {unit.key[:12]} indexes site {unit.site_index} of "
            f"{unit.target_id!r}, which has only "
            f"{len(target.sites)} sites (stale campaign?)")
    site = target.sites[unit.site_index]
    if site.key() != unit.site_key:
        raise ValueError(
            f"unit {unit.key[:12]} expected site {unit.site_key!r} "
            f"at index {unit.site_index} of {unit.target_id!r}, "
            f"found {site.key()!r} (stale campaign?)")
    outcome = _analyze_site(target, site, _caps_from_tuple(unit.caps))
    record = {
        "target_id": unit.target_id,
        "site": {"kind": site.kind, "text": site.text,
                 "offset": site.offset, "line": site.line},
        "mutants": outcome.mutants,
        "detected": outcome.detected,
        "undetected": outcome.undetected,
        "survivors": list(outcome.survivors),
    }
    VerdictCache(cache_root).put(unit.key, record)
    return record


def evaluate_unit_request(stubs, aux, *, token, cache_root):
    """The fleet-request form of :func:`evaluate_unit`.

    Shaped like every fleet request (``fn(stubs, aux)``) but touches
    no device state: the campaign is a pure-compute workload riding
    the fleet's scheduling, batching and telemetry.  Module-level so
    ``functools.partial`` over it ships to process workers through the
    request codec; the bound ``token``/``cache_root`` travel by value.
    """
    return evaluate_unit(token, cache_root)


# ---------------------------------------------------------------------------
# The campaign runner
# ---------------------------------------------------------------------------


@dataclass
class CampaignResult:
    """A finished campaign: the report plus run accounting."""

    config: CampaignConfig
    report: "CampaignReport"
    #: Unit counts: total, served from cache, evaluated, corrupt
    #: entries recovered, and units salvaged by the parent after a
    #: fleet run came back incomplete.
    units: int = 0
    cache_hits: int = 0
    evaluated: int = 0
    corrupt_recovered: int = 0
    salvaged: int = 0
    elapsed_s: float = 0.0
    #: ``label -> completed unit count`` on the fleet backends (the
    #: submit-time placement record; empty for serial runs).
    placement: dict = field(default_factory=dict)

    def stats(self) -> dict:
        return {"units": self.units, "cache_hits": self.cache_hits,
                "evaluated": self.evaluated,
                "corrupt_recovered": self.corrupt_recovered,
                "salvaged": self.salvaged,
                "elapsed_s": self.elapsed_s,
                "backend": self.config.backend,
                "workers": self.config.workers}


def _run_units_serial(pending, cache_root, progress) -> None:
    for index, unit in enumerate(pending):
        evaluate_unit(unit.token(), cache_root)
        if progress is not None and (index + 1) % 25 == 0:
            progress(f"evaluated {index + 1}/{len(pending)} units")


#: Units submitted per worker between drains.  Waves bound how much
#: work can queue ahead of a drain's sync message, keeping the process
#: backend's wedge detection (sync timeout, stall windows) meaningful
#: on campaign-scale runs — a full campaign is minutes of CPU, far
#: beyond any sane sync timeout for a single drain.  The round-robin
#: cursor persists across waves, so placement is identical to one
#: giant submission.
WAVE_UNITS_PER_WORKER = 64


def _run_units_fleet(config, pending, cache_root, telemetry,
                     health_log, progress):
    """Schedule pending units across a compute fleet; returns the
    placement record (``label -> completed``)."""
    from ..engine.compute import compute_fleet

    fleet = compute_fleet(config.backend, config.workers,
                          batch_size=config.batch_size,
                          telemetry=telemetry)
    monitor = None
    if health_log:
        from ..obs.live import LiveMonitor

        monitor = LiveMonitor(fleet, interval=0.25,
                              log_path=health_log)
    wave = config.workers * WAVE_UNITS_PER_WORKER
    with fleet:
        if monitor is not None:
            monitor.start()
        try:
            for start in range(0, len(pending), wave):
                chunk = pending[start:start + wave]
                fleet.submit_batch(
                    (fleet.compute_spec,
                     functools.partial(evaluate_unit_request,
                                       token=unit.token(),
                                       cache_root=cache_root))
                    for unit in chunk)
                fleet.drain()
                if progress is not None:
                    progress(f"fleet evaluated "
                             f"{min(start + wave, len(pending))}/"
                             f"{len(pending)} units")
        finally:
            if monitor is not None:
                monitor.stop()
        placement = fleet.completed_by_device()
    return placement


def run_campaign(config: CampaignConfig,
                 cache: VerdictCache | None = None,
                 telemetry=None, health_log: str | None = None,
                 progress=None) -> CampaignResult:
    """Run one mutation campaign and aggregate its report.

    ``cache`` is the verdict store (and, on the fleet backends, the
    result transport); ``None`` uses a private temporary directory
    discarded at the end — a cold, cache-less run.  ``progress`` is an
    optional ``fn(message: str)`` narration hook; ``telemetry`` and
    ``health_log`` attach the live telemetry plane to fleet backends
    exactly as ``devil fleet`` does.
    """
    from .report import CampaignReport

    started = time.perf_counter()
    private_root = None
    if cache is None:
        private_root = tempfile.mkdtemp(prefix="devil-campaign-")
        cache = VerdictCache(private_root)
    try:
        units = generate_units(config)
        if progress is not None:
            progress(f"{len(units)} units across "
                     f"{len(target_ids(config.specs, config.styles))} "
                     f"targets")
        records: dict[str, dict] = {}
        pending: list[CampaignUnit] = []
        corrupt_before = cache.corrupt
        for unit in units:
            record = cache.get(unit.key)
            if record is None:
                pending.append(unit)
            else:
                records[unit.key] = record
        cache_hits = len(records)
        corrupt_recovered = cache.corrupt - corrupt_before
        if progress is not None and units:
            progress(f"cache: {cache_hits} hits, "
                     f"{len(pending)} to evaluate"
                     + (f", {corrupt_recovered} corrupt recovered"
                        if corrupt_recovered else ""))

        placement: dict = {}
        if pending:
            if config.backend == "serial":
                _run_units_serial(pending, str(cache.root), progress)
            else:
                placement = _run_units_fleet(
                    config, pending, str(cache.root), telemetry,
                    health_log, progress)

        # Read back what the workers published.  A unit that is still
        # missing (a lost write, a full disk) is salvaged serially in
        # the parent — determinism is unaffected, verdicts are pure.
        salvaged = 0
        for unit in pending:
            record = cache.get(unit.key)
            if record is None:
                record = evaluate_unit(unit.token(), str(cache.root))
                salvaged += 1
            records[unit.key] = record

        report = CampaignReport.from_records(
            config, [records[unit.key] for unit in units])
        return CampaignResult(
            config=config, report=report, units=len(units),
            cache_hits=cache_hits,
            evaluated=len(pending) - salvaged,
            corrupt_recovered=corrupt_recovered, salvaged=salvaged,
            elapsed_s=time.perf_counter() - started,
            placement=placement)
    finally:
        if private_root is not None:
            shutil.rmtree(private_root, ignore_errors=True)
