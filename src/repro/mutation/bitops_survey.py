"""The introduction's measurement: how much of driver code is bit fiddling.

§1 of the paper: "we have found that bit operations can represent up to
30% of driver code.  This measurement was performed on various Linux
2.2-12 drivers."  This module reruns the measurement over this
repository's corpus: the C driver fragments (transliterated from those
same Linux drivers) and, for contrast, the CDevil fragments, where the
masking and shifting has moved into the generated stubs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..minic import CTokenKind, tokenize_c

#: Operators that constitute bit manipulation.
BIT_OPERATORS = frozenset({"&", "|", "^", "~", "<<", ">>",
                           "&=", "|=", "^=", "<<=", ">>="})


@dataclass
class BitOpsReport:
    """Bit-operation density of one program."""

    name: str
    total_lines: int
    bitop_lines: int
    bitop_tokens: int
    hex_literals: int

    @property
    def line_fraction(self) -> float:
        if not self.total_lines:
            return 0.0
        return self.bitop_lines / self.total_lines


def survey_c_source(name: str, source: str) -> BitOpsReport:
    """Measure the bit-operation density of one C fragment.

    A line counts as a bit-operation line when it contains a bitwise
    operator or a hexadecimal mask literal — the operational definition
    behind the paper's "up to 30%" figure.
    """
    bitop_lines: set[int] = set()
    bitop_tokens = 0
    hex_literals = 0
    for token in tokenize_c(source):
        if token.kind is CTokenKind.OPERATOR and \
                token.text in BIT_OPERATORS:
            bitop_tokens += 1
            bitop_lines.add(token.line)
        elif token.kind is CTokenKind.NUMBER and \
                token.text.lower().startswith("0x"):
            hex_literals += 1
            bitop_lines.add(token.line)
    code_lines = [line for line in source.splitlines()
                  if line.strip() and not line.strip().startswith("/*")
                  and not line.strip().startswith("//")
                  and not line.strip().startswith("*")]
    return BitOpsReport(name, len(code_lines), len(bitop_lines),
                        bitop_tokens, hex_literals)


def run_survey() -> list[BitOpsReport]:
    """Survey every C and CDevil program of the mutation corpus."""
    from . import corpus
    programs = [
        ("busmouse (C)", corpus.BUSMOUSE_C),
        ("ide (C)", corpus.IDE_C),
        ("ne2000 (C)", corpus.NE2000_C),
        ("busmouse (CDevil)", corpus.BUSMOUSE_CDEVIL),
        ("ide (CDevil)", corpus.IDE_CDEVIL),
        ("ne2000 (CDevil)", corpus.NE2000_CDEVIL),
    ]
    return [survey_c_source(name, source) for name, source in programs]


def format_survey(reports: list[BitOpsReport]) -> str:
    header = (f"{'Program':<22} {'Lines':>6} {'Bit-op lines':>13} "
              f"{'Fraction':>9} {'Bit ops':>8} {'Hex lits':>9}")
    lines = [header, "-" * len(header)]
    for report in reports:
        lines.append(
            f"{report.name:<22} {report.total_lines:>6} "
            f"{report.bitop_lines:>13} {report.line_fraction:>8.0%} "
            f"{report.bitop_tokens:>8} {report.hex_literals:>9}")
    return "\n".join(lines)
