"""Campaign aggregation: breakdowns and the Table 1 projection.

A :class:`CampaignReport` folds the campaign's per-site verdict
records into:

* **per-target outcomes** — exact reconstructions of what
  :func:`~.analysis.analyze_target` would return for each (device,
  style) pair, rebuilt from the cached records;
* **breakdowns** — detection statistics grouped by device spec, by
  language, and by mutation rule class (identifier / number / operator
  / bit pattern), the campaign-scale view the one-shot script never
  had;
* **the Table 1 projection** — for the paper's three devices, the
  exact :class:`~.analysis.DeviceRows` the serial
  :func:`~.experiment.run_table1` produces, row for row and byte for
  byte (available whenever the campaign scope covers the device's
  full target complement with no site budget).

Everything here is a pure function of the verdict records, so two
campaigns over the same scope — whatever their backend, worker count
or cache state — render identical reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .analysis import DeviceRows, SiteOutcome, TargetOutcome, \
    format_table
from .registry import get_target, parse_target_id
from .rules import MutationSite

#: The Table 1 projection: paper device label -> required targets.
#: ``devil`` lists the spec targets merged into the Devil row (the
#: paper's IDE row merges the IDE and PIIX4 specifications).
TABLE1_DEVICES = (
    ("Busmouse", {"c": "busmouse/c", "devil": ("busmouse/devil",),
                  "cdevil": "busmouse/cdevil", "merge_name": "busmouse"}),
    ("IDE", {"c": "ide/c", "devil": ("ide/devil", "piix4/devil"),
             "cdevil": "ide/cdevil", "merge_name": "ide"}),
    ("Ethernet", {"c": "ne2000/c", "devil": ("ne2000/devil",),
                  "cdevil": "ne2000/cdevil", "merge_name": "ne2000"}),
)


def _outcome_from_records(target_id: str, records) -> TargetOutcome:
    """Rebuild the exact ``analyze_target`` outcome from verdicts.

    Records arrive in site order; sites whose mutant population came
    up empty are dropped, exactly like the serial engine.
    """
    target = get_target(target_id)
    outcome = TargetOutcome(target.name, target.language,
                            target.lines_of_code)
    for record in records:
        if not record["mutants"]:
            continue
        site = record["site"]
        outcome.site_outcomes.append(SiteOutcome(
            site=MutationSite(site["kind"], site["text"],
                              site["offset"], site["line"]),
            mutants=record["mutants"],
            detected=record["detected"],
            undetected=record["undetected"],
            survivors=list(record["survivors"])))
    return outcome


def _fold(bucket: dict, record: dict) -> None:
    bucket["sites"] += 1 if record["mutants"] else 0
    bucket["mutants"] += record["mutants"]
    bucket["detected"] += record["detected"]
    bucket["undetected"] += record["undetected"]


def _new_bucket() -> dict:
    return {"sites": 0, "mutants": 0, "detected": 0, "undetected": 0}


@dataclass
class CampaignReport:
    """Aggregated verdicts of one campaign scope."""

    #: Echo of the scope that produced the report (plain JSON shape).
    scope: dict
    #: ``target_id -> verdict records`` in site order.
    records: dict = field(default_factory=dict)

    @classmethod
    def from_records(cls, config, records) -> "CampaignReport":
        grouped: dict[str, list] = {}
        for record in records:
            grouped.setdefault(record["target_id"], []).append(record)
        return cls(scope=config.describe(), records=grouped)

    # -- per-target outcomes --------------------------------------------

    def outcomes(self) -> dict[str, TargetOutcome]:
        return {target_id: _outcome_from_records(target_id, records)
                for target_id, records in self.records.items()}

    # -- breakdowns -----------------------------------------------------

    def by_device(self) -> dict:
        """Detection stats per device spec (styles folded together)."""
        result: dict[str, dict] = {}
        for target_id, records in self.records.items():
            spec, _ = parse_target_id(target_id)
            bucket = result.setdefault(spec, _new_bucket())
            for record in records:
                _fold(bucket, record)
        return result

    def by_language(self) -> dict:
        """Detection stats per language (C / Devil / CDevil)."""
        result: dict[str, dict] = {}
        for target_id, records in self.records.items():
            language = get_target(target_id).language
            bucket = result.setdefault(language, _new_bucket())
            for record in records:
                _fold(bucket, record)
        return result

    def by_rule(self) -> dict:
        """Detection stats per mutation rule class (site token kind)."""
        result: dict[str, dict] = {}
        for records in self.records.values():
            for record in records:
                bucket = result.setdefault(record["site"]["kind"],
                                           _new_bucket())
                _fold(bucket, record)
        return result

    # -- the Table 1 projection -----------------------------------------

    def table1_device_rows(self) -> list[DeviceRows]:
        """The paper's rows, for every device the scope fully covers.

        Exact only without a site budget (``max_sites`` truncates
        populations); partially covered devices are skipped rather
        than rendered misleadingly.
        """
        if self.scope.get("max_sites") is not None:
            return []
        rows: list[DeviceRows] = []
        for device, spec_map in TABLE1_DEVICES:
            needed = [spec_map["c"], *spec_map["devil"],
                      spec_map["cdevil"]]
            if any(target_id not in self.records
                   for target_id in needed):
                continue
            outcomes = {target_id:
                        _outcome_from_records(
                            target_id, self.records[target_id])
                        for target_id in needed}
            devil_parts = [outcomes[t] for t in spec_map["devil"]]
            devil = devil_parts[0]
            for part in devil_parts[1:]:
                devil = devil.merged_with(part, spec_map["merge_name"])
                devil.language = "Devil"
            rows.append(DeviceRows(device, outcomes[spec_map["c"]],
                                   devil, outcomes[spec_map["cdevil"]]))
        return rows

    def table1_rows(self) -> list[dict]:
        """The projection in the paper's column order (flat dicts)."""
        return [row for device_rows in self.table1_device_rows()
                for row in device_rows.rows()]

    # -- rendering ------------------------------------------------------

    def to_payload(self) -> dict:
        """The full report as a JSON-ready tree (deterministic)."""
        targets = {}
        for target_id, outcome in sorted(self.outcomes().items()):
            targets[target_id] = {
                "language": outcome.language,
                "lines": outcome.lines_of_code,
                "sites": outcome.sites,
                "mutants": outcome.total_mutants,
                "detected": outcome.total_mutants -
                    outcome.total_undetected,
                "undetected": outcome.total_undetected,
                "undetected_per_site":
                    round(outcome.undetected_per_site, 4),
                "sites_with_undetected":
                    round(outcome.sites_with_undetected, 4),
            }
        return {
            "scope": self.scope,
            "targets": targets,
            "by_device": self.by_device(),
            "by_language": self.by_language(),
            "by_rule": self.by_rule(),
            "table1": self.table1_rows(),
        }

    def to_json(self) -> str:
        """Canonical serialization: byte-comparable across backends."""
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) \
            + "\n"

    def format(self) -> str:
        """Human-readable campaign summary."""
        lines = []
        header = (f"{'Target':<20} {'Lang':<7} {'Sites':>6} "
                  f"{'Mutants':>8} {'Undet':>6} {'Undet/site':>11}")
        lines.append(header)
        lines.append("-" * len(header))
        for target_id, outcome in sorted(self.outcomes().items()):
            lines.append(
                f"{target_id:<20} {outcome.language:<7} "
                f"{outcome.sites:>6} {outcome.total_mutants:>8} "
                f"{outcome.total_undetected:>6} "
                f"{outcome.undetected_per_site:>11.2f}")
        lines.append("")
        lines.append(f"{'Rule class':<12} {'Sites':>6} {'Mutants':>8} "
                     f"{'Undet':>6}")
        for kind, bucket in sorted(self.by_rule().items()):
            lines.append(f"{kind:<12} {bucket['sites']:>6} "
                         f"{bucket['mutants']:>8} "
                         f"{bucket['undetected']:>6}")
        device_rows = self.table1_device_rows()
        if device_rows:
            lines.append("")
            lines.append("Table 1 projection (paper devices):")
            lines.append(format_table(device_rows))
        return "\n".join(lines)
