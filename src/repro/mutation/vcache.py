"""The on-disk verdict cache: incremental re-runs of the campaign.

Every campaign work unit — one mutation site of one target, evaluated
under one mutant budget — stores its verdict record here, keyed by a
content hash over ``(target fingerprint, site identity, the exact
mutant population, mutant caps, codegen/campaign version)``.  The key
construction makes staleness structural rather than temporal: editing
a spec or corpus fragment changes the target fingerprint, editing the
mutation rules changes the mutant-population hash, and bumping the
codegen or campaign version invalidates everything — so a re-run after
any change re-evaluates exactly the units the change can affect and
serves the rest from disk.

The cache is also the campaign's *result transport*: fleet workers
(threads or processes) write verdicts here as they evaluate, and the
parent reads them back after ``drain`` — the same pattern as the
flock-serialized native build cache (:mod:`repro.devil.native.build`),
which this module is modeled on.  Writes are atomic
(``os.replace`` of a same-directory temp file) and serialized per key
by an ``fcntl.flock`` where the platform has one; records are
idempotent (a unit's verdict is a pure function of its key), so
concurrent writers of the same key publish identical bytes and
last-writer-wins is exact.

Corrupt entries — truncated JSON, garbled payloads, schema or key
mismatches — are treated as misses and counted in
:attr:`VerdictCache.corrupt`; the campaign then re-evaluates the unit
instead of crashing or trusting the bad record.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

try:
    import fcntl
except ImportError:                     # non-POSIX: atomic publish only
    fcntl = None

#: Environment override for the cache directory (CI points this at a
#: directory restored across runs, exactly like the native build cache).
CACHE_ENV = "DEVIL_CAMPAIGN_CACHE"

#: Bump to invalidate every cached verdict (record layout or
#: classification semantics changed).
SCHEMA_VERSION = 1

#: Fields every verdict record must carry, with their types.
_REQUIRED_FIELDS = {
    "schema": int,
    "key": str,
    "target_id": str,
    "site": dict,
    "mutants": int,
    "detected": int,
    "undetected": int,
    "survivors": list,
}

_SITE_FIELDS = {"kind": str, "text": str, "offset": int, "line": int}


def default_cache_dir() -> Path:
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "devil-campaign"


class VerdictCache:
    """One campaign verdict store rooted at ``root``.

    Entries live at ``<root>/<key[:2]>/<key>.json`` (two-level fanout
    keeps directories small at campaign scale).  ``hits``/``misses``/
    ``corrupt``/``writes`` count this instance's traffic — the
    campaign's incrementality numbers come straight from them.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else \
            default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- read -----------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The verdict record for ``key``, or ``None`` on miss.

        A present-but-unusable entry (truncated write, garbled bytes,
        wrong schema, key mismatch) counts as ``corrupt`` *and* as a
        miss: the caller re-evaluates, and the eventual :meth:`put`
        overwrites the bad entry.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.corrupt += 1
            self.misses += 1
            return None
        record = self._validate(key, text)
        if record is None:
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return record

    @staticmethod
    def _validate(key: str, text: str) -> dict | None:
        try:
            record = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        for field, kind in _REQUIRED_FIELDS.items():
            value = record.get(field)
            if not isinstance(value, kind) or \
                    (kind is int and isinstance(value, bool)):
                return None
        if record["schema"] != SCHEMA_VERSION or record["key"] != key:
            return None
        site = record["site"]
        for field, kind in _SITE_FIELDS.items():
            if not isinstance(site.get(field), kind):
                return None
        if not all(isinstance(s, str) for s in record["survivors"]):
            return None
        if record["detected"] + record["undetected"] != \
                record["mutants"]:
            return None
        return record

    # -- write ----------------------------------------------------------

    def put(self, key: str, record: dict) -> None:
        """Publish ``record`` under ``key`` (atomic, flock-serialized).

        The flock mirrors the native build cache: N workers publishing
        the same key serialize their (identical) writes; the
        same-directory temp file + ``os.replace`` keeps publication
        atomic even where flock does not reach (cross-host caches).
        """
        record = dict(record)
        record["schema"] = SCHEMA_VERSION
        record["key"] = key
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record, sort_keys=True) + "\n"
        lock_path = path.with_suffix(".lock")
        lock_handle = None
        if fcntl is not None:
            lock_handle = open(lock_path, "w")
            fcntl.flock(lock_handle, fcntl.LOCK_EX)
        try:
            descriptor, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") \
                        as handle:
                    handle.write(payload)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        finally:
            if lock_handle is not None:
                fcntl.flock(lock_handle, fcntl.LOCK_UN)
                lock_handle.close()
                try:
                    os.unlink(lock_path)
                except OSError:
                    pass
        self.writes += 1

    # -- maintenance ----------------------------------------------------

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "corrupt": self.corrupt, "writes": self.writes}
