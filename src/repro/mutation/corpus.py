"""Mutation-analysis corpus: the programs Table 1 mutates.

For each of the paper's three devices (Logitech busmouse, IDE, NE2000
Ethernet) the corpus holds:

* a **C** program — the hardware operating code of the Linux 2.2
  driver, transliterated from the originals (Figure 2 shows the
  busmouse fragment).  Only the regions between the ``MUTATE`` markers
  are mutation-eligible, mirroring the paper's hand-tagging of the
  hardware operating regions;
* a **CDevil** program — the same driver logic rewritten against the
  stubs generated from the shipped Devil specification (Figure 3
  style, ``DEVIL_NO_REF`` single-device mode);
* the **Devil** target is the shipped specification itself
  (``repro.specs``), which is mutation-eligible in full.

The C fragments must stay compilable by :mod:`repro.minic` — the test
suite asserts that every unmutated corpus program checks clean.
"""

from __future__ import annotations

MUTATE_BEGIN = "/*MUTATE*/"
MUTATE_END = "/*END-MUTATE*/"


# ---------------------------------------------------------------------------
# Logitech busmouse
# ---------------------------------------------------------------------------

BUSMOUSE_C = r"""
/*MUTATE*/
#define MSE_DATA_PORT 0x23c
#define MSE_SIGNATURE_PORT 0x23d
#define MSE_CONTROL_PORT 0x23e
#define MSE_CONFIG_PORT 0x23f

#define MSE_READ_X_LOW 0x80
#define MSE_READ_X_HIGH 0xa0
#define MSE_READ_Y_LOW 0xc0
#define MSE_READ_Y_HIGH 0xe0

#define MSE_INT_ON 0x00
#define MSE_INT_OFF 0x10

#define MSE_CONFIG_BYTE 0x91
#define MSE_DEFAULT_MODE 0x90
#define MSE_SIGNATURE_BYTE 0xa5

int mouse_probe(void)
{
    int sig;
    outb(MSE_CONFIG_BYTE, MSE_CONFIG_PORT);
    outb(MSE_SIGNATURE_BYTE, MSE_SIGNATURE_PORT);
    sig = inb(MSE_SIGNATURE_PORT);
    if (sig != MSE_SIGNATURE_BYTE)
        return 0;
    outb(MSE_DEFAULT_MODE, MSE_CONFIG_PORT);
    return 1;
}

void mouse_interrupt(int *pdx, int *pdy, int *pbuttons)
{
    int dx;
    int dy;
    int buttons;
    outb(MSE_READ_X_LOW, MSE_CONTROL_PORT);
    dx = inb(MSE_DATA_PORT) & 0xf;
    outb(MSE_READ_X_HIGH, MSE_CONTROL_PORT);
    dx |= (inb(MSE_DATA_PORT) & 0xf) << 4;
    outb(MSE_READ_Y_LOW, MSE_CONTROL_PORT);
    dy = inb(MSE_DATA_PORT) & 0xf;
    outb(MSE_READ_Y_HIGH, MSE_CONTROL_PORT);
    buttons = inb(MSE_DATA_PORT);
    dy |= (buttons & 0xf) << 4;
    buttons = (buttons >> 5) & 0x07;
    outb(MSE_INT_ON, MSE_CONTROL_PORT);
    *pdx = dx;
    *pdy = dy;
    *pbuttons = buttons;
}
/*END-MUTATE*/
"""

BUSMOUSE_CDEVIL = r"""
/*MUTATE*/
int mouse_probe(void)
{
    bm_set_config(BM_CONFIGURATION);
    bm_set_signature(0xa5);
    if (bm_get_signature() != 0xa5)
        return 0;
    bm_set_config(BM_DEFAULT_MODE);
    return 1;
}

void mouse_interrupt(int *pdx, int *pdy, int *pbuttons)
{
    bm_get_mouse_state();
    *pdx = bm_get_dx();
    *pdy = bm_get_dy();
    *pbuttons = bm_get_buttons();
    bm_set_interrupt(BM_ENABLE);
}
/*END-MUTATE*/
"""


# ---------------------------------------------------------------------------
# IDE (Intel PIIX4) — the taskfile/busmaster hardware operating code
# ---------------------------------------------------------------------------

IDE_C = r"""
/*MUTATE*/
#define IDE_DATA 0x1f0
#define IDE_ERROR 0x1f1
#define IDE_NSECTOR 0x1f2
#define IDE_SECTOR 0x1f3
#define IDE_LCYL 0x1f4
#define IDE_HCYL 0x1f5
#define IDE_SELECT 0x1f6
#define IDE_STATUS 0x1f7
#define IDE_COMMAND 0x1f7
#define IDE_CONTROL 0x3f6

#define BUSY_STAT 0x80
#define READY_STAT 0x40
#define DRQ_STAT 0x08
#define ERR_STAT 0x01

#define WIN_READ 0x20
#define WIN_WRITE 0x30
#define WIN_MULTREAD 0xc4
#define WIN_SETMULT 0xc6
#define WIN_READDMA 0xc8

#define BM_COMMAND 0xc000
#define BM_STATUS 0xc002
#define BM_PRD 0xc004

int ide_issue(int cmd, int lba, int nsect)
{
    outb(0x00, IDE_CONTROL);
    outb(0xe0 | ((lba >> 24) & 0x0f), IDE_SELECT);
    outb(nsect & 0xff, IDE_NSECTOR);
    outb(lba & 0xff, IDE_SECTOR);
    outb((lba >> 8) & 0xff, IDE_LCYL);
    outb((lba >> 16) & 0xff, IDE_HCYL);
    outb(cmd, IDE_COMMAND);
    return 0;
}

int ide_wait_drq(void)
{
    int stat;
    stat = inb(IDE_STATUS);
    if (stat & BUSY_STAT)
        return -1;
    if (stat & ERR_STAT)
        return -1;
    if (!(stat & DRQ_STAT))
        return -1;
    return 0;
}

int ide_read(int lba, int nsect, unsigned short *buf)
{
    int blk;
    ide_issue(WIN_READ, lba, nsect);
    for (blk = 0; blk < nsect; blk++) {
        if (ide_wait_drq() < 0)
            return -1;
        insw(IDE_DATA, buf + (blk << 8), 256);
    }
    return 0;
}

int ide_read_dma(int lba, int nsect, unsigned int prd)
{
    int stat;
    ide_issue(WIN_READDMA, lba, nsect);
    outl(prd, BM_PRD);
    outb(0x06, BM_STATUS);
    outb(0x09, BM_COMMAND);
    stat = inb(BM_STATUS);
    if (!(stat & 0x04) || (stat & 0x02))
        return -1;
    stat = inb(IDE_STATUS);
    if (stat & ERR_STAT)
        return -1;
    outb(0x00, BM_COMMAND);
    return 0;
}
/*END-MUTATE*/
"""

IDE_CDEVIL = r"""
/*MUTATE*/
int ide_issue_devil(int lba, int nsect)
{
    ide_set_irq_disabled(0);
    ide_set_lba_mode(1);
    ide_set_drive(IDE_MASTER);
    ide_set_head((lba >> 24) & 0x0f);
    ide_set_sector_count(nsect & 0xff);
    ide_set_lba_low(lba & 0xff);
    ide_set_lba_mid((lba >> 8) & 0xff);
    ide_set_lba_high((lba >> 16) & 0xff);
    return 0;
}

int ide_wait_drq_devil(void)
{
    if (ide_get_ide_bsy())
        return -1;
    if (ide_get_ide_err())
        return -1;
    if (!ide_get_ide_drq())
        return -1;
    return 0;
}

int ide_read_devil(int lba, int nsect, unsigned int *buf)
{
    int blk;
    ide_issue_devil(lba, nsect);
    ide_set_command(IDE_READ_SECTORS);
    for (blk = 0; blk < nsect; blk++) {
        if (ide_wait_drq_devil() < 0)
            return -1;
        ide_read_ide_data_block(buf + (blk << 8), 256);
    }
    return 0;
}

int ide_read_dma_devil(int lba, int nsect, unsigned int prd)
{
    ide_issue_devil(lba, nsect);
    ide_set_command(IDE_READ_DMA);
    pii_set_prd_pointer(prd);
    pii_set_bm_error(1);
    pii_set_bm_irq(1);
    pii_set_dma_direction(PII_TO_MEMORY);
    pii_set_dma_start(1);
    if (!pii_get_bm_irq() || pii_get_bm_error())
        return -1;
    if (ide_get_ide_bsy() || ide_get_ide_err())
        return -1;
    pii_set_dma_start(0);
    return 0;
}
/*END-MUTATE*/
"""


# ---------------------------------------------------------------------------
# NE2000 Ethernet — the largest fragment, as in the paper
# ---------------------------------------------------------------------------

NE2000_C = r"""
/*MUTATE*/
#define E8390_CMD 0x300
#define EN0_STARTPG 0x301
#define EN0_STOPPG 0x302
#define EN0_BOUNDARY 0x303
#define EN0_TPSR 0x304
#define EN0_TCNTLO 0x305
#define EN0_TCNTHI 0x306
#define EN0_ISR 0x307
#define EN0_RSARLO 0x308
#define EN0_RSARHI 0x309
#define EN0_RCNTLO 0x30a
#define EN0_RCNTHI 0x30b
#define EN0_RXCR 0x30c
#define EN0_TXCR 0x30d
#define EN0_DCFG 0x30e
#define EN0_IMR 0x30f
#define EN1_PHYS 0x301
#define EN1_CURPAG 0x307
#define NE_DATAPORT 0x310
#define NE_RESET 0x31f

#define E8390_STOP 0x01
#define E8390_START 0x02
#define E8390_TRANS 0x04
#define E8390_RREAD 0x08
#define E8390_RWRITE 0x10
#define E8390_NODMA 0x20
#define E8390_PAGE0 0x00
#define E8390_PAGE1 0x40

#define ENISR_RX 0x01
#define ENISR_TX 0x02
#define ENISR_RX_ERR 0x04
#define ENISR_TX_ERR 0x08
#define ENISR_OVER 0x10
#define ENISR_COUNTERS 0x20
#define ENISR_RDC 0x40
#define ENISR_RESET 0x80
#define ENISR_ALL 0x3f

#define NESM_START_PG 0x40
#define NESM_RX_START_PG 0x46
#define NESM_STOP_PG 0x80

void ne_reset_8390(void)
{
    outb(inb(NE_RESET), NE_RESET);
}

void ne_init_8390(unsigned char *mac)
{
    int i;
    outb(E8390_STOP | E8390_NODMA | E8390_PAGE0, E8390_CMD);
    outb(0x49, EN0_DCFG);
    outb(0x00, EN0_RCNTLO);
    outb(0x00, EN0_RCNTHI);
    outb(0x04, EN0_RXCR);
    outb(0x02, EN0_TXCR);
    outb(NESM_START_PG, EN0_TPSR);
    outb(NESM_RX_START_PG, EN0_STARTPG);
    outb(NESM_RX_START_PG, EN0_BOUNDARY);
    outb(NESM_STOP_PG, EN0_STOPPG);
    outb(0xff, EN0_ISR);
    outb(ENISR_ALL, EN0_IMR);
    outb(E8390_STOP | E8390_NODMA | E8390_PAGE1, E8390_CMD);
    for (i = 0; i < 6; i++)
        outb(mac[i], EN1_PHYS + i);
    outb(NESM_RX_START_PG, EN1_CURPAG);
    outb(E8390_START | E8390_NODMA | E8390_PAGE0, E8390_CMD);
    outb(0x00, EN0_TXCR);
}

void ne_remote_setup(int addr, int count, int write)
{
    outb(E8390_START | E8390_NODMA | E8390_PAGE0, E8390_CMD);
    outb(count & 0xff, EN0_RCNTLO);
    outb((count >> 8) & 0xff, EN0_RCNTHI);
    outb(addr & 0xff, EN0_RSARLO);
    outb((addr >> 8) & 0xff, EN0_RSARHI);
    if (write)
        outb(E8390_START | E8390_RWRITE | E8390_PAGE0, E8390_CMD);
    else
        outb(E8390_START | E8390_RREAD | E8390_PAGE0, E8390_CMD);
}

void ne_block_output(int addr, unsigned short *data, int count)
{
    ne_remote_setup(addr, count, 1);
    outsw(NE_DATAPORT, data, count >> 1);
    outb(ENISR_RDC, EN0_ISR);
}

void ne_block_input(int addr, unsigned short *data, int count)
{
    ne_remote_setup(addr, count, 0);
    insw(NE_DATAPORT, data, count >> 1);
    outb(ENISR_RDC, EN0_ISR);
}

void ne_start_xmit(unsigned short *frame, int length)
{
    ne_block_output(NESM_START_PG << 8, frame, length);
    outb(NESM_START_PG, EN0_TPSR);
    outb(length & 0xff, EN0_TCNTLO);
    outb((length >> 8) & 0xff, EN0_TCNTHI);
    outb(E8390_START | E8390_TRANS | E8390_NODMA, E8390_CMD);
    outb(ENISR_TX, EN0_ISR);
}

int ne_rx_pending(void)
{
    int current;
    int boundary;
    outb(E8390_START | E8390_NODMA | E8390_PAGE1, E8390_CMD);
    current = inb(EN1_CURPAG);
    outb(E8390_START | E8390_NODMA | E8390_PAGE0, E8390_CMD);
    boundary = inb(EN0_BOUNDARY);
    if (boundary == current)
        return -1;
    return boundary;
}

int ne_receive(unsigned short *buf)
{
    int boundary;
    int next;
    int total;
    unsigned short header[2];
    boundary = ne_rx_pending();
    if (boundary < 0) {
        outb(ENISR_RX, EN0_ISR);
        return 0;
    }
    ne_block_input(boundary << 8, header, 4);
    next = header[0] >> 8;
    total = header[1];
    ne_block_input((boundary << 8) + 4, buf, total - 4);
    outb(next, EN0_BOUNDARY);
    return total - 4;
}

void ne_interrupt(void)
{
    int isr;
    isr = inb(EN0_ISR);
    if (isr & ENISR_OVER)
        outb(ENISR_OVER, EN0_ISR);
    if (isr & ENISR_RX_ERR)
        outb(ENISR_RX_ERR, EN0_ISR);
    if (isr & ENISR_COUNTERS)
        outb(ENISR_COUNTERS, EN0_ISR);
}
/*END-MUTATE*/
"""

NE2000_CDEVIL = r"""
/*MUTATE*/
#define NESM_START_PG 0x40
#define NESM_RX_START_PG 0x46
#define NESM_STOP_PG 0x80

void ne_reset_devil(void)
{
    ne_set_reset(0);
}

void ne_init_devil(unsigned char *mac)
{
    ne_set_st(NE_STOP);
    ne_set_data_config(1, NE_LITTLE, 0, 0, 0, NE_FIFO8);
    ne_set_remote_byte_count(0);
    ne_set_receive_config(0, 0, 1, 0, 0, 0);
    ne_set_transmit_config(0, NE_INTERNAL, 0, 0);
    ne_set_tx_page_start(NESM_START_PG);
    ne_set_page_start(NESM_RX_START_PG);
    ne_set_boundary(NESM_RX_START_PG);
    ne_set_page_stop(NESM_STOP_PG);
    ne_set_interrupt_status(1, 1, 1, 1, 1, 1, 1, 1);
    ne_set_interrupt_mask(1, 1, 1, 1, 1, 1, 1);
    ne_set_physical_address0(mac[0]);
    ne_set_physical_address1(mac[1]);
    ne_set_physical_address2(mac[2]);
    ne_set_physical_address3(mac[3]);
    ne_set_physical_address4(mac[4]);
    ne_set_physical_address5(mac[5]);
    ne_set_current_page(NESM_RX_START_PG);
    ne_set_st(NE_START);
    ne_set_transmit_config(0, NE_NORMAL, 0, 0);
}

void ne_remote_write_devil(int addr, unsigned short *data, int count)
{
    ne_set_remote_byte_count(count);
    ne_set_remote_start_address(addr);
    ne_set_rd(NE_REMOTE_WRITE);
    ne_write_dma_data_block(data, count >> 1);
}

void ne_remote_read_devil(int addr, unsigned short *data, int count)
{
    ne_set_remote_byte_count(count);
    ne_set_remote_start_address(addr);
    ne_set_rd(NE_REMOTE_READ);
    ne_read_dma_data_block(data, count >> 1);
}

void ne_start_xmit_devil(unsigned short *frame, int length)
{
    ne_remote_write_devil(NESM_START_PG << 8, frame, length);
    ne_set_tx_page_start(NESM_START_PG);
    ne_set_tx_byte_count(length);
    ne_set_txp(NE_TRANSMIT);
}

int ne_receive_devil(unsigned short *buf)
{
    int boundary;
    int current;
    int next;
    int total;
    unsigned short header[2];
    current = ne_get_current_page();
    boundary = ne_get_boundary();
    if (boundary == current)
        return 0;
    ne_remote_read_devil(boundary << 8, header, 4);
    next = header[0] >> 8;
    total = header[1];
    ne_remote_read_devil((boundary << 8) + 4, buf, total - 4);
    ne_set_boundary(next);
    return total - 4;
}
/*END-MUTATE*/
"""


def mutation_regions(source: str) -> list[tuple[int, int]]:
    """Character ranges between the MUTATE markers."""
    regions: list[tuple[int, int]] = []
    position = 0
    while True:
        begin = source.find(MUTATE_BEGIN, position)
        if begin < 0:
            return regions
        end = source.find(MUTATE_END, begin)
        if end < 0:
            raise ValueError("unterminated mutation region")
        regions.append((begin + len(MUTATE_BEGIN), end))
        position = end + len(MUTATE_END)
