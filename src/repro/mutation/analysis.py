"""The mutation-analysis engine and Table 1 statistics.

For every mutation site of a target, the engine generates the mutant
population (single-character edits), keeps those that still parse
*and* change the token stream (the paper's "syntactically correct,
actually modifies the semantics" rule), runs the language's checker on
each survivor, and tallies detection.

The reported statistics follow the paper's columns exactly:

========================  ====================================================
column                    meaning
========================  ====================================================
``sites`` (s)             number of mutation sites with a non-empty
                          mutant population
``mutants_per_site``      ms — mean mutants per site
``undetected_per_site``   ums — mean undetected mutants per site
``sites_with_undetected`` sum = ums / ms · s, the expected number of
                          sites at which a typo can survive compilation
========================  ====================================================

The ``ratio_to_c`` of a Devil-based program is ``sum_C / sum_X`` — how
many times less likely an undetected error is, which the paper reports
as "1.6 to 5.2 times higher in C".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .rules import MutationSite, mutants_for_site
from .targets import LanguageTarget


@dataclass(frozen=True)
class MutantCaps:
    """Per-site mutant budget by token kind.

    Numbers, operators and bit patterns have naturally small edit
    populations and are enumerated in full by default — this preserves
    the paper's weighting, where numeric sites contribute many mutants
    (a two-digit literal alone yields 50) and dominate C's undetected
    counts.  Identifier populations grow with length × alphabet, so
    they are capped (deterministically sampled).
    """

    ident: int | None = 12
    number: int | None = None
    operator: int | None = None
    bitpattern: int | None = None

    def for_kind(self, kind: str) -> int | None:
        return getattr(self, kind)

    @classmethod
    def quick(cls, budget: int = 8) -> "MutantCaps":
        """A uniform small budget for fast test runs."""
        return cls(ident=budget, number=budget, operator=budget,
                   bitpattern=budget)


@dataclass
class SiteOutcome:
    """Mutation results for one site."""

    site: MutationSite
    mutants: int = 0
    detected: int = 0
    undetected: int = 0
    #: A few surviving mutants, for reports and debugging.
    survivors: list[str] = field(default_factory=list)


@dataclass
class TargetOutcome:
    """Aggregated Table 1 row for one (program, language) pair."""

    name: str
    language: str
    lines_of_code: int
    site_outcomes: list[SiteOutcome] = field(default_factory=list)

    @property
    def sites(self) -> int:
        return len(self.site_outcomes)

    @property
    def total_mutants(self) -> int:
        return sum(outcome.mutants for outcome in self.site_outcomes)

    @property
    def total_undetected(self) -> int:
        return sum(outcome.undetected for outcome in self.site_outcomes)

    @property
    def mutants_per_site(self) -> float:
        return self.total_mutants / self.sites if self.sites else 0.0

    @property
    def undetected_per_site(self) -> float:
        return self.total_undetected / self.sites if self.sites else 0.0

    @property
    def sites_with_undetected(self) -> float:
        """The paper's ``sum = ums / ms * s``."""
        if not self.total_mutants:
            return 0.0
        return self.total_undetected / self.total_mutants * self.sites

    def merged_with(self, other: "TargetOutcome",
                    name: str) -> "TargetOutcome":
        """Combine two rows (the paper's Devil+CDevil line)."""
        merged = TargetOutcome(
            name, f"{self.language}+{other.language}",
            self.lines_of_code + other.lines_of_code)
        merged.site_outcomes = self.site_outcomes + other.site_outcomes
        return merged


def analyze_target(target: LanguageTarget,
                   caps: MutantCaps | None = None) -> TargetOutcome:
    """Run the mutation experiment on one target."""
    caps = caps or MutantCaps()
    outcome = TargetOutcome(target.name, target.language,
                            target.lines_of_code)
    if target.classify(target.source) != "undetected":
        raise ValueError(
            f"target {target.name!r} must check clean unmutated")
    for site in target.sites:
        site_outcome = _analyze_site(target, site, caps)
        if site_outcome.mutants:
            outcome.site_outcomes.append(site_outcome)
    return outcome


def _analyze_site(target: LanguageTarget, site: MutationSite,
                  caps: MutantCaps) -> SiteOutcome:
    outcome = SiteOutcome(site)
    baseline_norm = target.normalize_token(site, site.text)
    for mutant in mutants_for_site(site, caps.for_kind(site.kind)):
        # Meaning-preserving edits ('3' -> '03', mask '-' <-> '*') do
        # not "actually modify the semantics" and are not mutants.
        if target.normalize_token(site, mutant.mutated_token) == \
                baseline_norm:
            continue
        mutated = mutant.apply(target.source)
        verdict = target.classify(mutated)
        if verdict == "invalid":
            continue
        outcome.mutants += 1
        if verdict == "detected":
            outcome.detected += 1
        else:
            outcome.undetected += 1
            if len(outcome.survivors) < 3:
                outcome.survivors.append(
                    f"{site.text!r} -> {mutant.mutated_token!r} "
                    f"(line {site.line})")
    return outcome


# ---------------------------------------------------------------------------
# Table 1 assembly
# ---------------------------------------------------------------------------


@dataclass
class DeviceRows:
    """The four Table 1 rows for one device."""

    device: str
    c: TargetOutcome
    devil: TargetOutcome
    cdevil: TargetOutcome

    @property
    def combined(self) -> TargetOutcome:
        return self.devil.merged_with(self.cdevil, self.device)

    def ratio_cdevil(self) -> float:
        """sum_C / sum_CDevil (the paper's per-row 'Ratio to C')."""
        divisor = self.cdevil.sites_with_undetected
        return self.c.sites_with_undetected / divisor if divisor else \
            float("inf")

    def ratio_combined(self) -> float:
        """sum_C / sum_(Devil+CDevil)."""
        divisor = self.combined.sites_with_undetected
        return self.c.sites_with_undetected / divisor if divisor else \
            float("inf")

    def rows(self) -> list[dict]:
        """Render in the paper's column order."""
        result = []
        for label, outcome, ratio in (
                ("C", self.c, None),
                ("Devil", self.devil, None),
                ("CDevil", self.cdevil, self.ratio_cdevil()),
                ("Devil+CDevil", self.combined, self.ratio_combined())):
            result.append({
                "device": self.device,
                "language": label,
                "lines": outcome.lines_of_code,
                "sites": outcome.sites,
                "mutants_per_site": round(outcome.mutants_per_site, 1),
                "undetected_per_site":
                    round(outcome.undetected_per_site, 2),
                "sites_with_undetected":
                    round(outcome.sites_with_undetected, 1),
                "ratio_to_c": round(ratio, 1) if ratio is not None
                    else None,
            })
        return result


def format_table(all_rows: list[DeviceRows]) -> str:
    """Human-readable rendering in the shape of the paper's Table 1."""
    header = (f"{'Device':<12} {'Language':<14} {'Lines':>5} {'Sites':>6} "
              f"{'Mut/site':>9} {'Undet/site':>11} {'SitesUndet':>11} "
              f"{'Ratio':>6}")
    lines = [header, "-" * len(header)]
    for device_rows in all_rows:
        for row in device_rows.rows():
            ratio = f"{row['ratio_to_c']:.1f}" if row["ratio_to_c"] \
                else "-"
            lines.append(
                f"{row['device']:<12} {row['language']:<14} "
                f"{row['lines']:>5} {row['sites']:>6} "
                f"{row['mutants_per_site']:>9.1f} "
                f"{row['undetected_per_site']:>11.2f} "
                f"{row['sites_with_undetected']:>11.1f} {ratio:>6}")
        lines.append("-" * len(header))
    return "\n".join(lines)
