"""Language targets: how each language tokenizes, validates and detects.

A :class:`LanguageTarget` packages everything the analysis engine needs
for one program in one language:

* the source text and its mutation-eligible character regions,
* a site extractor (which tokens are mutable: identifiers, numeric
  literals, operators, and — for Devil — bit patterns; keywords and
  bracketing punctuation are structural, not typo targets),
* a token normaliser used to discard mutants that cannot change the
  program's meaning (``3`` → ``03``, mask ``-`` ↔ ``*``), per the
  paper's rule that a mutant must "actually modify the semantics",
* a classifier deciding each surviving mutant's fate:

  - **invalid** — does not parse; excluded (the paper's rules only
    admit syntactically correct mutants);
  - **detected** — the compiler/checker rejects it, *or* it changes
    the program's exported interface (a renamed stub, enum constant or
    driver entry point breaks the surrounding build at its next
    compile/link step — both worlds get credit for this the same way);
  - **undetected** — compiles clean with the same interface: the
    silent failure Table 1 counts.

Three constructors cover Table 1's columns: :func:`c_target` (minic
playing gcc), :func:`devil_target` (this repository's checker) and
:func:`cdevil_target` (minic with the generated stub prototypes and
enum constants pre-declared).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..devil.compiler import compile_spec
from ..devil.errors import DevilCheckError, DevilLexError, DevilParseError
from ..devil.lexer import Lexer as DevilLexer
from ..devil.lexer import TokenKind as DevilTokenKind
from ..devil.model import ResolvedDevice
from ..devil.types import EnumType
from ..minic import (
    CLexError,
    CParseError,
    CTokenKind,
    check_c,
    kernel_externals,
    tokenize_c,
)
from ..minic.lexer import C_KEYWORDS, number_value
from .corpus import mutation_regions
from .rules import MutationSite

INVALID = "invalid"
DETECTED = "detected"
UNDETECTED = "undetected"

#: Devil operator tokens eligible for mutation ("operators" in the
#: paper's rule set; braces/parens/semicolons are structural).
_DEVIL_OPERATOR_KINDS = {
    DevilTokenKind.AT, DevilTokenKind.HASH, DevilTokenKind.DOTDOT,
    DevilTokenKind.ASSIGN, DevilTokenKind.EQ, DevilTokenKind.STAR,
    DevilTokenKind.ARROW_WRITE, DevilTokenKind.ARROW_READ,
    DevilTokenKind.ARROW_BOTH,
}

#: C operator texts eligible for mutation.
_C_MUTABLE_OPERATORS = {
    "+", "-", "*", "/", "%", "<<", ">>", "<", ">", "<=", ">=", "==",
    "!=", "&", "|", "^", "~", "!", "&&", "||", "=", "+=", "-=", "&=",
    "|=", "^=", "<<=", ">>=", "->", "++", "--",
}


@dataclass
class LanguageTarget:
    """One program in one language, ready for mutation analysis."""

    name: str
    language: str                      # "C", "Devil" or "CDevil"
    source: str
    sites: list[MutationSite]
    classify: Callable[[str], str]     # returns INVALID/DETECTED/UNDETECTED
    lines_of_code: int = 0

    def __post_init__(self) -> None:
        if not self.lines_of_code:
            self.lines_of_code = sum(
                1 for line in self.source.splitlines()
                if line.strip() and not line.strip().startswith("//")
                and not line.strip().startswith("/*"))

    @staticmethod
    def normalize_token(site: MutationSite, text: str) -> str:
        """Canonical form used to discard meaning-preserving mutants."""
        if site.kind == "number":
            try:
                return str(_token_number_value(text))
            except ValueError:
                return text
        if site.kind == "bitpattern":
            # '*' and '-' both mean "irrelevant"; a swap cannot change
            # the generated stubs.
            return text.replace("-", "*")
        return text


def _token_number_value(text: str) -> int | float:
    lowered = text.lower()
    if lowered.startswith("0b"):
        return int(lowered, 2)
    return number_value(text)


# ---------------------------------------------------------------------------
# C and CDevil targets
# ---------------------------------------------------------------------------


def _c_sites(source: str) -> list[MutationSite]:
    regions = mutation_regions(source) or [(0, len(source))]
    sites: list[MutationSite] = []

    def add(kind: str, text: str, offset: int, line: int) -> None:
        sites.append(MutationSite(kind, text, offset, line))

    def visit(token, base_offset: int, line: int) -> None:
        offset = base_offset + token.offset
        if token.kind is CTokenKind.IDENT and token.text not in C_KEYWORDS:
            add("ident", token.text, offset, line)
        elif token.kind is CTokenKind.NUMBER:
            add("number", token.text, offset, line)
        elif token.kind is CTokenKind.OPERATOR and \
                token.text in _C_MUTABLE_OPERATORS:
            add("operator", token.text, offset, line)

    for token in tokenize_c(source):
        if not any(start <= token.offset < end for start, end in regions):
            continue
        if token.kind is CTokenKind.DIRECTIVE and \
                token.text.startswith("#define"):
            # The name and body of a #define are ordinary mutation
            # targets (the paper's macro constants, Figure 2a).
            body_start = len("#define")
            for inner in tokenize_c(token.text[body_start:]):
                if inner.kind is CTokenKind.EOF:
                    break
                visit(inner, token.offset + body_start, token.line)
            continue
        visit(token, 0, token.line)
    return sites


def _make_c_classifier(baseline_source: str,
                       externals: dict[str, int | None],
                       constants: set[str],
                       warnings_detect: bool) -> Callable[[str], str]:
    baseline = check_c(baseline_source, externals, constants)
    baseline_interface = frozenset(baseline.defined_functions)

    def classify(source: str) -> str:
        try:
            result = check_c(source, externals, constants)
        except (CLexError, CParseError):
            return INVALID
        if result.detected(warnings_detect):
            return DETECTED
        if frozenset(result.defined_functions) != baseline_interface:
            return DETECTED  # renamed entry point: caught at link time
        return UNDETECTED

    return classify


def c_target(name: str, source: str,
             externals: dict[str, int | None] | None = None,
             warnings_detect: bool = True) -> LanguageTarget:
    """A hand-written C driver fragment, checked the way gcc would."""
    resolved = externals if externals is not None else kernel_externals()
    classify = _make_c_classifier(source, resolved, set(), warnings_detect)
    return LanguageTarget(name, "C", source, _c_sites(source), classify)


def stub_externals(model: ResolvedDevice,
                   prefix: str) -> tuple[dict[str, int | None], set[str]]:
    """Prototypes and enum constants of the generated header.

    This is the compile-time environment a CDevil translation unit
    sees after ``#include "<device>.dil.h"`` under ``DEVIL_NO_REF``.
    """
    externals: dict[str, int | None] = {}
    constants: set[str] = set()
    externals[f"{prefix}_init"] = len(model.params)

    def readable(variable) -> bool:
        return variable.memory or all(
            model.registers[c.register].readable for c in variable.chunks)

    def writable(variable) -> bool:
        return variable.memory or all(
            model.registers[c.register].writable for c in variable.chunks)

    for variable in model.variables.values():
        if variable.private:
            continue
        if readable(variable):
            externals[f"{prefix}_get_{variable.name}"] = 0
        if writable(variable):
            externals[f"{prefix}_set_{variable.name}"] = 1
        if variable.behaviors.block:
            if readable(variable):
                externals[f"{prefix}_read_{variable.name}_block"] = 2
            if writable(variable):
                externals[f"{prefix}_write_{variable.name}_block"] = 2
        if isinstance(variable.type, EnumType):
            for item in variable.type.items:
                constants.add(f"{prefix.upper()}_{item.name}")
    for structure in model.structures.values():
        members = [model.variables[m] for m in structure.members]
        if all(readable(m) for m in members):
            externals[f"{prefix}_get_{structure.name}"] = 0
        if all(writable(m) for m in members):
            externals[f"{prefix}_set_{structure.name}"] = len(members)
    return externals, constants


#: Legality of one constant stub argument: an inclusive interval, an
#: exact value set, or None (unchecked — enum arguments are symbols).
ArgumentRange = tuple[str, int, int] | frozenset[int] | None


def stub_argument_ranges(model: ResolvedDevice, prefix: str
                         ) -> dict[str, list[ArgumentRange]]:
    """Legal constant values per stub argument.

    §3.2 of the paper: "When writing to a variable, a check can be
    performed to verify that the written value falls within the range
    specified by the variable type.  If the value is constant, the
    check can generally be done at compile time."  This map drives that
    compile-time check for the CDevil analysis.
    """

    def legal_values(variable) -> ArgumentRange:
        from ..devil.types import BoolType, IntSetType, IntType
        var_type = variable.type
        if isinstance(var_type, BoolType):
            return frozenset({0, 1})
        if isinstance(var_type, IntSetType):
            return frozenset(var_type.values)
        if isinstance(var_type, IntType):
            return ("interval", var_type.minimum, var_type.maximum)
        return None  # enums take symbol arguments, not integers

    ranges: dict[str, list[ArgumentRange]] = {}
    for variable in model.variables.values():
        if variable.private:
            continue
        ranges[f"{prefix}_set_{variable.name}"] = [legal_values(variable)]
    for structure in model.structures.values():
        members = [model.variables[m] for m in structure.members]
        ranges[f"{prefix}_set_{structure.name}"] = \
            [legal_values(m) for m in members]
    return ranges


def _value_legal(value: int, legal: ArgumentRange) -> bool:
    if legal is None:
        return True
    if isinstance(legal, frozenset):
        return value in legal
    _, minimum, maximum = legal
    return minimum <= value <= maximum


def _constant_args_ok(source: str,
                      ranges: dict[str, list[ArgumentRange]]) -> bool:
    """Compile-time range check of constant stub arguments.

    Scans calls of known set-stubs; any argument that is a single
    integer literal is validated against the variable's Devil type.
    """
    tokens = tokenize_c(source)
    for index, token in enumerate(tokens):
        if token.kind is not CTokenKind.IDENT or token.text not in ranges:
            continue
        if index + 1 >= len(tokens) or tokens[index + 1].text != "(":
            continue
        arguments = _split_call_args(tokens, index + 1)
        if arguments is None:
            continue
        argument_ranges = ranges[token.text]
        for position, argument in enumerate(arguments):
            if position >= len(argument_ranges):
                break
            value = _constant_value(argument)
            if value is None:
                continue
            if not _value_legal(value, argument_ranges[position]):
                return False
    return True


def _split_call_args(tokens, open_index) -> list[list] | None:
    """Argument token lists of the call starting at ``(``."""
    depth = 0
    arguments: list[list] = [[]]
    for token in tokens[open_index:]:
        if token.text == "(":
            depth += 1
            if depth == 1:
                continue
        elif token.text == ")":
            depth -= 1
            if depth == 0:
                return arguments if any(arguments[0:1]) or \
                    len(arguments) > 1 else [[]]
        elif token.text == "," and depth == 1:
            arguments.append([])
            continue
        if depth >= 1:
            arguments[-1].append(token)
    return None


def _constant_value(argument_tokens) -> int | None:
    """The value of an argument that is a (possibly negated) literal."""
    if len(argument_tokens) == 1 and \
            argument_tokens[0].kind is CTokenKind.NUMBER:
        value = _token_number_value(argument_tokens[0].text)
        return value if isinstance(value, int) else None
    if len(argument_tokens) == 2 and argument_tokens[0].text == "-" and \
            argument_tokens[1].kind is CTokenKind.NUMBER:
        value = _token_number_value(argument_tokens[1].text)
        return -value if isinstance(value, int) else None
    return None


def cdevil_target(name: str, source: str,
                  specs: list[tuple[ResolvedDevice, str]],
                  warnings_detect: bool = True) -> LanguageTarget:
    """A stub-using C fragment (the paper's CDevil programs).

    ``specs`` lists (resolved device, stub prefix) pairs whose generated
    headers the fragment includes.  Detection combines the C compiler
    model with the generated interface's compile-time checks: constant
    arguments to set stubs are range-checked against the Devil types
    (§3.2).
    """
    externals = kernel_externals()
    constants: set[str] = set()
    ranges: dict[str, list[frozenset[int] | None]] = {}
    for model, prefix in specs:
        stub_funcs, stub_consts = stub_externals(model, prefix)
        externals.update(stub_funcs)
        constants.update(stub_consts)
        ranges.update(stub_argument_ranges(model, prefix))
    c_classify = _make_c_classifier(source, externals, constants,
                                    warnings_detect)

    def classify(mutated: str) -> str:
        verdict = c_classify(mutated)
        if verdict != UNDETECTED:
            return verdict
        if not _constant_args_ok(mutated, ranges):
            return DETECTED
        return UNDETECTED

    return LanguageTarget(name, "CDevil", source, _c_sites(source),
                          classify)


# ---------------------------------------------------------------------------
# Devil target
# ---------------------------------------------------------------------------


def _devil_sites(source: str) -> list[MutationSite]:
    sites: list[MutationSite] = []
    lexer = DevilLexer(source)
    # The Devil lexer reports line/column; re-derive character offsets
    # by scanning line starts once.
    line_offsets = [0]
    for line in source.splitlines(keepends=True):
        line_offsets.append(line_offsets[-1] + len(line))
    for token in lexer.tokens():
        if token.kind is DevilTokenKind.EOF:
            break
        offset = line_offsets[token.location.line - 1] + \
            token.location.column - 1
        if token.kind is DevilTokenKind.IDENT:
            sites.append(MutationSite("ident", token.text, offset,
                                      token.location.line))
        elif token.kind is DevilTokenKind.INT:
            sites.append(MutationSite("number", token.text, offset,
                                      token.location.line))
        elif token.kind is DevilTokenKind.BITPATTERN:
            # offset points at the opening quote; the pattern text
            # starts one character later.
            sites.append(MutationSite("bitpattern", token.text,
                                      offset + 1, token.location.line))
        elif token.kind in _DEVIL_OPERATOR_KINDS:
            sites.append(MutationSite("operator", token.text, offset,
                                      token.location.line))
    return sites


def devil_interface(model: ResolvedDevice,
                    prefix: str = "dev") -> frozenset[str]:
    """The exported stub surface a driver compiles against."""
    externals, constants = stub_externals(model, prefix)
    return frozenset(externals) | frozenset(constants) | \
        frozenset({f"device:{model.name}"})


def devil_target(name: str, source: str) -> LanguageTarget:
    """A Devil specification, checked by this repository's compiler."""
    baseline_interface = devil_interface(compile_spec(source).model)

    def classify(mutated: str) -> str:
        try:
            spec = compile_spec(mutated)
        except (DevilLexError, DevilParseError):
            return INVALID
        except DevilCheckError:
            return DETECTED
        if devil_interface(spec.model) != baseline_interface:
            # The generated stubs changed names: the driver using them
            # no longer compiles — caught at the CDevil build step.
            return DETECTED
        return UNDETECTED

    return LanguageTarget(name, "Devil", source, _devil_sites(source),
                          classify)
