"""Compute fleets: scheduling pure-CPU workloads on the device engine.

Some workloads want the fleet's machinery — deterministic submit-time
placement, bounded queues with backpressure, IPC batching, worker
telemetry, exact drain semantics — without driving any device at all.
The mutation campaign (:mod:`repro.mutation.campaign`) is the shipped
example: each request is a pure-compute verdict evaluation that
ignores its device entirely.

:func:`compute_fleet` builds the cheapest fleet that carries such a
workload: one minimal device per worker (the busmouse — a two-port
model with a trivial bind) under the interpreter strategy with zero
modeled latency, on either backend.  Requests are submitted against
``fleet.compute_spec`` and placement is round-robin, so unit *i* runs
on worker ``i % workers`` — a pure function of submission order, the
same determinism contract every fleet workload gets.

Because compute requests hold the GIL for their full duration, the
thread backend executes them effectively serially (it still buys the
scheduling/telemetry surface); the process backend is what makes a
compute campaign scale, exactly like
:func:`~repro.engine.requests.ide_sector_checksum`.
"""

from __future__ import annotations

#: The minimal shipped device a compute fleet instantiates per worker.
COMPUTE_SPEC = "busmouse"


def compute_fleet(backend: str, workers: int, *,
                  batch_size: int | str = "auto",
                  queue_depth: int = 64, telemetry=None):
    """A fleet sized for a pure-compute workload.

    ``backend`` is ``"thread"`` or ``"process"``; the returned fleet
    has one :data:`COMPUTE_SPEC` device per worker, exposes the spec
    to submit against as ``fleet.compute_spec``, and is otherwise a
    plain :class:`~repro.engine.fleet.Fleet` /
    :class:`~repro.engine.mp.ProcessFleet` (context-manage it, submit,
    drain, read ``completed_by_device()``).
    """
    from .fleet import Fleet
    from .mp import ProcessFleet

    if workers < 1:
        raise ValueError(f"need at least one worker (got {workers})")
    devices = [COMPUTE_SPEC] * workers
    common = dict(strategy="interpret", policy="round-robin",
                  workers=workers, queue_depth=queue_depth,
                  telemetry=telemetry)
    if backend == "thread":
        fleet = Fleet(devices, **common)
    elif backend == "process":
        fleet = ProcessFleet(devices, batch_size=batch_size, **common)
    else:
        raise ValueError(
            f"unknown compute backend {backend!r} "
            f"(have: thread, process)")
    fleet.compute_spec = COMPUTE_SPEC
    return fleet
