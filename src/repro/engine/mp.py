"""Multiprocessing fleet backend: devices sharded across processes.

:class:`ProcessFleet` is the second execution substrate under the
fleet engine.  The thread backend (:class:`~repro.engine.fleet.Fleet`)
scales exactly as far as the GIL lets it — which is far for sleeping
I/O latency and not at all for CPU-bound request mixes.  The process
backend shards the *devices* across worker processes instead: each
worker owns its devices' complete Devil runtime — a private bus slice
with only its devices mapped (at their global slots), bound stubs,
shadow caches, transaction contexts, span collector — so the hot path
crosses no process boundary and takes no cross-process lock at all.

IPC is kept off the per-request path twice over:

* **Request batching** — ``submit`` buffers placements per worker and
  ships up to ``batch_size`` of them in one queue message (flushed on
  the size watermark, a small time watermark, and unconditionally at
  every sync point); :meth:`submit_batch` groups a whole iterable in
  one pass.  Placement still happens at submit time in the parent, so
  batching changes the *transport*, never the schedule.
* **Shared-memory result rings** — each worker appends span batches
  and its sync reports (accounting shards, per-device completion
  counts, device states, trace payloads) to a per-worker
  :class:`~repro.engine.shm.ShmRing`; the parent drains the ring
  exactly at sync points and the reply queue carries only a small
  completion record (an offset, error summaries).  A full ring spills
  to the queue, so exactness never depends on ring capacity.

Design rules (the same exactness contract the thread fleet obeys, see
``docs/CONCURRENCY.md``):

* **Sharding is a pure function of the device list.**  Device
  ``index % workers`` picks the owning worker; labels and port slots
  come from :func:`~repro.engine.fleet.fleet_layout`, shared with the
  thread backend, so a device's mapping names and absolute ports are
  identical in every backend — which is what makes end-state and span
  signatures byte-comparable across substrates.
* **Placement is a pure function of submission order.**  ``submit``
  runs the scheduling policy in the parent, exactly like the thread
  fleet; only :data:`~repro.engine.scheduler.DETERMINISTIC_POLICIES`
  are allowed (``least-loaded`` needs completion feedback that would
  reintroduce timing dependence).  Each worker executes its stream in
  FIFO order — batched or not — so per-device request order equals
  submission order.
* **Requests travel by reference.**  ``submit`` encodes the request
  callable with :func:`~repro.engine.requests.encode_request` — a
  validated ``module:qualname`` token, or a partial-application token
  whose bound arguments travel by value — so both backends execute
  the identical function and unpicklable callables fail loudly in the
  submitting process.  Tokens and their worker-side resolutions are
  memoized, so a hot request pays the validation round-trip once.
* **Merging is exact.**  At every sync the workers report absolute
  per-device accounting shards, pickled device end-state
  (:meth:`repro.bus.Bus.state_snapshot`), their trace rings (block
  groups contiguous, per-device program order preserved) and their
  span buffers.  The parent merges shards by label union (labels are
  globally unique), concatenates traces in worker order and ingests
  spans into its collector (:meth:`repro.obs.Collector.ingest`), so
  ``accounting``/``accounting_by_device()``/``device_states()`` answer
  with the same exact totals the thread fleet computes from its shared
  bus.

Worker failures mirror the thread pool: request exceptions are
captured with their tracebacks and re-raised in the parent as one
:class:`~repro.engine.pool.WorkerError` at ``drain``/``shutdown``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_module
import time
import traceback
from dataclasses import dataclass

from ..bus import IoAccounting
from .fleet import LatencyBus, fleet_layout, map_fleet_device, \
    resolve_strategy, session_weight
from .pool import WorkerError
from .requests import decode_request, encode_request
from .scheduler import DETERMINISTIC_POLICIES, SCHEDULERS
from .shm import DEFAULT_RING_BYTES, MIN_RING_BYTES, HeartbeatSlot, \
    ShmRing, attach_ring_memory, create_heartbeat_memory, \
    create_ring_memory

#: Default seconds to wait for one worker's sync report before
#: declaring it wedged (each report is one queue message; a healthy
#: worker answers as soon as it reaches the sync marker).
SYNC_TIMEOUT = 120.0

#: ``batch_size="auto"`` without a calibrated workload profile: big
#: enough to amortize a queue round-trip to a few percent of a typical
#: shipped request, small enough to keep sync latency low.  The
#: adaptive selector (:mod:`repro.engine.select`) computes a measured
#: value instead when given a workload.
DEFAULT_AUTO_BATCH = 8

#: Default flush watermark for a partially filled batch, microseconds.
#: A buffered placement never waits longer than this behind later
#: submissions (it is always flushed at sync points regardless).
DEFAULT_FLUSH_US = 500.0

#: Cap on the parent-side token memo (distinct request callables).
_TOKEN_CACHE_LIMIT = 1024


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a worker process needs to build its fleet slice."""

    worker_id: int
    #: ``(spec, label, slot)`` triples, in global fleet order.
    devices: tuple
    strategy: str
    shadow_cache: bool
    tracing: bool
    trace_limit: int | None
    op_latency_us: float
    word_latency_us: float
    #: Instrument stubs and collect spans in the worker.
    observe: bool
    #: Shared-memory result ring name (None: reports ride the queue).
    ring_name: str | None = None
    #: Memoize token -> callable resolutions (off reproduces the
    #: original per-request decode, for benchmark baselines).
    codec_cache: bool = True
    #: Shared-memory heartbeat slot name (None: live telemetry off —
    #: the worker publishes nothing and observes no latencies).
    heartbeat_name: str | None = None


@dataclass
class ProcessSession:
    """Parent-side handle for one device owned by a worker process.

    The scheduling policy runs against these proxies exactly as it
    runs against :class:`~repro.engine.fleet.DeviceSession` objects in
    the thread backend — it only reads ``spec`` and ``weight``.
    ``assigned`` counts submit-time placements; ``completed`` is the
    worker-reported execution count (equal after a clean drain).
    """

    label: str
    spec: str
    slot: int
    worker: int
    #: Index into the owning worker's local session list.
    local_index: int
    weight: int = 1
    assigned: int = 0
    completed: int = 0


def _build_worker_bus(config: _WorkerConfig):
    """The worker's private bus slice with its devices mapped.

    A :class:`LatencyBus`/``ThreadSafeBus`` for exact interface parity
    with the thread backend (same accounting shards, same
    ``accounting_by_device``); its locks are process-local and
    uncontended — the worker is single-threaded — so the hot path
    stays lock-free in every way that matters.
    """
    from ..bus import ThreadSafeBus

    if config.op_latency_us or config.word_latency_us:
        return LatencyBus(op_latency_us=config.op_latency_us,
                          word_latency_us=config.word_latency_us,
                          tracing=config.tracing,
                          trace_limit=config.trace_limit)
    return ThreadSafeBus(tracing=config.tracing,
                         trace_limit=config.trace_limit)


def _token_label(token) -> str:
    """Cheap human-readable name for a wire token (heartbeats only)."""
    if isinstance(token, tuple):
        return _token_label(token[1]) + "(...)"
    return token.rpartition(":")[2]


def _worker_main(config: _WorkerConfig, requests, results) -> None:
    """Worker process entry point: build the slice, serve the queue.

    Protocol (all messages tuples, first element the kind):

    * ``("req", local_index, token)`` — decode and execute.
    * ``("batch", ((local_index, token), ...))`` — execute the whole
      group in order: one IPC message, N requests.
    * ``("sync", sync_id)`` — reply ``("report", worker_id, sync_id,
      payload)`` on ``results``; queue FIFO guarantees every earlier
      request is finished, so the report is a quiesced snapshot.  With
      a result ring the bulk report travels through shared memory and
      ``payload`` carries only the ring offset, spilled records and
      error summaries.
    * ``("ack", offset)`` — the parent drained the ring up to
      ``offset``; that space is reclaimable.
    * ``("stop",)`` — exit the loop.

    A failure *outside* request execution (a corrupt message, a bus
    mapping bug) is reported as ``("crash", worker_id, traceback)`` so
    the parent fails fast instead of timing out.
    """
    ring = None
    pulse_slot = None
    try:
        from .. import obs

        collector = None
        if config.observe:
            obs.enable()
            collector = obs.Collector()
        bus = _build_worker_bus(config)
        if collector is not None:
            bus.collector = collector
        if config.ring_name is not None:
            ring = ShmRing(attach_ring_memory(config.ring_name))

        from ..obs.workloads import bind_stubs

        sessions = []
        completed: dict[str, int] = {}
        for spec, label, slot in config.devices:
            aux, bases = map_fleet_device(bus, spec, slot, label)
            stubs = bind_stubs(spec, config.strategy, bus, bases,
                               shadow_cache=config.shadow_cache)
            if collector is not None:
                collector.register_ports(
                    spec, getattr(stubs, "_obs_ports", {}))
            sessions.append((label, spec, stubs, aux))
            completed[label] = 0

        name = f"pfleet-w{config.worker_id}"
        pulse = None
        latency: dict[str, object] = {}
        if config.heartbeat_name is not None:
            from ..obs.live import WorkerPulse
            from ..obs.metrics import LATENCY_BUCKETS_US, Histogram

            pulse_slot = HeartbeatSlot(
                attach_ring_memory(config.heartbeat_name))
            pulse = WorkerPulse(pulse_slot, name, "process")
            pulse.idle()  # visible before the first request arrives
        errors: list[tuple[str, str, str]] = []
        #: Records that did not fit the ring since the last sync; once
        #: one spills, everything after it spills too, so the parent
        #: replays ring records then spilled records in true order.
        spilled: list = []
        #: Worker-side resolution memo: token -> callable.
        resolutions: dict = {}

        def resolve(token):
            if not config.codec_cache:
                return decode_request(token)
            try:
                request = resolutions.get(token)
            except TypeError:  # unhashable token (never produced today)
                return decode_request(token)
            if request is None:
                request = decode_request(token)
                resolutions[token] = request
            return request

        def execute(local_index, token) -> None:
            label, spec, stubs, aux = sessions[local_index]
            if pulse is None:
                try:
                    resolve(token)(stubs, aux)
                    completed[label] += 1
                except BaseException as exc:  # noqa: BLE001 - at drain
                    errors.append((f"{name}/{label}", repr(exc),
                                   traceback.format_exc()))
                return
            # Telemetry path: bracket the request with heartbeats and
            # observe its execution latency into a per-spec histogram
            # shipped at the next sync.  Device work is untouched.
            pulse.begin(_token_label(token))
            started = time.perf_counter()
            failed = False
            try:
                resolve(token)(stubs, aux)
                completed[label] += 1
            except BaseException as exc:  # noqa: BLE001 - at drain
                failed = True
                errors.append((f"{name}/{label}", repr(exc),
                               traceback.format_exc()))
            elapsed_us = (time.perf_counter() - started) * 1e6
            histogram = latency.get(spec)
            if histogram is None:
                histogram = latency[spec] = Histogram(
                    "fleet.request_us", {}, LATENCY_BUCKETS_US)
            histogram.observe(elapsed_us)
            pulse.done(elapsed_us, error=failed,
                       trace_dropped=bus.trace_dropped)

        def ship(record) -> None:
            """Ring if possible, in-order spill to the queue if not."""
            if ring is None or spilled or not ring.put(record):
                spilled.append(record)

        def flush_spans() -> None:
            if collector is None or ring is None:
                return
            spans = collector.spans
            if spans:
                collector.clear()
                ship(("spans", spans))

        while True:
            message = requests.get()
            kind = message[0]
            if kind == "req":
                execute(message[1], message[2])
                flush_spans()
                continue
            if kind == "batch":
                for local_index, token in message[1]:
                    execute(local_index, token)
                flush_spans()
                continue
            if kind == "ack":
                if ring is not None:
                    ring.ack(message[1])
                continue
            if kind == "stop":
                return
            if kind == "sync":
                if ring is not None:
                    flush_spans()
                    spans = []
                else:
                    spans = collector.spans \
                        if collector is not None else []
                    if collector is not None:
                        collector.clear()
                bulk = {
                    "completed": dict(completed),
                    "accounting": bus.accounting,
                    "by_device": bus.accounting_by_device(),
                    "states": bus.state_snapshot(),
                    "trace": list(bus.trace),
                    "trace_dropped": bus.trace_dropped,
                    "spans": spans,
                    # Latency histograms observed since the last sync
                    # (deltas, so the parent's merge never double
                    # counts); empty without live telemetry.
                    "latency": {spec: histogram.snapshot()
                                for spec, histogram
                                in latency.items()},
                }
                latency.clear()
                payload = {"errors": list(errors), "report": None,
                           "ring_end": None, "spilled": ()}
                errors.clear()
                if ring is not None:
                    ship(("sync_report", message[1], bulk))
                    payload["ring_end"] = ring.written
                    payload["spilled"] = tuple(spilled)
                    spilled.clear()
                else:
                    payload["report"] = bulk
                results.put(("report", config.worker_id,
                             message[1], payload))
                continue
            raise RuntimeError(f"unknown fleet message kind {kind!r}")
    except BaseException:  # noqa: BLE001 - the parent re-raises
        results.put(("crash", config.worker_id,
                     traceback.format_exc()))
    finally:
        if ring is not None:
            ring.close()
        if pulse_slot is not None:
            pulse_slot.close()


class ProcessFleet:
    """N shipped devices sharded across worker processes.

    Drop-in for :class:`~repro.engine.fleet.Fleet` for every
    inspection surface the exactness harnesses use — ``submit``,
    ``submit_batch``, ``run``, ``drain``, ``accounting``,
    ``accounting_by_device()``, ``device_states()``, ``completed()``,
    context management — with requests restricted to picklable
    module-level callables (or partials over them) and the policy
    restricted to the deterministic schedulers.

    ``workers`` is the number of *processes* (clamped to the device
    count: a device is owned by exactly one process).  ``mp_context``
    selects the start method (default: ``fork`` where the platform
    offers it — it inherits the parent's warm spec/model caches — else
    ``spawn``; spawn requires ``repro`` to be importable from the
    child, i.e. installed or on ``PYTHONPATH``).

    ``batch_size`` groups that many consecutive placements per worker
    into one IPC message (``1`` restores one-message-per-request;
    ``"auto"`` picks :data:`DEFAULT_AUTO_BATCH`); ``flush_us`` bounds
    how long a partial batch may sit buffered behind later traffic.
    ``ring_bytes`` sizes the per-worker shared-memory result ring
    (``0`` disables it and reports ride the reply queue, the pre-ring
    transport).

    Telemetry: pass a :class:`repro.obs.Collector` (or enable
    :mod:`repro.obs` before construction) and every worker instruments
    its stubs, collects spans locally, and ships them back through the
    result ring as they complete, where they are merged into
    :attr:`collector` with backend-agnostic metrics rollups.
    """

    backend = "process"

    def __init__(self, devices, strategy: str = "specialize",
                 policy: str = "round-robin", workers: int = 2,
                 queue_depth: int = 64, shadow_cache: bool = False,
                 tracing: bool = False, trace_limit: int | None = None,
                 op_latency_us: float = 0.0,
                 word_latency_us: float = 0.0,
                 weights: dict | None = None,
                 collector=None,
                 mp_context: str | None = None,
                 sync_timeout: float = SYNC_TIMEOUT,
                 batch_size: int | str = 1,
                 flush_us: float = DEFAULT_FLUSH_US,
                 ring_bytes: int = DEFAULT_RING_BYTES,
                 codec_cache: bool = True,
                 telemetry=None):
        from .. import obs

        if not devices:
            raise ValueError("a fleet needs at least one device")
        if workers < 1:
            raise ValueError(f"need at least one worker (got {workers})")
        if policy not in SCHEDULERS:
            raise ValueError(
                f"unknown policy {policy!r} "
                f"(have: {', '.join(sorted(SCHEDULERS))})")
        if policy not in DETERMINISTIC_POLICIES:
            raise ValueError(
                f"policy {policy!r} is not deterministic at submit "
                f"time; the process backend requires one of: "
                f"{', '.join(DETERMINISTIC_POLICIES)}")
        if batch_size == "auto":
            batch_size = DEFAULT_AUTO_BATCH
        if not isinstance(batch_size, int) or batch_size < 1:
            raise ValueError(
                f"batch_size must be a positive integer or 'auto', "
                f"got {batch_size!r}")
        if flush_us <= 0:
            raise ValueError(f"flush_us must be positive, got {flush_us}")
        if ring_bytes < 0:
            raise ValueError(
                f"ring_bytes must be non-negative, got {ring_bytes}")
        # Resolve "auto" in the parent, once: workers receive the
        # decided strategy, so the compiler probe does not repeat per
        # worker and every shard binds the same way.
        strategy = resolve_strategy(strategy, shadow_cache)
        self.strategy = strategy
        self.policy = policy
        self.workers = min(workers, len(devices))
        self.batch_size = batch_size
        self.flush_us = flush_us
        self.submitted = 0
        self._sync_timeout = sync_timeout
        self._dirty = False
        self._closed = False
        self._failures: list[tuple[str, object, str]] = []
        self._sync_ids = itertools.count(1)
        self._reports: dict[int, dict] = {}
        self._codec_cache = codec_cache
        self._tokens: dict = {}

        observe = collector is not None or obs.is_enabled()
        self.collector = (collector or obs.Collector()) if observe \
            else None

        #: Live telemetry plane (``None`` = off; ``True`` builds one).
        if telemetry is True:
            from ..obs.live import FleetTelemetry

            telemetry = FleetTelemetry()
        self.telemetry = telemetry or None
        self._health = None
        self._heartbeat_slots: list[HeartbeatSlot] = []

        # Shard devices across workers; layout (labels, slots) is the
        # global one, shared with the thread backend.
        per_worker: list[list] = [[] for _ in range(self.workers)]
        self.sessions: list[ProcessSession] = []
        for index, (spec, label, slot) in \
                enumerate(fleet_layout(devices)):
            worker = index % self.workers
            self.sessions.append(ProcessSession(
                label=label, spec=spec, slot=slot, worker=worker,
                local_index=len(per_worker[worker]),
                weight=session_weight(weights, label, spec)))
            per_worker[worker].append((spec, label, slot))
        self.scheduler = SCHEDULERS[policy](self.sessions)

        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(mp_context)
        self.mp_context = mp_context
        self._results = context.Queue()
        self._queues = []
        self._processes = []
        self._rings: list[ShmRing] | None = None
        if ring_bytes:
            self._rings = [
                ShmRing(create_ring_memory(
                    max(ring_bytes, MIN_RING_BYTES)))
                for _ in range(self.workers)]
        self._pending: list[list] = [[] for _ in range(self.workers)]
        self._pending_since: list[float | None] = \
            [None] * self.workers
        for worker_id in range(self.workers):
            heartbeat_name = None
            if self.telemetry is not None:
                slot = HeartbeatSlot(create_heartbeat_memory())
                self._heartbeat_slots.append(slot)
                self.telemetry.attach_reader(f"pfleet-w{worker_id}",
                                             slot)
                heartbeat_name = slot.memory.name
            config = _WorkerConfig(
                worker_id=worker_id,
                devices=tuple(per_worker[worker_id]),
                strategy=strategy, shadow_cache=shadow_cache,
                tracing=tracing, trace_limit=trace_limit,
                op_latency_us=op_latency_us,
                word_latency_us=word_latency_us,
                observe=observe,
                ring_name=self._rings[worker_id].memory.name
                if self._rings is not None else None,
                codec_cache=codec_cache,
                heartbeat_name=heartbeat_name)
            requests = context.Queue(maxsize=queue_depth)
            process = context.Process(
                target=_worker_main,
                args=(config, requests, self._results),
                name=f"pfleet-w{worker_id}", daemon=True)
            process.start()
            self._queues.append(requests)
            self._processes.append(process)

    # -- request flow ---------------------------------------------------

    def _encode(self, request):
        if not self._codec_cache:
            return encode_request(request)
        token = self._tokens.get(request)
        if token is None:
            token = encode_request(request)
            if len(self._tokens) >= _TOKEN_CACHE_LIMIT:
                self._tokens.clear()
            self._tokens[request] = token
        return token

    def _place(self, spec: str, request) -> ProcessSession:
        """Route one request (deterministic, in the caller's process)
        and buffer its placement for the owning worker."""
        token = self._encode(request)
        session = self.scheduler.acquire(spec)
        self.scheduler.release(session)
        self._pending[session.worker].append(
            (session.local_index, token))
        session.assigned += 1
        self.submitted += 1
        self._dirty = True
        if self.telemetry is not None:
            self.telemetry.note_submit("process", spec, session.label,
                                       _token_label(token))
        return session

    def _flush_worker(self, worker: int) -> None:
        pending = self._pending[worker]
        if not pending:
            return
        if len(pending) == 1:
            local_index, token = pending[0]
            self._queues[worker].put(("req", local_index, token))
        else:
            self._queues[worker].put(("batch", tuple(pending)))
            if self.telemetry is not None:
                self.telemetry.recorder.record(
                    "batch-flush", worker=f"pfleet-w{worker}",
                    count=len(pending))
        pending.clear()
        self._pending_since[worker] = None

    def _flush_pending(self) -> None:
        for worker in range(self.workers):
            self._flush_worker(worker)

    def submit(self, spec: str, request) -> None:
        """Route one request and ship it to the owning worker process.

        The session is picked *here*, in the caller's process, by the
        deterministic policy — so placement is a pure function of
        submission order, byte-for-byte the same function the thread
        backend computes.  With ``batch_size > 1`` the placement is
        buffered and shipped once the worker's batch fills, the
        ``flush_us`` watermark expires, or a sync point arrives —
        transport only; per-device execution order is still submission
        order.  Blocks when the worker's queue is full (backpressure,
        exactly like the thread pool's bounded queue).
        """
        if self._closed:
            raise RuntimeError("fleet is shut down")
        session = self._place(spec, request)
        worker = session.worker
        if self.batch_size <= 1:
            self._flush_worker(worker)
            return
        now = time.monotonic()
        if self._pending_since[worker] is None:
            self._pending_since[worker] = now
        if len(self._pending[worker]) >= self.batch_size:
            self._flush_worker(worker)
        deadline = self.flush_us * 1e-6
        for other in range(self.workers):
            since = self._pending_since[other]
            if since is not None and now - since >= deadline:
                self._flush_worker(other)

    def submit_batch(self, requests) -> int:
        """Submit every ``(spec, request)`` pair, batched per worker.

        Placement runs per request in submission order (identical to
        N ``submit`` calls); transport is one IPC message per worker
        shard regardless of ``batch_size``.  Returns the count.
        """
        if self._closed:
            raise RuntimeError("fleet is shut down")
        count = 0
        for spec, request in requests:
            self._place(spec, request)
            count += 1
        self._flush_pending()
        return count

    def run(self, requests) -> int:
        """Submit every ``(spec, request)`` pair, then drain."""
        count = 0
        for spec, request in requests:
            self.submit(spec, request)
            count += 1
        self.drain()
        return count

    def drain(self) -> None:
        """Quiesce every worker and merge its report; re-raise errors."""
        if self._dirty or not self._reports:
            self._collect_reports()
        try:
            self._raise_failures()
        except WorkerError as exc:
            if self.telemetry is not None:
                self.telemetry.recorder.record("drain",
                                               error=repr(exc))
                self.telemetry.dump("drain-error")
            raise

    def _absorb_ring(self, worker_id: int, sync_id: int,
                     payload: dict):
        """Drain one worker's result ring (plus spilled records) and
        return its sync report for ``sync_id`` (None when stale).

        Ring records and spilled records replay in production order —
        the worker stops ringing the moment one record spills.  Span
        batches are ingested as encountered, so their completion order
        is preserved; the ring space is acknowledged immediately.
        """
        ring = self._rings[worker_id]
        records = ring.read_to(payload["ring_end"])
        records.extend(payload["spilled"])
        bulk = None
        for record in records:
            kind = record[0]
            if kind == "spans":
                if self.collector is not None:
                    self.collector.ingest(record[1])
            elif kind == "sync_report" and record[1] == sync_id:
                bulk = record[2]
        self._queues[worker_id].put(("ack", ring.consumed))
        return bulk

    def _collect_reports(self) -> None:
        self._flush_pending()
        sync_id = next(self._sync_ids)
        if self.telemetry is not None:
            self.telemetry.recorder.record("sync", sync_id=sync_id)
        for requests in self._queues:
            requests.put(("sync", sync_id))
        pending = set(range(self.workers))
        while pending:
            try:
                message = self._results.get(timeout=self._sync_timeout)
            except queue_module.Empty:
                dead = [f"pfleet-w{i}" for i in pending
                        if not self._processes[i].is_alive()]
                if self.telemetry is not None:
                    self.telemetry.recorder.record(
                        "worker-error",
                        worker=", ".join(dead) or None,
                        error="sync timeout",
                        pending=len(pending))
                    self.telemetry.dump("sync-timeout")
                raise WorkerError([(
                    ", ".join(dead) or f"pfleet ({len(pending)} pending)",
                    RuntimeError(
                        "worker process died or wedged before "
                        "acknowledging sync"
                        if dead else
                        f"no sync report within {self._sync_timeout}s"),
                    "")]) from None
            kind = message[0]
            if kind == "crash":
                _, worker_id, formatted = message
                pending.discard(worker_id)
                self._failures.append(
                    (f"pfleet-w{worker_id}",
                     RuntimeError("worker process crashed"), formatted))
                if self.telemetry is not None:
                    self.telemetry.recorder.record(
                        "worker-error", worker=f"pfleet-w{worker_id}",
                        error="worker process crashed")
                    self.telemetry.dump(f"crash:pfleet-w{worker_id}")
                continue
            _, worker_id, got_sync, payload = message
            if self._rings is not None \
                    and payload.get("ring_end") is not None:
                report = self._absorb_ring(worker_id, got_sync, payload)
            else:
                report = payload["report"]
            if got_sync != sync_id or report is None:
                continue  # stale report from an aborted earlier sync
            pending.discard(worker_id)
            self._reports[worker_id] = report
            for failure in payload["errors"]:
                self._failures.append(failure)
            if self.collector is not None and report["spans"]:
                self.collector.ingest(report["spans"])
            if self.telemetry is not None:
                for spec, snapshot in report.get("latency",
                                                 {}).items():
                    self.telemetry.merge_latency(spec, "process",
                                                 snapshot)
        for session in self.sessions:
            report = self._reports.get(session.worker)
            if report is not None:
                session.completed = \
                    report["completed"].get(session.label, 0)
        self._dirty = False
        if self.collector is not None:
            self.collector.record_trace_drops(
                sum(report["trace_dropped"]
                    for report in self._reports.values()))

    def _raise_failures(self) -> None:
        if self._failures:
            failures, self._failures = self._failures, []
            raise WorkerError(failures)

    # -- lifecycle ------------------------------------------------------

    def shutdown(self) -> None:
        """Drain, stop every worker process, and join them."""
        if self._closed:
            return
        self._closed = True
        sync_error = None
        try:
            if self._dirty or not self._reports:
                self._collect_reports()
        except WorkerError as error:
            sync_error = error
        for requests in self._queues:
            try:
                requests.put(("stop",))
            except ValueError:  # queue already closed
                pass
        for process in self._processes:
            process.join(timeout=self._sync_timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        if self._rings is not None:
            for ring in self._rings:
                ring.close()
                ring.unlink()
            self._rings = None
        for slot in self._heartbeat_slots:
            slot.close()
            slot.unlink()
        self._heartbeat_slots = []
        if self.telemetry is not None:
            self.telemetry.recorder.record("shutdown",
                                           submitted=self.submitted)
        if sync_error is not None:
            raise sync_error
        self._raise_failures()

    def __enter__(self) -> "ProcessFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.shutdown()
            return
        # Error path: still stop the workers, but don't mask the
        # propagating exception with queued-work failures.
        try:
            self.shutdown()
        except WorkerError:
            pass

    # -- inspection (exact, post-drain) ---------------------------------

    def _synced_reports(self) -> list[dict]:
        if self._dirty or not self._reports:
            self.drain()
        return [self._reports[worker_id]
                for worker_id in sorted(self._reports)]

    @property
    def accounting(self) -> IoAccounting:
        """Exact merged totals across every worker's bus slice."""
        total = IoAccounting()
        for report in self._synced_reports():
            total.add(report["accounting"])
        return total

    def accounting_by_device(self) -> dict:
        """Label union of every worker's per-device shards (exact)."""
        merged: dict = {}
        for report in self._synced_reports():
            for name, shard in report["by_device"].items():
                if name in merged:
                    merged[name].add(shard)
                else:
                    merged[name] = shard.snapshot()
        return merged

    def device_states(self) -> dict[str, bytes]:
        """Byte-comparable per-mapping end-state across all workers."""
        states: dict[str, bytes] = {}
        for report in self._synced_reports():
            states.update(report["states"])
        return states

    @property
    def trace(self) -> list:
        """Worker traces concatenated in worker order.

        Per-device program order and block-group contiguity hold
        within each worker's segment (each worker is single-threaded);
        cross-worker interleaving is not meaningful and not modelled.
        """
        entries: list = []
        for report in self._synced_reports():
            entries.extend(report["trace"])
        return entries

    @property
    def trace_dropped(self) -> int:
        return sum(report["trace_dropped"]
                   for report in self._synced_reports())

    @property
    def spans(self) -> list:
        """Merged spans (requires a collector; empty list otherwise)."""
        if self.collector is None:
            return []
        self._synced_reports()
        return self.collector.spans

    def completed(self) -> int:
        self._synced_reports()
        return sum(session.completed for session in self.sessions)

    def completed_by_device(self) -> dict[str, int]:
        self._synced_reports()
        return {session.label: session.completed
                for session in self.sessions}

    def sessions_of(self, spec: str) -> list[ProcessSession]:
        return [s for s in self.sessions if s.spec == spec]

    # -- live telemetry plumbing ----------------------------------------

    def worker_liveness(self) -> dict[str, bool]:
        """``worker name -> is the process alive`` (health's "dead")."""
        return {f"pfleet-w{worker_id}": process.is_alive()
                for worker_id, process in enumerate(self._processes)}

    def queue_depths(self) -> dict[str, int | None]:
        """Request-queue depth per worker (approximate by nature;
        ``None`` where the platform's ``qsize`` is unimplemented)."""
        depths: dict[str, int | None] = {}
        for worker_id, requests in enumerate(self._queues):
            try:
                depths[f"pfleet-w{worker_id}"] = requests.qsize()
            except NotImplementedError:  # macOS
                depths[f"pfleet-w{worker_id}"] = None
        return depths

    def batch_occupancy(self) -> dict[str, int]:
        """Parent-side buffered placements per worker (batching)."""
        return {f"pfleet-w{worker_id}": len(pending)
                for worker_id, pending in enumerate(self._pending)}

    def health_view(self, **kwargs):
        """The :class:`repro.obs.live.FleetHealth` view of this fleet.

        Built on first call (keyword arguments configure the stall
        detector then); later calls return the same instance so status
        transitions are tracked consistently.
        """
        if self._health is None:
            from ..obs.live import FleetHealth

            self._health = FleetHealth(self, **kwargs)
        return self._health
