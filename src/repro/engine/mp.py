"""Multiprocessing fleet backend: devices sharded across processes.

:class:`ProcessFleet` is the second execution substrate under the
fleet engine.  The thread backend (:class:`~repro.engine.fleet.Fleet`)
scales exactly as far as the GIL lets it — which is far for sleeping
I/O latency and not at all for CPU-bound request mixes.  The process
backend shards the *devices* across worker processes instead: each
worker owns its devices' complete Devil runtime — a private bus slice
with only its devices mapped (at their global slots), bound stubs,
shadow caches, transaction contexts, span collector — so the hot path
crosses no process boundary and takes no cross-process lock at all.
The only IPC is one queue message per request in and one report per
sync out.

Design rules (the same exactness contract the thread fleet obeys, see
``docs/CONCURRENCY.md``):

* **Sharding is a pure function of the device list.**  Device
  ``index % workers`` picks the owning worker; labels and port slots
  come from :func:`~repro.engine.fleet.fleet_layout`, shared with the
  thread backend, so a device's mapping names and absolute ports are
  identical in every backend — which is what makes end-state and span
  signatures byte-comparable across substrates.
* **Placement is a pure function of submission order.**  ``submit``
  runs the scheduling policy in the parent, exactly like the thread
  fleet; only :data:`~repro.engine.scheduler.DETERMINISTIC_POLICIES`
  are allowed (``least-loaded`` needs completion feedback that would
  reintroduce timing dependence).  Each worker executes its stream in
  FIFO order, so per-device request order equals submission order.
* **Requests travel by reference.**  ``submit`` encodes the request
  callable with :func:`~repro.engine.requests.encode_request` — a
  validated ``module:qualname`` token — so both backends execute the
  identical function object and unpicklable callables fail loudly in
  the submitting process.
* **Merging is exact.**  At every sync the workers report absolute
  per-device accounting shards, pickled device end-state
  (:meth:`repro.bus.Bus.state_snapshot`), their trace rings (block
  groups contiguous, per-device program order preserved) and their
  span buffers.  The parent merges shards by label union (labels are
  globally unique), concatenates traces in worker order and ingests
  spans into its collector (:meth:`repro.obs.Collector.ingest`), so
  ``accounting``/``accounting_by_device()``/``device_states()`` answer
  with the same exact totals the thread fleet computes from its shared
  bus.

Worker failures mirror the thread pool: request exceptions are
captured with their tracebacks and re-raised in the parent as one
:class:`~repro.engine.pool.WorkerError` at ``drain``/``shutdown``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_module
import traceback
from dataclasses import dataclass, field

from ..bus import IoAccounting
from .fleet import LatencyBus, fleet_layout, map_fleet_device, \
    session_weight
from .pool import WorkerError
from .requests import decode_request, encode_request
from .scheduler import DETERMINISTIC_POLICIES, SCHEDULERS

#: Default seconds to wait for one worker's sync report before
#: declaring it wedged (each report is one queue message; a healthy
#: worker answers as soon as it reaches the sync marker).
SYNC_TIMEOUT = 120.0


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a worker process needs to build its fleet slice."""

    worker_id: int
    #: ``(spec, label, slot)`` triples, in global fleet order.
    devices: tuple
    strategy: str
    shadow_cache: bool
    tracing: bool
    trace_limit: int | None
    op_latency_us: float
    word_latency_us: float
    #: Instrument stubs and collect spans in the worker.
    observe: bool


@dataclass
class ProcessSession:
    """Parent-side handle for one device owned by a worker process.

    The scheduling policy runs against these proxies exactly as it
    runs against :class:`~repro.engine.fleet.DeviceSession` objects in
    the thread backend — it only reads ``spec`` and ``weight``.
    ``assigned`` counts submit-time placements; ``completed`` is the
    worker-reported execution count (equal after a clean drain).
    """

    label: str
    spec: str
    slot: int
    worker: int
    #: Index into the owning worker's local session list.
    local_index: int
    weight: int = 1
    assigned: int = 0
    completed: int = 0


def _build_worker_bus(config: _WorkerConfig):
    """The worker's private bus slice with its devices mapped.

    A :class:`LatencyBus`/``ThreadSafeBus`` for exact interface parity
    with the thread backend (same accounting shards, same
    ``accounting_by_device``); its locks are process-local and
    uncontended — the worker is single-threaded — so the hot path
    stays lock-free in every way that matters.
    """
    from ..bus import ThreadSafeBus

    if config.op_latency_us or config.word_latency_us:
        return LatencyBus(op_latency_us=config.op_latency_us,
                          word_latency_us=config.word_latency_us,
                          tracing=config.tracing,
                          trace_limit=config.trace_limit)
    return ThreadSafeBus(tracing=config.tracing,
                         trace_limit=config.trace_limit)


def _worker_main(config: _WorkerConfig, requests, results) -> None:
    """Worker process entry point: build the slice, serve the queue.

    Protocol (all messages tuples, first element the kind):

    * ``("req", local_index, token)`` — decode and execute.
    * ``("sync", sync_id)`` — reply ``("report", worker_id, sync_id,
      report)`` on ``results``; queue FIFO guarantees every earlier
      request is finished, so the report is a quiesced snapshot.
    * ``("stop",)`` — exit the loop.

    A failure *outside* request execution (a corrupt message, a bus
    mapping bug) is reported as ``("crash", worker_id, traceback)`` so
    the parent fails fast instead of timing out.
    """
    try:
        from .. import obs

        collector = None
        if config.observe:
            obs.enable()
            collector = obs.Collector()
        bus = _build_worker_bus(config)
        if collector is not None:
            bus.collector = collector

        from ..obs.workloads import bind_stubs

        sessions = []
        completed: dict[str, int] = {}
        for spec, label, slot in config.devices:
            aux, bases = map_fleet_device(bus, spec, slot, label)
            stubs = bind_stubs(spec, config.strategy, bus, bases,
                               shadow_cache=config.shadow_cache)
            if collector is not None:
                collector.register_ports(
                    spec, getattr(stubs, "_obs_ports", {}))
            sessions.append((label, stubs, aux))
            completed[label] = 0

        name = f"pfleet-w{config.worker_id}"
        errors: list[tuple[str, str, str]] = []
        while True:
            message = requests.get()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "sync":
                spans = collector.spans if collector is not None else []
                if collector is not None:
                    collector.clear()
                report = {
                    "completed": dict(completed),
                    "accounting": bus.accounting,
                    "by_device": bus.accounting_by_device(),
                    "states": bus.state_snapshot(),
                    "trace": list(bus.trace),
                    "trace_dropped": bus.trace_dropped,
                    "spans": spans,
                    "errors": list(errors),
                }
                errors = []
                results.put(("report", config.worker_id,
                             message[1], report))
                continue
            _, local_index, token = message
            label, stubs, aux = sessions[local_index]
            try:
                request = decode_request(token)
                request(stubs, aux)
                completed[label] += 1
            except BaseException as exc:  # noqa: BLE001 - reported at drain
                errors.append((f"{name}/{label}", repr(exc),
                               traceback.format_exc()))
    except BaseException:  # noqa: BLE001 - the parent re-raises
        results.put(("crash", config.worker_id,
                     traceback.format_exc()))


class ProcessFleet:
    """N shipped devices sharded across worker processes.

    Drop-in for :class:`~repro.engine.fleet.Fleet` for every
    inspection surface the exactness harnesses use — ``submit``,
    ``run``, ``drain``, ``accounting``, ``accounting_by_device()``,
    ``device_states()``, ``completed()``, context management — with
    requests restricted to picklable module-level callables and the
    policy restricted to the deterministic schedulers.

    ``workers`` is the number of *processes* (clamped to the device
    count: a device is owned by exactly one process).  ``mp_context``
    selects the start method (default: ``fork`` where the platform
    offers it — it inherits the parent's warm spec/model caches — else
    ``spawn``; spawn requires ``repro`` to be importable from the
    child, i.e. installed or on ``PYTHONPATH``).

    Telemetry: pass a :class:`repro.obs.Collector` (or enable
    :mod:`repro.obs` before construction) and every worker instruments
    its stubs, collects spans locally, and ships them back at each
    drain, where they are merged into :attr:`collector` with
    backend-agnostic metrics rollups.
    """

    backend = "process"

    def __init__(self, devices, strategy: str = "specialize",
                 policy: str = "round-robin", workers: int = 2,
                 queue_depth: int = 64, shadow_cache: bool = False,
                 tracing: bool = False, trace_limit: int | None = None,
                 op_latency_us: float = 0.0,
                 word_latency_us: float = 0.0,
                 weights: dict | None = None,
                 collector=None,
                 mp_context: str | None = None,
                 sync_timeout: float = SYNC_TIMEOUT):
        from .. import obs

        if not devices:
            raise ValueError("a fleet needs at least one device")
        if workers < 1:
            raise ValueError(f"need at least one worker (got {workers})")
        if policy not in SCHEDULERS:
            raise ValueError(
                f"unknown policy {policy!r} "
                f"(have: {', '.join(sorted(SCHEDULERS))})")
        if policy not in DETERMINISTIC_POLICIES:
            raise ValueError(
                f"policy {policy!r} is not deterministic at submit "
                f"time; the process backend requires one of: "
                f"{', '.join(DETERMINISTIC_POLICIES)}")
        self.strategy = strategy
        self.policy = policy
        self.workers = min(workers, len(devices))
        self.submitted = 0
        self._sync_timeout = sync_timeout
        self._dirty = False
        self._closed = False
        self._failures: list[tuple[str, object, str]] = []
        self._sync_ids = itertools.count(1)
        self._reports: dict[int, dict] = {}

        observe = collector is not None or obs.is_enabled()
        self.collector = (collector or obs.Collector()) if observe \
            else None

        # Shard devices across workers; layout (labels, slots) is the
        # global one, shared with the thread backend.
        per_worker: list[list] = [[] for _ in range(self.workers)]
        self.sessions: list[ProcessSession] = []
        for index, (spec, label, slot) in \
                enumerate(fleet_layout(devices)):
            worker = index % self.workers
            self.sessions.append(ProcessSession(
                label=label, spec=spec, slot=slot, worker=worker,
                local_index=len(per_worker[worker]),
                weight=session_weight(weights, label, spec)))
            per_worker[worker].append((spec, label, slot))
        self.scheduler = SCHEDULERS[policy](self.sessions)

        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(mp_context)
        self.mp_context = mp_context
        self._results = context.Queue()
        self._queues = []
        self._processes = []
        for worker_id in range(self.workers):
            config = _WorkerConfig(
                worker_id=worker_id,
                devices=tuple(per_worker[worker_id]),
                strategy=strategy, shadow_cache=shadow_cache,
                tracing=tracing, trace_limit=trace_limit,
                op_latency_us=op_latency_us,
                word_latency_us=word_latency_us,
                observe=observe)
            requests = context.Queue(maxsize=queue_depth)
            process = context.Process(
                target=_worker_main,
                args=(config, requests, self._results),
                name=f"pfleet-w{worker_id}", daemon=True)
            process.start()
            self._queues.append(requests)
            self._processes.append(process)

    # -- request flow ---------------------------------------------------

    def submit(self, spec: str, request) -> None:
        """Route one request and ship it to the owning worker process.

        The session is picked *here*, in the caller's process, by the
        deterministic policy — so placement is a pure function of
        submission order, byte-for-byte the same function the thread
        backend computes.  Blocks when the worker's queue is full
        (backpressure, exactly like the thread pool's bounded queue).
        """
        if self._closed:
            raise RuntimeError("fleet is shut down")
        token = encode_request(request)
        session = self.scheduler.acquire(spec)
        self.scheduler.release(session)
        self._queues[session.worker].put(
            ("req", session.local_index, token))
        session.assigned += 1
        self.submitted += 1
        self._dirty = True

    def run(self, requests) -> int:
        """Submit every ``(spec, request)`` pair, then drain."""
        count = 0
        for spec, request in requests:
            self.submit(spec, request)
            count += 1
        self.drain()
        return count

    def drain(self) -> None:
        """Quiesce every worker and merge its report; re-raise errors."""
        if self._dirty or not self._reports:
            self._collect_reports()
        self._raise_failures()

    def _collect_reports(self) -> None:
        sync_id = next(self._sync_ids)
        for requests in self._queues:
            requests.put(("sync", sync_id))
        pending = set(range(self.workers))
        while pending:
            try:
                message = self._results.get(timeout=self._sync_timeout)
            except queue_module.Empty:
                dead = [f"pfleet-w{i}" for i in pending
                        if not self._processes[i].is_alive()]
                raise WorkerError([(
                    ", ".join(dead) or f"pfleet ({len(pending)} pending)",
                    RuntimeError(
                        "worker process died or wedged before "
                        "acknowledging sync"
                        if dead else
                        f"no sync report within {self._sync_timeout}s"),
                    "")]) from None
            kind = message[0]
            if kind == "crash":
                _, worker_id, formatted = message
                pending.discard(worker_id)
                self._failures.append(
                    (f"pfleet-w{worker_id}",
                     RuntimeError("worker process crashed"), formatted))
                continue
            _, worker_id, got_sync, report = message
            if got_sync != sync_id:
                continue  # stale report from an aborted earlier sync
            pending.discard(worker_id)
            self._reports[worker_id] = report
            for failure in report["errors"]:
                self._failures.append(failure)
            if self.collector is not None and report["spans"]:
                self.collector.ingest(report["spans"])
        for session in self.sessions:
            report = self._reports.get(session.worker)
            if report is not None:
                session.completed = \
                    report["completed"].get(session.label, 0)
        self._dirty = False
        if self.collector is not None:
            self.collector.record_trace_drops(
                sum(report["trace_dropped"]
                    for report in self._reports.values()))

    def _raise_failures(self) -> None:
        if self._failures:
            failures, self._failures = self._failures, []
            raise WorkerError(failures)

    # -- lifecycle ------------------------------------------------------

    def shutdown(self) -> None:
        """Drain, stop every worker process, and join them."""
        if self._closed:
            return
        self._closed = True
        sync_error = None
        try:
            if self._dirty or not self._reports:
                self._collect_reports()
        except WorkerError as error:
            sync_error = error
        for requests in self._queues:
            try:
                requests.put(("stop",))
            except ValueError:  # queue already closed
                pass
        for process in self._processes:
            process.join(timeout=self._sync_timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        if sync_error is not None:
            raise sync_error
        self._raise_failures()

    def __enter__(self) -> "ProcessFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.shutdown()
            return
        # Error path: still stop the workers, but don't mask the
        # propagating exception with queued-work failures.
        try:
            self.shutdown()
        except WorkerError:
            pass

    # -- inspection (exact, post-drain) ---------------------------------

    def _synced_reports(self) -> list[dict]:
        if self._dirty or not self._reports:
            self.drain()
        return [self._reports[worker_id]
                for worker_id in sorted(self._reports)]

    @property
    def accounting(self) -> IoAccounting:
        """Exact merged totals across every worker's bus slice."""
        total = IoAccounting()
        for report in self._synced_reports():
            total.add(report["accounting"])
        return total

    def accounting_by_device(self) -> dict:
        """Label union of every worker's per-device shards (exact)."""
        merged: dict = {}
        for report in self._synced_reports():
            for name, shard in report["by_device"].items():
                if name in merged:
                    merged[name].add(shard)
                else:
                    merged[name] = shard.snapshot()
        return merged

    def device_states(self) -> dict[str, bytes]:
        """Byte-comparable per-mapping end-state across all workers."""
        states: dict[str, bytes] = {}
        for report in self._synced_reports():
            states.update(report["states"])
        return states

    @property
    def trace(self) -> list:
        """Worker traces concatenated in worker order.

        Per-device program order and block-group contiguity hold
        within each worker's segment (each worker is single-threaded);
        cross-worker interleaving is not meaningful and not modelled.
        """
        entries: list = []
        for report in self._synced_reports():
            entries.extend(report["trace"])
        return entries

    @property
    def trace_dropped(self) -> int:
        return sum(report["trace_dropped"]
                   for report in self._synced_reports())

    @property
    def spans(self) -> list:
        """Merged spans (requires a collector; empty list otherwise)."""
        if self.collector is None:
            return []
        self._synced_reports()
        return self.collector.spans

    def completed(self) -> int:
        self._synced_reports()
        return sum(session.completed for session in self.sessions)

    def completed_by_device(self) -> dict[str, int]:
        self._synced_reports()
        return {session.label: session.completed
                for session in self.sessions}

    def sessions_of(self, spec: str) -> list[ProcessSession]:
        return [s for s in self.sessions if s.spec == spec]
