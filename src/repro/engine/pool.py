"""Bounded worker pool for the fleet engine.

A :class:`WorkerPool` owns N daemon threads pulling work items from a
bounded :class:`queue.Queue`.  The bounded queue is the backpressure
mechanism: a producer calling :meth:`submit` blocks once
``queue_depth`` items are in flight, so an arbitrarily fast request
generator cannot outrun the workers and balloon memory.

Work items are plain callables (already bound to a device session by
the scheduler).  Worker exceptions are captured — not swallowed — and
re-raised in the submitting thread at :meth:`drain`/:meth:`shutdown`,
so a failing request fails the run loudly instead of silently dropping
throughput.
"""

from __future__ import annotations

import queue
import threading
import traceback
from typing import Callable

#: Queue sentinel telling a worker thread to exit.
_STOP = object()


class WorkerError(RuntimeError):
    """One or more fleet workers raised; carries the formatted causes.

    Shared by both backends: thread-pool failures carry the live
    exception object, process-backend failures (which crossed a pickle
    boundary) carry its ``repr`` string — either way ``failures`` is a
    list of ``(worker name, exception-or-repr, formatted traceback)``.
    """

    def __init__(self, failures: list[tuple[str, BaseException, str]]):
        self.failures = failures
        lines = [f"{len(failures)} fleet worker failure(s):"]
        for worker, exc, tb in failures:
            lines.append(f"--- {worker}: {exc!r}\n{tb}")
        super().__init__("\n".join(lines))


class WorkerPool:
    """N worker threads draining a bounded queue of callables."""

    def __init__(self, workers: int, queue_depth: int = 64,
                 name: str = "fleet"):
        if workers < 1:
            raise ValueError(f"need at least one worker (got {workers})")
        if queue_depth < 1:
            raise ValueError(
                f"queue depth must be positive (got {queue_depth})")
        self.workers = workers
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._failures: list[tuple[str, BaseException, str]] = []
        self._failure_lock = threading.Lock()
        self._closed = False
        self._threads = [
            threading.Thread(target=self._run, name=f"{name}-w{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- worker side ----------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            try:
                item()
            except BaseException as exc:  # noqa: BLE001 - reported at drain
                with self._failure_lock:
                    self._failures.append(
                        (threading.current_thread().name, exc,
                         traceback.format_exc()))
            finally:
                self._queue.task_done()

    # -- producer side --------------------------------------------------

    def submit(self, work: Callable[[], None]) -> None:
        """Enqueue ``work``; blocks when the queue is full (backpressure)."""
        if self._closed:
            raise RuntimeError("pool is shut down")
        self._queue.put(work)

    def drain(self) -> None:
        """Block until every submitted item has been processed.

        Re-raises collected worker failures as one :class:`WorkerError`.
        """
        self._queue.join()
        self._raise_failures()

    def shutdown(self) -> None:
        """Drain, stop every worker thread, and join them."""
        if self._closed:
            return
        self._closed = True
        self._queue.join()
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join()
        self._raise_failures()

    def _raise_failures(self) -> None:
        with self._failure_lock:
            failures, self._failures = self._failures, []
        if failures:
            raise WorkerError(failures)

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.shutdown()
            return
        # Error path: still stop the workers, but don't mask the
        # propagating exception with queued-work failures.
        try:
            self.shutdown()
        except WorkerError:
            pass
