"""Concurrent device-fleet engine.

Builds on the thread-safe bus (:class:`repro.bus.ThreadSafeBus`) to
run driver-shaped request streams against a *fleet* of simulated
devices in parallel: a :class:`Fleet` maps N shipped devices into one
port space, a scheduling policy routes each request to a per-device
session, and a bounded worker pool executes them with backpressure.

See ``docs/CONCURRENCY.md`` for the locking model and
``benchmarks/bench_fleet.py`` for the throughput numbers.
"""

from .fleet import (
    SLOT_STRIDE,
    DeviceSession,
    Fleet,
    LatencyBus,
    map_fleet_device,
)
from .pool import WorkerError, WorkerPool
from .requests import (
    MIXED_REQUESTS,
    ide_sector_read,
    ide_sector_read_txn,
    ne2000_ring_poll,
    pm2_fill_rect,
)
from .scheduler import (
    SCHEDULERS,
    LeastLoadedScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from .stress import (
    fingerprint,
    fleet_fingerprint,
    mixed_schedule,
    run_stress,
)

__all__ = [
    "SLOT_STRIDE",
    "DeviceSession",
    "Fleet",
    "LatencyBus",
    "map_fleet_device",
    "WorkerError",
    "WorkerPool",
    "MIXED_REQUESTS",
    "ide_sector_read",
    "ide_sector_read_txn",
    "ne2000_ring_poll",
    "pm2_fill_rect",
    "SCHEDULERS",
    "LeastLoadedScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "fingerprint",
    "fleet_fingerprint",
    "mixed_schedule",
    "run_stress",
]
