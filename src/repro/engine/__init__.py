"""Concurrent device-fleet engine.

Two execution substrates under one request API:

* the **thread backend** (:class:`Fleet`) maps N shipped devices into
  one port space on a shared :class:`repro.bus.ThreadSafeBus`, routes
  requests to per-device sessions by a scheduling policy, and executes
  them on a bounded worker pool with backpressure — it scales with the
  sleeping-I/O fraction of the mix;
* the **process backend** (:class:`ProcessFleet`) shards the devices
  across worker processes, each owning its devices' complete Devil
  runtime on a private bus slice — it scales CPU-bound mixes the GIL
  serializes, and merges accounting, traces and spans back exactly.
  Request batching and per-worker shared-memory result rings
  (:mod:`repro.engine.shm`) keep IPC off the per-request path.

:func:`Fleet.auto` / :func:`auto_fleet` pick between the two by
measuring a short calibration burst of the actual request mix
(:mod:`repro.engine.select`).

Placement under the deterministic policies is a pure function of
submission order in both backends, which is what makes them
byte-comparable against each other and against a serial reference
(``tests/test_fleet_mp.py``).

See ``docs/CONCURRENCY.md`` for the locking/sharding model and
``benchmarks/bench_fleet.py`` / ``benchmarks/bench_fleet_mp.py`` for
the throughput numbers.
"""

from .compute import COMPUTE_SPEC, compute_fleet
from .fleet import (
    SLOT_STRIDE,
    DeviceSession,
    Fleet,
    LatencyBus,
    fleet_layout,
    map_fleet_device,
    resolve_strategy,
    session_weight,
)
from .mp import DEFAULT_AUTO_BATCH, ProcessFleet, ProcessSession
from .pool import WorkerError, WorkerPool
from .requests import (
    CHURN_OPS,
    CPU_REQUESTS,
    MIXED_REQUESTS,
    decode_request,
    encode_request,
    ide_data_probe,
    ide_sector_checksum,
    ide_sector_read,
    ide_sector_read_lba,
    ide_sector_read_txn,
    ide_taskfile_churn,
    ne2000_ring_poll,
    pm2_fill_rect,
    request_label,
    wedged_request,
)
from .scheduler import (
    DETERMINISTIC_POLICIES,
    SCHEDULERS,
    LeastLoadedScheduler,
    RoundRobinScheduler,
    Scheduler,
    WeightedRoundRobinScheduler,
)
from .select import (
    BackendChoice,
    KindProfile,
    auto_fleet,
    batch_size_for,
    calibrate,
    decide,
)
from .shm import (
    DEFAULT_RING_BYTES,
    HEARTBEAT_SLOT_BYTES,
    MIN_RING_BYTES,
    HeartbeatSlot,
    ShmRing,
)
from .stress import (
    STRESS_BACKENDS,
    fingerprint,
    fleet_fingerprint,
    mixed_schedule,
    run_stress,
)

__all__ = [
    "COMPUTE_SPEC",
    "compute_fleet",
    "SLOT_STRIDE",
    "DeviceSession",
    "Fleet",
    "LatencyBus",
    "ProcessFleet",
    "ProcessSession",
    "fleet_layout",
    "map_fleet_device",
    "resolve_strategy",
    "session_weight",
    "WorkerError",
    "WorkerPool",
    "CHURN_OPS",
    "CPU_REQUESTS",
    "MIXED_REQUESTS",
    "decode_request",
    "encode_request",
    "ide_data_probe",
    "ide_sector_checksum",
    "ide_sector_read",
    "ide_sector_read_lba",
    "ide_sector_read_txn",
    "ide_taskfile_churn",
    "ne2000_ring_poll",
    "pm2_fill_rect",
    "request_label",
    "wedged_request",
    "BackendChoice",
    "KindProfile",
    "auto_fleet",
    "batch_size_for",
    "calibrate",
    "decide",
    "DEFAULT_AUTO_BATCH",
    "DEFAULT_RING_BYTES",
    "HEARTBEAT_SLOT_BYTES",
    "HeartbeatSlot",
    "MIN_RING_BYTES",
    "ShmRing",
    "STRESS_BACKENDS",
    "DETERMINISTIC_POLICIES",
    "SCHEDULERS",
    "LeastLoadedScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "WeightedRoundRobinScheduler",
    "fingerprint",
    "fleet_fingerprint",
    "mixed_schedule",
    "run_stress",
]
