"""Adaptive backend selection: measure the workload, pick the engine.

The fleet engine has two substrates with opposite failure modes: the
thread backend (:class:`~repro.engine.fleet.Fleet`) serializes on the
GIL exactly when requests compute, and the process backend
(:class:`~repro.engine.mp.ProcessFleet`) pays an IPC toll exactly when
requests are tiny.  Which one wins is a property of the *workload* —
the CPU fraction of a request, its wall-clock duration, and how many
CPUs the host actually has — all of which are measurable in a few
milliseconds.  This module does the measuring.

:func:`calibrate` runs a short burst of each distinct request kind
against a private single-device machine (same mapping, same strategy,
same latency model as the target fleet — and never the fleet itself,
so calibration cannot perturb exactness) and records wall time
(``perf_counter``) against CPU time (``process_time``).  A sleeping
I/O stall shows up as wall ≫ CPU; a checksum loop shows up as
wall ≈ CPU.

:func:`decide` turns the profiles plus ``os.cpu_count()`` into a
:class:`BackendChoice`:

* one CPU → threads (worker processes would only take turns);
* GIL-bound mix (CPU fraction ≥ ½) on a multi-CPU host → processes;
* I/O-bound mix → processes *if* batching can amortize the IPC cost
  to a few percent of a request's duration (the batch size is computed
  from that budget), else threads.

:func:`auto_fleet` glues it together and is what ``Fleet.auto(...)``
and ``devil fleet --backend auto`` call.  The choice rides along on
the returned fleet as ``fleet.choice`` so callers (and the CLI) can
report what was picked and why.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field

from .requests import encode_request, request_label

#: Measured cost of one request-sized ``multiprocessing.Queue``
#: round-trip (pickle + pipe + wakeup) on commodity hardware; the
#: denominator of the batching amortization.
IPC_COST_S = 120e-6

#: Amortized IPC may cost at most this fraction of a request's wall
#: time before the process backend stops being worth it.
IPC_BUDGET_FRACTION = 0.05

#: A request mix whose CPU fraction reaches this is GIL-bound: the
#: thread backend cannot overlap it no matter how many workers.
CPU_BOUND_THRESHOLD = 0.5

#: Batch-size clamp: past this, sync latency and buffering outweigh
#: the marginal IPC savings.
MAX_BATCH = 64

#: Default calibration depth per request kind.
CALIBRATION_ROUNDS = 4

#: Wall-clock budget for one kind's calibration burst, seconds; the
#: burst stops early rather than blow this (slow latency models).
CALIBRATION_BUDGET_S = 0.25


@dataclass(frozen=True)
class KindProfile:
    """Measured cost of one distinct ``(spec, request)`` kind."""

    spec: str
    request: str
    #: How many times this kind appears in the calibrated schedule.
    count: int
    #: Mean wall-clock seconds per request.
    wall_s: float
    #: Mean CPU seconds per request.
    cpu_s: float

    @property
    def cpu_fraction(self) -> float:
        """CPU share of wall time, clamped to [0, 1]."""
        if self.wall_s <= 0:
            return 1.0
        return min(1.0, self.cpu_s / self.wall_s)


@dataclass(frozen=True)
class BackendChoice:
    """The selector's verdict, with its inputs kept for reporting."""

    backend: str  # "thread" | "process"
    batch_size: int
    cpu_count: int
    #: Schedule-weighted mean CPU fraction across kinds.
    cpu_fraction: float
    #: Schedule-weighted mean wall seconds per request.
    wall_s: float
    reason: str
    profiles: tuple = field(default=())


def batch_size_for(wall_s: float,
                   ipc_cost_s: float = IPC_COST_S,
                   budget: float = IPC_BUDGET_FRACTION) -> int:
    """Smallest batch that amortizes IPC to ``budget`` of a request.

    ``ceil(ipc / (budget * wall))`` clamped to ``[1, MAX_BATCH]``; a
    request slower than the whole IPC budget needs no batching at all,
    a microsecond request hits the clamp.
    """
    if wall_s <= 0:
        return MAX_BATCH
    needed = ipc_cost_s / (budget * wall_s)
    # Tolerance keeps float fuzz at exact ratios from rounding up.
    return max(1, min(MAX_BATCH, math.ceil(needed - 1e-9)))


def calibrate(schedule, *, strategy: str = "specialize",
              shadow_cache: bool = False,
              op_latency_us: float = 0.0,
              word_latency_us: float = 0.0,
              rounds: int = CALIBRATION_ROUNDS,
              budget_s: float = CALIBRATION_BUDGET_S) -> list[KindProfile]:
    """Profile each distinct request kind of ``schedule``.

    Each kind runs ``rounds`` times (stopping early at ``budget_s``)
    against a throwaway one-device machine built with the same
    strategy and latency model the target fleet would use.  Requests
    must be shippable (:func:`~repro.engine.requests.encode_request`
    validates them here, so an unshippable request fails before any
    fleet exists) and are assumed idempotent on device state — true of
    every shipped workload and request.
    """
    from ..obs.workloads import bind_stubs
    from .fleet import SLOT_STRIDE, map_fleet_device

    kinds: dict = {}
    for spec, request in schedule:
        key = (spec, encode_request(request))
        entry = kinds.get(key)
        if entry is None:
            kinds[key] = [spec, request, 1]
        else:
            entry[2] += 1

    profiles = []
    for spec, request, count in kinds.values():
        bus = _calibration_bus(op_latency_us, word_latency_us)
        aux, bases = map_fleet_device(bus, spec, SLOT_STRIDE,
                                      f"cal-{spec}")
        stubs = bind_stubs(spec, strategy, bus, bases,
                           shadow_cache=shadow_cache)
        # One warm-up pass: specializer closures, shadow priming.
        request(stubs, aux)
        executed = 0
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        for _ in range(max(1, rounds)):
            request(stubs, aux)
            executed += 1
            if time.perf_counter() - wall_start >= budget_s:
                break
        wall = time.perf_counter() - wall_start
        cpu = time.process_time() - cpu_start
        profiles.append(KindProfile(
            spec=spec, request=request_label(request), count=count,
            wall_s=wall / executed, cpu_s=cpu / executed))
    return profiles


def _calibration_bus(op_latency_us: float, word_latency_us: float):
    from ..bus import ThreadSafeBus
    from .fleet import LatencyBus

    if op_latency_us or word_latency_us:
        return LatencyBus(op_latency_us=op_latency_us,
                          word_latency_us=word_latency_us)
    return ThreadSafeBus()


def decide(profiles, cpu_count: int | None = None,
           workers: int = 4,
           strategy: str = "specialize") -> BackendChoice:
    """Pick a backend and batch size from measured kind profiles.

    ``strategy`` is the *resolved* bind strategy of the fleet being
    chosen for.  It matters for exactly one verdict: a CPU-bound mix
    that would normally force the process backend can instead stay on
    threads when the strategy is ``"native"``, because the compiled
    dispatch core releases the GIL for the whole batched entry frame —
    N thread workers overlap in C without paying the IPC toll at all.
    """
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    if not profiles:
        return BackendChoice(
            backend="thread", batch_size=1, cpu_count=cpu_count,
            cpu_fraction=0.0, wall_s=0.0,
            reason="empty schedule: nothing to measure, threads are "
                   "the zero-overhead default")
    total = sum(p.count for p in profiles)
    wall = sum(p.wall_s * p.count for p in profiles) / total
    cpu = sum(p.cpu_s * p.count for p in profiles) / total
    fraction = min(1.0, cpu / wall) if wall > 0 else 1.0
    batch = batch_size_for(wall)
    if cpu_count <= 1:
        choice, batch = "thread", 1
        reason = (f"{cpu_count} CPU: worker processes would only "
                  f"take turns; threads avoid the IPC toll entirely")
    elif fraction >= CPU_BOUND_THRESHOLD and strategy == "native":
        choice, batch = "thread", 1
        reason = (f"CPU fraction {fraction:.2f} ≥ "
                  f"{CPU_BOUND_THRESHOLD} but strategy='native' "
                  f"releases the GIL around batched C dispatch: "
                  f"threads overlap in-process without the IPC toll")
    elif fraction >= CPU_BOUND_THRESHOLD:
        choice = "process"
        reason = (f"CPU fraction {fraction:.2f} ≥ "
                  f"{CPU_BOUND_THRESHOLD}: the mix is GIL-bound and "
                  f"only processes can overlap it "
                  f"(batch={batch} amortizes IPC)")
    elif IPC_COST_S / batch <= IPC_BUDGET_FRACTION * wall:
        choice = "process"
        reason = (f"I/O-bound mix ({fraction:.2f} CPU) but batch="
                  f"{batch} amortizes IPC below "
                  f"{IPC_BUDGET_FRACTION:.0%} of a "
                  f"{wall * 1e6:.0f}µs request; processes sidestep "
                  f"GIL'd per-op bookkeeping")
    else:
        choice, batch = "thread", 1
        reason = (f"requests too cheap ({wall * 1e6:.0f}µs) to "
                  f"amortize IPC even at batch={MAX_BATCH}; threads "
                  f"overlap the I/O fine")
    return BackendChoice(
        backend=choice, batch_size=batch, cpu_count=cpu_count,
        cpu_fraction=fraction, wall_s=wall, reason=reason,
        profiles=tuple(profiles))


def auto_fleet(devices, schedule, *, workers: int = 4,
               cpu_count: int | None = None, **fleet_kwargs):
    """Calibrate against ``schedule``, build the winning backend.

    ``fleet_kwargs`` pass through to the chosen fleet class; the ones
    that shape request cost (``strategy``, ``shadow_cache``,
    ``op_latency_us``, ``word_latency_us``) also shape calibration.
    The returned fleet carries the verdict as ``fleet.choice``.
    """
    from .fleet import Fleet, resolve_strategy
    from .mp import ProcessFleet

    # Resolve "auto" before calibration so the throwaway calibration
    # machine binds the same way the fleet will, and so the verdict
    # can account for the native core's GIL release.
    shadow_cache = fleet_kwargs.get("shadow_cache", False)
    strategy = resolve_strategy(
        fleet_kwargs.get("strategy", "specialize"), shadow_cache)
    fleet_kwargs["strategy"] = strategy
    profiles = calibrate(
        schedule,
        strategy=strategy,
        shadow_cache=shadow_cache,
        op_latency_us=fleet_kwargs.get("op_latency_us", 0.0),
        word_latency_us=fleet_kwargs.get("word_latency_us", 0.0))
    choice = decide(profiles, cpu_count=cpu_count, workers=workers,
                    strategy=strategy)
    if choice.backend == "process":
        fleet = ProcessFleet(devices, workers=workers,
                             batch_size=choice.batch_size,
                             **fleet_kwargs)
    else:
        fleet = Fleet(devices, workers=workers, **fleet_kwargs)
    fleet.choice = choice
    return fleet
