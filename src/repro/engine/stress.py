"""Exactness instruments: state fingerprints and the parallel-vs-serial
stress harness.

The fleet engine's correctness claim is not "no crashes" but *lost
nothing, tore nothing*: a parallel run must produce byte-identical
device state and byte-identical accounting to the same requests run on
one worker.  The helpers here make that comparison mechanical:

* :func:`fingerprint` normalizes any device model (nested objects,
  bytearrays, dataclasses) into hashable plain data so two models can
  be compared field-for-field.
* :func:`run_stress` runs one request list twice — parallel and
  single-worker reference — and asserts both invariants, returning the
  evidence for the caller (tests, the CLI, the benchmark's stress leg).

Requests must be deterministic and idempotent on device state (the
shipped ones in :mod:`repro.engine.requests` are) and the fleet must
use the ``round-robin`` policy, whose submit-time assignment makes the
request → device mapping independent of worker timing.
"""

from __future__ import annotations

from .fleet import Fleet
from .requests import MIXED_REQUESTS

#: ``backend=`` choices of :func:`run_stress`; resolved lazily so the
#: thread path never imports multiprocessing machinery.
STRESS_BACKENDS = ("thread", "process")


def fingerprint(value, _seen: set | None = None):
    """Normalize a device model graph into comparable plain data."""
    if isinstance(value, (bool, int, float, str, bytes, type(None))):
        return value
    if isinstance(value, bytearray):
        return bytes(value)
    if _seen is None:
        _seen = set()
    marker = id(value)
    if marker in _seen:
        return "<cycle>"
    _seen.add(marker)
    try:
        if isinstance(value, dict):
            return tuple(sorted(
                (str(key), fingerprint(item, _seen))
                for key, item in value.items()))
        if isinstance(value, (list, tuple)):
            return tuple(fingerprint(item, _seen) for item in value)
        if isinstance(value, (set, frozenset)):
            return tuple(sorted(repr(fingerprint(item, _seen))
                                for item in value))
        if hasattr(value, "__dict__"):
            return (type(value).__name__,) + tuple(sorted(
                (attr, fingerprint(item, _seen))
                for attr, item in vars(value).items()
                if not callable(item)))
        return repr(value)
    finally:
        _seen.discard(marker)


def fleet_fingerprint(fleet: Fleet):
    """Fingerprint of every device model in the fleet, by label."""
    return tuple(
        (session.label, fingerprint(session.aux))
        for session in fleet.sessions)


def _stress_evidence(fleet, backend: str) -> dict:
    """The comparable evidence of one finished stress run.

    ``states`` (byte-comparable per-mapping snapshots) and
    ``accounting`` exist on both backends; the deep model
    ``fingerprint`` needs in-process access to the device models, so
    only the thread backend provides it (the process backend's models
    live in the workers — their pickled states stand in for them).
    """
    if backend == "process":
        return {"accounting": fleet.accounting,
                "states": fleet.device_states(),
                "fingerprint": None,
                "trace_dropped": fleet.trace_dropped,
                "trace_len": len(fleet.trace)}
    return {"accounting": fleet.accounting.snapshot(),
            "states": fleet.device_states(),
            "fingerprint": fleet_fingerprint(fleet),
            "trace_dropped": fleet.bus.trace_dropped,
            "trace_len": len(fleet.bus.trace)}


def run_stress(devices, schedule, workers: int = 8,
               strategy: str = "specialize",
               shadow_cache: bool = False,
               reference=None, backend: str = "thread",
               tracing: bool = False, **fleet_kwargs):
    """Run ``schedule`` (a list of ``(spec, request)``) twice: with
    ``workers`` workers on ``backend`` and with one thread (the serial
    reference), and assert exact equivalence — byte-equal per-mapping
    end-state, equal merged accounting, and (thread backend) equal
    deep model fingerprints.

    With ``tracing=True`` both runs also assert that no trace entries
    were dropped (the unbounded ring must capture every port op).
    Extra ``fleet_kwargs`` (``batch_size``, ``ring_bytes``,
    ``telemetry``, ...) reach the parallel fleet only — the reference
    stays the canonical single-threaded run.  ``telemetry=True`` is
    how the live-plane parity tests prove heartbeats, latency
    histograms and the flight recorder never perturb device state.

    Returns the reference evidence — pass it back as ``reference`` on
    a later call to amortize the serial run across repeated stress
    iterations.
    """
    if backend not in STRESS_BACKENDS:
        raise ValueError(
            f"unknown stress backend {backend!r} "
            f"(have: {', '.join(STRESS_BACKENDS)})")
    if backend == "process":
        from .mp import ProcessFleet
        fleet_cls = ProcessFleet
    else:
        fleet_cls = Fleet
    with fleet_cls(devices, strategy=strategy, workers=workers,
                   policy="round-robin", shadow_cache=shadow_cache,
                   tracing=tracing, **fleet_kwargs) as fleet:
        fleet.run(schedule)
        parallel = _stress_evidence(fleet, backend)
        completed = fleet.completed()

    if completed != len(schedule):
        raise AssertionError(
            f"fleet completed {completed} of {len(schedule)} requests")

    if reference is None:
        with Fleet(devices, strategy=strategy, workers=1,
                   policy="round-robin", shadow_cache=shadow_cache,
                   tracing=tracing) as fleet:
            fleet.run(schedule)
            reference = _stress_evidence(fleet, "thread")

    if parallel["accounting"] != reference["accounting"]:
        raise AssertionError(
            "parallel accounting diverged from the serial reference:\n"
            f"  parallel: {parallel['accounting']}\n"
            f"  serial:   {reference['accounting']}")
    if parallel["states"] != reference["states"]:
        torn = sorted(
            name for name in reference["states"]
            if parallel["states"].get(name) != reference["states"][name])
        raise AssertionError(
            f"device state diverged from the serial reference on: {torn}")
    if parallel["fingerprint"] is not None \
            and reference["fingerprint"] is not None \
            and parallel["fingerprint"] != reference["fingerprint"]:
        torn = [label for (label, fp), (_, ref_fp)
                in zip(parallel["fingerprint"], reference["fingerprint"])
                if fp != ref_fp]
        raise AssertionError(
            f"device models diverged from the serial reference on: {torn}")
    if tracing:
        for side, evidence in (("parallel", parallel),
                               ("serial", reference)):
            if evidence["trace_dropped"]:
                raise AssertionError(
                    f"{side} run dropped "
                    f"{evidence['trace_dropped']} trace entries")
            if not evidence["trace_len"]:
                raise AssertionError(
                    f"{side} run produced an empty trace under "
                    f"tracing=True")
    return reference


def mixed_schedule(requests_per_spec: int,
                   specs=("ide", "permedia2", "ne2000")) -> list:
    """The benchmark's interleaved schedule over the mixed fleet."""
    schedule = []
    for _ in range(requests_per_spec):
        for spec in specs:
            schedule.append((spec, MIXED_REQUESTS[spec]))
    return schedule
