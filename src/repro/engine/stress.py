"""Exactness instruments: state fingerprints and the parallel-vs-serial
stress harness.

The fleet engine's correctness claim is not "no crashes" but *lost
nothing, tore nothing*: a parallel run must produce byte-identical
device state and byte-identical accounting to the same requests run on
one worker.  The helpers here make that comparison mechanical:

* :func:`fingerprint` normalizes any device model (nested objects,
  bytearrays, dataclasses) into hashable plain data so two models can
  be compared field-for-field.
* :func:`run_stress` runs one request list twice — parallel and
  single-worker reference — and asserts both invariants, returning the
  evidence for the caller (tests, the CLI, the benchmark's stress leg).

Requests must be deterministic and idempotent on device state (the
shipped ones in :mod:`repro.engine.requests` are) and the fleet must
use the ``round-robin`` policy, whose submit-time assignment makes the
request → device mapping independent of worker timing.
"""

from __future__ import annotations

from .fleet import Fleet
from .requests import MIXED_REQUESTS


def fingerprint(value, _seen: set | None = None):
    """Normalize a device model graph into comparable plain data."""
    if isinstance(value, (bool, int, float, str, bytes, type(None))):
        return value
    if isinstance(value, bytearray):
        return bytes(value)
    if _seen is None:
        _seen = set()
    marker = id(value)
    if marker in _seen:
        return "<cycle>"
    _seen.add(marker)
    try:
        if isinstance(value, dict):
            return tuple(sorted(
                (str(key), fingerprint(item, _seen))
                for key, item in value.items()))
        if isinstance(value, (list, tuple)):
            return tuple(fingerprint(item, _seen) for item in value)
        if isinstance(value, (set, frozenset)):
            return tuple(sorted(repr(fingerprint(item, _seen))
                                for item in value))
        if hasattr(value, "__dict__"):
            return (type(value).__name__,) + tuple(sorted(
                (attr, fingerprint(item, _seen))
                for attr, item in vars(value).items()
                if not callable(item)))
        return repr(value)
    finally:
        _seen.discard(marker)


def fleet_fingerprint(fleet: Fleet):
    """Fingerprint of every device model in the fleet, by label."""
    return tuple(
        (session.label, fingerprint(session.aux))
        for session in fleet.sessions)


def run_stress(devices, schedule, workers: int = 8,
               strategy: str = "specialize",
               shadow_cache: bool = False,
               reference=None):
    """Run ``schedule`` (a list of ``(spec, request)``) twice: with
    ``workers`` workers and with one, and assert exact equivalence.

    Returns ``(accounting snapshot, fleet fingerprint)`` — also usable
    as the ``reference`` of a later call to amortize the serial run
    across repeated stress iterations.
    """
    with Fleet(devices, strategy=strategy, workers=workers,
               policy="round-robin",
               shadow_cache=shadow_cache) as fleet:
        fleet.run(schedule)
        parallel_accounting = fleet.accounting.snapshot()
        parallel_state = fleet_fingerprint(fleet)
        completed = fleet.completed()

    if completed != len(schedule):
        raise AssertionError(
            f"fleet completed {completed} of {len(schedule)} requests")

    if reference is None:
        with Fleet(devices, strategy=strategy, workers=1,
                   policy="round-robin",
                   shadow_cache=shadow_cache) as fleet:
            fleet.run(schedule)
            reference = (fleet.accounting.snapshot(),
                         fleet_fingerprint(fleet))

    serial_accounting, serial_state = reference
    if parallel_accounting != serial_accounting:
        raise AssertionError(
            "parallel accounting diverged from the serial reference:\n"
            f"  parallel: {parallel_accounting}\n"
            f"  serial:   {serial_accounting}")
    if parallel_state != serial_state:
        torn = [label for (label, fp), (_, ref_fp)
                in zip(parallel_state, serial_state) if fp != ref_fp]
        raise AssertionError(
            f"device state diverged from the serial reference on: {torn}")
    return reference


def mixed_schedule(requests_per_spec: int,
                   specs=("ide", "permedia2", "ne2000")) -> list:
    """The benchmark's interleaved schedule over the mixed fleet."""
    schedule = []
    for _ in range(requests_per_spec):
        for spec in specs:
            schedule.append((spec, MIXED_REQUESTS[spec]))
    return schedule
