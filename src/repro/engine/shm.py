"""Shared-memory result rings for the process fleet.

The process backend's reply channel used to carry every sync report —
accounting shards, pickled device states, trace rings, span buffers —
through a ``multiprocessing.Queue``, i.e. through one more pickle *and*
a pipe write per payload.  :class:`ShmRing` moves the bulk payloads
into a ``multiprocessing.shared_memory`` segment instead: the worker
appends framed records as it produces them, the parent drains them
exactly at sync points, and the queue is left carrying only small
completion records (a few integers and an offset).

Design: one single-producer/single-consumer byte ring per worker.

* **Offsets are monotonic and travel out of band.**  The producer's
  ``written`` offset rides in the worker's sync report; the consumer's
  ``consumed`` offset rides back in an ``ack`` message on the request
  queue.  No counters live in the shared segment itself, so there is no
  cross-process atomicity to get wrong — each side trusts only numbers
  it received through a FIFO queue, which Python already serializes.
* **Records are framed pickles.**  ``u32 length + payload`` wrapping
  byte-wise modulo the capacity.  :meth:`put` refuses (returns
  ``False``) rather than overwrite unconsumed data; the caller spills
  the record to its fallback channel (the queue), so a too-small ring
  degrades to PR-5 behaviour instead of corrupting anything.
* **Reclamation is lazy.**  ``free`` space is computed against the last
  *acknowledged* consumed offset.  The parent acks after every drain;
  until the ack arrives the worker simply spills.  Exactness never
  depends on the ring having room.

The ring is an mmap under the hood, so a record's bytes are written
exactly once (worker-side pickle) and read exactly once (parent-side
unpickle) — no queue-feeder thread, no second serialization.
"""

from __future__ import annotations

import pickle
import struct

_LENGTH = struct.Struct(">I")

#: Default ring capacity per worker.  Sized for the shipped workloads:
#: a sync report for a few devices (states + trace + spans) is tens of
#: kilobytes; 1 MiB absorbs traced runs without spilling.
DEFAULT_RING_BYTES = 1 << 20

#: Smallest ring worth creating; below this the framing overhead and
#: spill churn outweigh the queue bytes saved.
MIN_RING_BYTES = 4096


def create_ring_memory(capacity: int = DEFAULT_RING_BYTES):
    """Allocate the shared segment (parent side); returns SharedMemory."""
    from multiprocessing import shared_memory

    if capacity < MIN_RING_BYTES:
        raise ValueError(
            f"ring capacity {capacity} is below the minimum "
            f"{MIN_RING_BYTES} (use ring_bytes=0 to disable the ring)")
    return shared_memory.SharedMemory(create=True, size=capacity)


def attach_ring_memory(name: str):
    """Attach to an existing segment by name (worker side)."""
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


class ShmRing:
    """One side of a single-producer/single-consumer byte ring.

    The producer calls :meth:`put` and :meth:`ack`; the consumer calls
    :meth:`read_to`.  Both sides keep their own monotonic offsets and
    exchange them through the fleet's FIFO queues — see the module
    docstring for why the segment itself holds no shared state.
    """

    def __init__(self, memory):
        self.memory = memory
        self.capacity = memory.size
        #: Producer: bytes appended so far (monotonic).
        self.written = 0
        #: Producer: consumer offset as of the last ack (monotonic).
        self.acked = 0
        #: Consumer: bytes consumed so far (monotonic).
        self.consumed = 0

    # -- producer -------------------------------------------------------

    @property
    def free(self) -> int:
        return self.capacity - (self.written - self.acked)

    def put(self, record) -> bool:
        """Append one framed record; ``False`` when it does not fit.

        A ``False`` return leaves the ring untouched — the caller ships
        the record through its fallback channel instead.
        """
        payload = pickle.dumps(record, protocol=4)
        needed = _LENGTH.size + len(payload)
        if needed > self.free:
            return False
        self._write_bytes(_LENGTH.pack(len(payload)))
        self._write_bytes(payload)
        return True

    def ack(self, consumed: int) -> None:
        """The consumer reported having drained up to ``consumed``."""
        if consumed > self.acked:
            self.acked = consumed

    def _write_bytes(self, data: bytes) -> None:
        position = self.written % self.capacity
        first = min(len(data), self.capacity - position)
        self.memory.buf[position:position + first] = data[:first]
        if first < len(data):
            self.memory.buf[0:len(data) - first] = data[first:]
        self.written += len(data)

    # -- consumer -------------------------------------------------------

    def read_to(self, target: int) -> list:
        """Unframe every record between ``consumed`` and ``target``.

        ``target`` is the producer's ``written`` offset as carried by
        its sync report; queue FIFO ordering guarantees every byte up
        to it was fully written before the report was sent.
        """
        records = []
        while self.consumed < target:
            (length,) = _LENGTH.unpack(self._read_bytes(_LENGTH.size))
            records.append(pickle.loads(self._read_bytes(length)))
        if self.consumed != target:
            raise RuntimeError(
                f"ring framing desynchronized: consumed "
                f"{self.consumed}, producer reported {target}")
        return records

    def _read_bytes(self, count: int) -> bytes:
        position = self.consumed % self.capacity
        first = min(count, self.capacity - position)
        data = bytes(self.memory.buf[position:position + first])
        if first < count:
            data += bytes(self.memory.buf[0:count - first])
        self.consumed += count
        return data

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self.memory.close()

    def unlink(self) -> None:
        try:
            self.memory.unlink()
        except FileNotFoundError:  # already reclaimed
            pass


# ---------------------------------------------------------------------------
# Heartbeat slots (live telemetry)
# ---------------------------------------------------------------------------

_SEQ = struct.Struct(">II")  # sequence number, payload length

#: Heartbeat records are a dozen small fields; 4 KiB leaves an order of
#: magnitude of headroom over any observed pickle.
HEARTBEAT_SLOT_BYTES = 4096


class HeartbeatSlot:
    """A single-writer latest-value slot in shared memory.

    The result ring above is drain-at-sync by design — the parent only
    learns the producer's ``written`` offset from a sync report, so
    nothing in it is readable *between* syncs.  Heartbeats need the
    opposite semantics: the parent must read the worker's most recent
    state at any moment, and old values are worthless.  A seqlock-style
    slot gives exactly that with no locks and no queues:

    * the writer bumps the sequence number to **odd**, writes the
      framed pickle, then bumps it to **even**;
    * the reader snapshots the sequence, copies the payload, re-reads
      the sequence, and retries (bounded) unless both reads saw the
      same even value — a torn frame can never be unpickled.

    Single-producer only, same as :class:`ShmRing`.  Publishing is two
    struct packs and one small pickle (~2µs), cheap enough to ride
    every request boundary.
    """

    def __init__(self, memory):
        self.memory = memory
        self._sequence = 0

    # -- writer ---------------------------------------------------------

    def publish(self, record) -> None:
        payload = pickle.dumps(record, protocol=4)
        if _SEQ.size + len(payload) > self.memory.size:
            raise ValueError(
                f"heartbeat record ({len(payload)} bytes) exceeds the "
                f"slot capacity {self.memory.size}")
        buf = self.memory.buf
        self._sequence += 1
        _SEQ.pack_into(buf, 0, self._sequence, len(payload))
        buf[_SEQ.size:_SEQ.size + len(payload)] = payload
        self._sequence += 1
        _SEQ.pack_into(buf, 0, self._sequence, len(payload))

    # -- reader ---------------------------------------------------------

    def read(self, retries: int = 8):
        """The latest published record, or ``None`` if nothing yet.

        Returns ``None`` rather than blocking when every retry catches
        the writer mid-publish — the caller keeps its previous view and
        samples again next tick.
        """
        buf = self.memory.buf
        for _ in range(retries):
            sequence, length = _SEQ.unpack_from(buf, 0)
            if sequence == 0:
                return None
            if sequence % 2:
                continue  # mid-publish
            payload = bytes(buf[_SEQ.size:_SEQ.size + length])
            again, _ = _SEQ.unpack_from(buf, 0)
            if again == sequence:
                return pickle.loads(payload)
        return None

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self.memory.close()

    def unlink(self) -> None:
        try:
            self.memory.unlink()
        except FileNotFoundError:  # already reclaimed
            pass


def create_heartbeat_memory(capacity: int = HEARTBEAT_SLOT_BYTES):
    """Allocate a heartbeat slot segment (parent side)."""
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(create=True, size=capacity)
