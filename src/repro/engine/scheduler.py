"""Dispatch policies: which device of a fleet serves the next request.

A request names a *spec* ("ide", "permedia2", ...), not a device; the
scheduler picks one of the fleet's sessions for that spec.  Three
policies ship:

``round-robin``
    Rotate through the spec's sessions in order.  Deterministic and
    cheap; under uniform request cost it is also optimal.

``weighted-round-robin``
    Smooth weighted rotation (the nginx algorithm): each session
    carries an integer ``weight`` and receives that fraction of the
    spec's requests, interleaved as evenly as possible (weights 3:1:1
    yield A A B A C, not A A A B C).  Like plain round-robin the pick
    is a pure function of submission order — independent of worker
    timing — so weighted fleets stay pinnable in the golden gate and
    usable by the process backend.

``least-loaded``
    Pick the session with the fewest requests currently queued or
    executing.  Better when request costs are skewed (a 256-word IDE
    sector read next to a 3-op ring poll): slow devices stop absorbing
    their fair share of new work while idle devices starve.  The price
    is determinism: the pick depends on when earlier requests finish,
    so it is excluded from golden pinning and from the process backend.

Policies in :data:`DETERMINISTIC_POLICIES` guarantee that the request →
device assignment depends only on submission order.  All policies keep
their bookkeeping (rotation cursor, smooth-WRR credit, outstanding
counters) under one small scheduler lock.  The lock is held only for
the pick itself — never while a request executes — so it is not a
serialization point for device I/O.
"""

from __future__ import annotations

import threading


class Scheduler:
    """Base: owns the spec → sessions index and the policy lock."""

    def __init__(self, sessions):
        self._lock = threading.Lock()
        self._by_spec: dict[str, list] = {}
        for session in sessions:
            self._by_spec.setdefault(session.spec, []).append(session)

    def specs(self) -> list[str]:
        return sorted(self._by_spec)

    def _candidates(self, spec: str) -> list:
        sessions = self._by_spec.get(spec)
        if not sessions:
            raise KeyError(
                f"fleet has no device for spec {spec!r} "
                f"(available: {', '.join(self.specs()) or 'none'})")
        return sessions

    def acquire(self, spec: str):
        """Pick a session for one request against ``spec``."""
        raise NotImplementedError

    def release(self, session) -> None:
        """The request handed out by :meth:`acquire` finished."""


class RoundRobinScheduler(Scheduler):
    """Rotate through each spec's sessions in mapping order."""

    def __init__(self, sessions):
        super().__init__(sessions)
        self._cursor = {spec: 0 for spec in self._by_spec}

    def acquire(self, spec: str):
        sessions = self._candidates(spec)
        with self._lock:
            index = self._cursor[spec]
            self._cursor[spec] = (index + 1) % len(sessions)
        return sessions[index]


class WeightedRoundRobinScheduler(Scheduler):
    """Smooth weighted round-robin over each spec's sessions.

    Classic smooth-WRR: every pick adds each candidate's weight to its
    credit, chooses the highest credit (ties break by mapping order —
    ``max`` keeps the first maximum), then debits the chosen session by
    the spec's total weight.  With equal weights this degenerates to
    plain round-robin; with skewed weights the schedule interleaves
    (3:1 gives A A B A, never A A A B).  Session weights come from the
    ``weight`` attribute (default 1, see :class:`~.fleet.DeviceSession`
    and ``Fleet(weights=...)``).
    """

    def __init__(self, sessions):
        super().__init__(sessions)
        self._credit = {id(s): 0 for spec_sessions
                        in self._by_spec.values()
                        for s in spec_sessions}
        self._totals = {
            spec: sum(self._weight(s) for s in spec_sessions)
            for spec, spec_sessions in self._by_spec.items()}
        for spec, total in self._totals.items():
            if total < 1:
                raise ValueError(
                    f"spec {spec!r} has non-positive total weight {total}")

    @staticmethod
    def _weight(session) -> int:
        return getattr(session, "weight", 1)

    def acquire(self, spec: str):
        sessions = self._candidates(spec)
        with self._lock:
            credit = self._credit
            for session in sessions:
                credit[id(session)] += self._weight(session)
            chosen = max(sessions, key=lambda s: credit[id(s)])
            credit[id(chosen)] -= self._totals[spec]
        return chosen


class LeastLoadedScheduler(Scheduler):
    """Pick the session with the fewest outstanding requests.

    ``outstanding`` counts requests from acquire to release, i.e. both
    queued-behind-the-session-lock and currently executing.  Ties break
    by mapping order, which keeps single-threaded runs deterministic.
    """

    def __init__(self, sessions):
        super().__init__(sessions)
        self._outstanding = {id(s): 0 for spec_sessions
                             in self._by_spec.values()
                             for s in spec_sessions}

    def acquire(self, spec: str):
        sessions = self._candidates(spec)
        with self._lock:
            chosen = min(sessions,
                         key=lambda s: self._outstanding[id(s)])
            self._outstanding[id(chosen)] += 1
        return chosen

    def release(self, session) -> None:
        with self._lock:
            self._outstanding[id(session)] -= 1


#: name -> class, for the CLI and the benchmark harness.
SCHEDULERS = {
    "round-robin": RoundRobinScheduler,
    "weighted-round-robin": WeightedRoundRobinScheduler,
    "least-loaded": LeastLoadedScheduler,
}

#: Policies whose request → device assignment is a pure function of
#: submission order.  Only these are pinnable in the golden gate and
#: usable by the process backend (which must shard at submit time).
DETERMINISTIC_POLICIES = ("round-robin", "weighted-round-robin")
