"""The device fleet: N simulated devices behind one concurrent engine.

A :class:`Fleet` instantiates any mix of shipped specifications on one
shared :class:`~repro.bus.ThreadSafeBus`, each device in its own
``0x1000``-aligned port slot, and binds one set of Devil stubs per
device under any of the three execution strategies.  Requests —
callables shaped exactly like the shipped workloads, ``fn(stubs,
aux)`` — are routed by a scheduling policy to a per-device
:class:`DeviceSession` and executed by a bounded worker pool.

Concurrency model (see ``docs/CONCURRENCY.md``):

* **Sessions are exclusive.**  Each device has exactly one session, and
  the session lock is held for the whole request.  Everything above the
  bus — the runtime's register cache, shadow cache, transaction
  context, the specializer's closures — therefore needs no internal
  locking, and the single-device hot path stays the lock-free
  straight-line code that the single-threaded benchmarks measure.
* **The bus is shared.**  Cross-device safety lives in
  :class:`~repro.bus.ThreadSafeBus`: per-device mapping locks, sharded
  accounting merged on read, a locked trace ring.
* **Scheduling is deterministic at submit time.**  ``submit`` picks the
  session in the producer thread, so under ``round-robin`` the request
  → device assignment is a pure function of submission order — the
  property the exactness stress tests and golden pinning rely on.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..bus import ThreadSafeBus
from ..devices.busmouse import REGION_SIZE as MOUSE_REGION
from ..devices.busmouse import BusmouseModel
from ..devices.cs4236 import REGION_SIZE as CS_REGION
from ..devices.cs4236 import Cs4236Model
from ..devices.dma8237 import REGION_SIZE as DMA_REGION
from ..devices.dma8237 import Dma8237Model
from ..devices.ide import REGION_SIZE as IDE_REGION
from ..devices.ide import IdeControlPort, IdeDiskModel
from ..devices.ne2000 import REGION_SIZE as NE_REGION
from ..devices.ne2000 import (
    Ne2000DataPort,
    Ne2000Model,
    Ne2000ResetPort,
)
from ..devices.permedia2 import REGION_SIZE as PM2_REGION
from ..devices.permedia2 import Permedia2Aperture, Permedia2Model
from ..devices.pic8259 import REGION_SIZE as PIC_REGION
from ..devices.pic8259 import Pic8259Model
from ..devices.piix4 import REGION_SIZE as BM_REGION
from ..devices.piix4 import Piix4Model
from .pool import WorkerPool
from .scheduler import SCHEDULERS

#: Port-space stride between fleet devices.  Every shipped spec's
#: regions fit comfortably below it (largest footprint: permedia2 with
#: its framebuffer aperture at slot+0x800).
SLOT_STRIDE = 0x1000

#: A fleet request: same shape as the shipped workload drivers.
Request = Callable[[object, dict], object]


def fleet_layout(devices) -> list[tuple[str, str, int]]:
    """``(spec, label, slot)`` for each device of a fleet composition.

    The single source of truth for fleet naming and port placement,
    shared by the thread backend (:class:`Fleet`) and the process
    backend (:class:`~repro.engine.mp.ProcessFleet`): both assign
    ``<spec><instance>`` labels and ``(index + 1) * SLOT_STRIDE`` slots
    from the *global* device list, so a device lands on the same ports
    and mapping names no matter which backend (or worker process) owns
    it — the property every cross-backend parity check keys on.
    """
    layout: list[tuple[str, str, int]] = []
    counts: dict[str, int] = {}
    for index, name in enumerate(devices):
        counts[name] = counts.get(name, 0) + 1
        label = f"{name}{counts[name] - 1}"
        layout.append((name, label, (index + 1) * SLOT_STRIDE))
    return layout


def session_weight(weights, label: str, spec: str) -> int:
    """Resolve one session's scheduling weight.

    ``weights`` maps device *labels* (``"ide0"``) or whole *specs*
    (``"ide"``) to positive integers; labels win over specs, absent
    entries default to 1.
    """
    if not weights:
        return 1
    weight = weights.get(label, weights.get(spec, 1))
    if not isinstance(weight, int) or weight < 1:
        raise ValueError(
            f"weight for {label!r} must be a positive integer, "
            f"got {weight!r}")
    return weight


class LatencyBus(ThreadSafeBus):
    """A thread-safe bus that charges wall-clock time per operation.

    Models the fixed cost of a port transaction (ISA ``inb`` ≈ 1µs;
    PCI posted writes far less) with ``time.sleep``, which releases the
    GIL — so, exactly like real programmed I/O stalling one core,
    latency on one device overlaps with work on others.  Block
    transfers charge one setup latency plus a (much smaller) per-word
    latency rather than a full op per word, mirroring REP INSW against
    a ready FIFO.

    The sleep happens *before* the per-device lock is taken: it models
    the bus transaction itself, not device-side processing, so two
    requests against different devices overlap their stalls fully.
    """

    def __init__(self, op_latency_us: float = 0.0,
                 word_latency_us: float = 0.0, **kwargs):
        self._op_latency = op_latency_us * 1e-6
        self._word_latency = word_latency_us * 1e-6
        super().__init__(**kwargs)

    def read(self, port: int, width: int = 8) -> int:
        if self._op_latency:
            time.sleep(self._op_latency)
        return super().read(port, width)

    def write(self, value: int, port: int, width: int = 8) -> None:
        if self._op_latency:
            time.sleep(self._op_latency)
        super().write(value, port, width)

    def block_read(self, port: int, count: int,
                   width: int = 16) -> list[int]:
        if self._op_latency:
            time.sleep(self._op_latency + count * self._word_latency)
        return super().block_read(port, count, width)

    def block_write(self, port: int, values, width: int = 16) -> int:
        values = list(values)
        if self._op_latency:
            time.sleep(self._op_latency + len(values) * self._word_latency)
        return super().block_write(port, values, width)


def map_fleet_device(bus, name: str, slot: int, label: str):
    """Map one instance of spec ``name`` into ``bus`` at base ``slot``.

    Returns ``(aux, bases)`` with the same shapes as
    :func:`repro.obs.workloads.build_machine`, so every shipped
    workload and transactional workload runs unmodified against a fleet
    device.  Auxiliary models get the same deterministic seeding as the
    single-device machines (the parity suites compare final state).
    """
    if name == "busmouse":
        mouse = BusmouseModel()
        mouse.move(5, -3)
        mouse.set_buttons(0b101)
        bus.map_device(slot, MOUSE_REGION, mouse, label)
        return {"mouse": mouse}, {"base": slot}
    if name == "dma8237":
        dma = Dma8237Model()
        bus.map_device(slot, DMA_REGION, dma, label)
        return {"dma": dma}, {"base": slot}
    if name == "pic8259":
        pic = Pic8259Model()
        bus.map_device(slot, PIC_REGION, pic, label)
        return {"pic": pic}, {"base": slot}
    if name == "ne2000":
        nic = Ne2000Model()
        bus.map_device(slot, NE_REGION, nic, label)
        bus.map_device(slot + 0x10, 2, Ne2000DataPort(nic),
                       f"{label}-data")
        bus.map_device(slot + 0x1F, 1, Ne2000ResetPort(nic),
                       f"{label}-reset")
        return {"nic": nic}, \
            {"base": slot, "data": slot + 0x10, "rst": slot + 0x1F}
    if name == "cs4236":
        chip = Cs4236Model()
        bus.map_device(slot, CS_REGION, chip, label)
        return {"chip": chip}, {"base": slot}
    if name == "ide":
        disk = IdeDiskModel(total_sectors=16)
        for index in range(0, len(disk.store), 3):
            disk.store[index] = (index * 7) & 0xFF
        bus.map_device(slot, IDE_REGION, disk, label)
        bus.map_device(slot + 0x200, 1, IdeControlPort(disk),
                       f"{label}-ctrl")
        return {"disk": disk}, \
            {"cmd": slot, "data": slot, "data32": slot,
             "ctrl": slot + 0x200}
    if name == "piix4":
        disk = IdeDiskModel(total_sectors=16)
        memory = bytearray(1 << 16)
        busmaster = Piix4Model(disk, memory)
        bus.map_device(slot, BM_REGION, busmaster, label)
        return {"busmaster": busmaster, "memory": memory}, \
            {"io": slot, "dtp": slot + 4}
    if name == "permedia2":
        gpu = Permedia2Model(width=64, height=48)
        bus.map_device(slot, PM2_REGION, gpu, label)
        bus.map_device(slot + 0x800, 1, Permedia2Aperture(gpu),
                       f"{label}-fb")
        return {"gpu": gpu}, {"regs": slot, "fb": slot + 0x800}
    raise ValueError(f"no fleet mapping for spec {name!r}")


@dataclass
class DeviceSession:
    """One fleet device: its stubs, models, and the exclusive lock.

    The lock serializes requests against this device.  While it is
    held the session owns the whole Devil runtime stack for the device
    (register cache, shadow cache, transaction context), which is why
    none of those layers needs locks of its own.
    """

    label: str
    spec: str
    slot: int
    stubs: object
    aux: dict
    bases: dict
    #: Scheduling weight for ``weighted-round-robin`` (1 = plain share).
    weight: int = 1
    lock: threading.Lock = field(default_factory=threading.Lock)
    completed: int = 0

    def execute(self, request: Request):
        with self.lock:
            result = request(self.stubs, self.aux)
            self.completed += 1
            return result


def resolve_strategy(strategy: str, shadow_cache: bool = False) -> str:
    """Resolve ``strategy="auto"`` once per fleet, not once per bind.

    Mirrors the auto rule of ``CompiledSpec.bind`` (native when a C
    compiler is present, else the specializer; the shadow cache is a
    specializer-family feature the native binding rejects).  The
    compiler probe itself is memoized per process, and resolving here
    means every per-device bind takes the already-decided branch — one
    probe total for a whole fleet on either backend.
    """
    if strategy != "auto":
        return strategy
    if shadow_cache:
        return "specialize"
    from ..devil.native import native_available

    return "native" if native_available() else "specialize"


class Fleet:
    """N shipped devices, one thread-safe bus, a scheduled worker pool.

    ``devices`` is a list of spec names, repeats meaning multiple
    instances (``["ide", "ide", "ne2000"]``).  Requests are submitted
    per spec and the policy picks which instance serves each one.

    Use as a context manager, or call :meth:`shutdown` explicitly::

        with Fleet(["ide"] * 4, workers=4) as fleet:
            for _ in range(100):
                fleet.submit("ide", ide_sector_read)
            fleet.drain()
        print(fleet.accounting.total_ops)
    """

    backend = "thread"

    def __init__(self, devices, strategy: str = "specialize",
                 policy: str = "round-robin", workers: int = 4,
                 queue_depth: int = 64, shadow_cache: bool = False,
                 tracing: bool = False, trace_limit: int | None = None,
                 op_latency_us: float = 0.0,
                 word_latency_us: float = 0.0,
                 weights: dict | None = None,
                 telemetry=None):
        from ..obs.workloads import bind_stubs

        if not devices:
            raise ValueError("a fleet needs at least one device")
        if policy not in SCHEDULERS:
            raise ValueError(
                f"unknown policy {policy!r} "
                f"(have: {', '.join(sorted(SCHEDULERS))})")
        strategy = resolve_strategy(strategy, shadow_cache)
        self.strategy = strategy
        self.policy = policy
        if op_latency_us or word_latency_us:
            self.bus = LatencyBus(op_latency_us=op_latency_us,
                                  word_latency_us=word_latency_us,
                                  tracing=tracing,
                                  trace_limit=trace_limit)
        else:
            self.bus = ThreadSafeBus(tracing=tracing,
                                     trace_limit=trace_limit)
        self.sessions: list[DeviceSession] = []
        for name, label, slot in fleet_layout(devices):
            aux, bases = map_fleet_device(self.bus, name, slot, label)
            stubs = bind_stubs(name, strategy, self.bus, bases,
                               shadow_cache=shadow_cache)
            self.sessions.append(DeviceSession(
                label=label, spec=name, slot=slot,
                stubs=stubs, aux=aux, bases=bases,
                weight=session_weight(weights, label, name)))
        self.scheduler = SCHEDULERS[policy](self.sessions)
        self.pool = WorkerPool(workers, queue_depth=queue_depth)
        self.submitted = 0
        #: Live telemetry plane (``None`` = off; ``True`` builds one).
        #: Kept entirely off the request path: an untelemetered submit
        #: pays a single ``is None`` test.
        if telemetry is True:
            from ..obs.live import FleetTelemetry

            telemetry = FleetTelemetry()
        self.telemetry = telemetry or None
        self._health = None

    # -- request flow ---------------------------------------------------

    def submit(self, spec: str, request: Request) -> None:
        """Route one request to a device of ``spec`` and enqueue it.

        The session is picked *here*, in the caller's thread, so the
        request → device assignment depends only on submission order,
        not on worker timing.  Blocks when the queue is full.
        """
        session = self.scheduler.acquire(spec)
        scheduler = self.scheduler
        telemetry = self.telemetry

        if telemetry is None:
            def work():
                try:
                    session.execute(request)
                finally:
                    scheduler.release(session)
        else:
            from .requests import request_label

            label = request_label(request)
            submitted_at = time.perf_counter()
            telemetry.note_submit("thread", spec, session.label, label)

            def work():
                worker = threading.current_thread().name
                telemetry.request_begin(worker, "thread", label)
                error = None
                try:
                    session.execute(request)
                except BaseException as exc:
                    error = exc
                    raise
                finally:
                    scheduler.release(session)
                    telemetry.request_done(worker, "thread", spec,
                                           submitted_at, error)

        self.pool.submit(work)
        self.submitted += 1

    def submit_batch(self, requests) -> int:
        """Submit every ``(spec, request)`` pair; returns the count.

        API parity with the process backend's batched submit: threads
        share an address space, so there is no transport to batch and
        this is exactly N :meth:`submit` calls — same placement, same
        backpressure.
        """
        count = 0
        for spec, request in requests:
            self.submit(spec, request)
            count += 1
        return count

    @staticmethod
    def auto(devices, schedule, *, workers: int = 4,
             cpu_count: int | None = None, **fleet_kwargs):
        """Measure ``schedule`` and build whichever backend wins.

        Delegates to :func:`repro.engine.select.auto_fleet`: a short
        calibration burst profiles the request mix (CPU vs sleeping
        I/O), and the verdict — thread fleet, or process fleet with a
        computed batch size — comes back as ``fleet.choice``.
        """
        from .select import auto_fleet

        return auto_fleet(devices, schedule, workers=workers,
                          cpu_count=cpu_count, **fleet_kwargs)

    def run(self, requests) -> int:
        """Submit every ``(spec, request)`` pair, then drain the pool."""
        count = 0
        for spec, request in requests:
            self.submit(spec, request)
            count += 1
        self.drain()
        return count

    def drain(self) -> None:
        """Wait until every submitted request finished; re-raise errors."""
        try:
            self.pool.drain()
        except BaseException as exc:
            if self.telemetry is not None:
                self.telemetry.recorder.record("drain",
                                               error=repr(exc))
                self.telemetry.dump("drain-error")
            raise
        if self.telemetry is not None:
            self.telemetry.recorder.record("drain",
                                           submitted=self.submitted)

    def shutdown(self) -> None:
        self.pool.shutdown()

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.pool.__exit__(exc_type, exc, tb)

    # -- inspection -----------------------------------------------------

    @property
    def accounting(self):
        """Merged I/O accounting across every device (see bus docs)."""
        return self.bus.accounting

    def accounting_by_device(self):
        return self.bus.accounting_by_device()

    def device_states(self) -> dict[str, bytes]:
        """Byte-comparable per-mapping end-state (see bus seam docs).

        Only sound after :meth:`drain` — like every exactness check.
        """
        return self.bus.state_snapshot()

    def completed_by_device(self) -> dict[str, int]:
        """``label -> completed request count`` (the placement record)."""
        return {session.label: session.completed
                for session in self.sessions}

    def sessions_of(self, spec: str) -> list[DeviceSession]:
        return [s for s in self.sessions if s.spec == spec]

    def completed(self) -> int:
        return sum(session.completed for session in self.sessions)

    # -- live telemetry plumbing ----------------------------------------

    def worker_liveness(self) -> dict[str, bool]:
        """``worker name -> is it still running`` (health's "dead")."""
        return {thread.name: thread.is_alive()
                for thread in self.pool._threads}

    def queue_depths(self) -> dict[str, int | None]:
        """Pending-work depth per worker (threads share one queue)."""
        depth = self.pool._queue.qsize()
        return {thread.name: depth for thread in self.pool._threads}

    def batch_occupancy(self) -> dict[str, int]:
        """Batch-buffer occupancy (always 0: threads have no transport)."""
        return {thread.name: 0 for thread in self.pool._threads}

    def health_view(self, **kwargs):
        """The :class:`repro.obs.live.FleetHealth` view of this fleet.

        Built on first call (keyword arguments configure the stall
        detector then); later calls return the same instance so status
        transitions are tracked consistently.
        """
        if self._health is None:
            from ..obs.live import FleetHealth

            self._health = FleetHealth(self, **kwargs)
        return self._health
