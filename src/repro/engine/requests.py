"""Canonical fleet requests: the mixed workload of the benchmarks.

Each request has the shipped-workload shape ``fn(stubs, aux)`` and is
deliberately *idempotent on device state*: running it N times against
one device leaves that device in the same final state regardless of
which other (idempotent) requests interleaved on *other* devices.
That property lets the stress suite compare a parallel run against a
single-worker reference run request-for-request.

The mix mirrors a small machine under real load:

* :func:`ide_sector_read` — a one-sector PIO read: coalesced command
  block programming, status poll, a 256-word block-in.  Heavy on block
  words; the latency model makes it the slow request of the mix.
* :func:`pm2_fill_rect` — a Permedia2 FILL_RECT primitive: packed
  register writes, render trigger, busy poll.  Write-heavy, short.
* :func:`ne2000_ring_poll` — the NE2000 receive-ring service loop's
  idle branch: read ISR bits, boundary, current page.  Read-heavy,
  shortest; volatile registers defeat the shadow cache, as they must.
"""

from __future__ import annotations


def ide_sector_read(stubs, aux):
    """Program a 1-sector LBA read of sector 2 and drain the data FIFO."""
    stubs.set_irq_disabled(True)
    stubs.set_lba_mode(True)
    stubs.set_drive("MASTER")
    stubs.set_head(0)
    stubs.set_sector_count(1)
    stubs.set_lba_low(2)
    stubs.set_lba_mid(0)
    stubs.set_lba_high(0)
    stubs.set_command("READ_SECTORS")
    if stubs.get_ide_err():
        raise RuntimeError("IDE device reported an error")
    data = stubs.read_ide_data_block(256)
    stubs.get_alt_status()
    return data


def ide_sector_read_txn(stubs, aux):
    """The same sector read with the command block in one transaction."""
    with stubs.txn():
        stubs.set_irq_disabled(True)
        stubs.set_lba_mode(True)
        stubs.set_drive("MASTER")
        stubs.set_head(0)
        stubs.set_sector_count(1)
        stubs.set_lba_low(2)
        stubs.set_lba_mid(0)
        stubs.set_lba_high(0)
    stubs.set_command("READ_SECTORS")
    if stubs.get_ide_err():
        raise RuntimeError("IDE device reported an error")
    data = stubs.read_ide_data_block(256)
    stubs.get_alt_status()
    return data


def pm2_fill_rect(stubs, aux):
    """Queue one FILL_RECT primitive and poll it to completion."""
    stubs.set_pixel_depth("BPP8")
    stubs.set_fb_write_mask(0xFFFFFFFF)
    stubs.set_block_color(0x55)
    stubs.set_rect_x(2)
    stubs.set_rect_y(3)
    stubs.set_rect_width(8)
    stubs.set_rect_height(4)
    stubs.set_render("FILL_RECT")
    busy = stubs.get_graphics_busy()
    overflow = stubs.get_fifo_overflow()
    return busy, overflow


def ne2000_ring_poll(stubs, aux):
    """One pass of the receive-ring service loop's polling branch."""
    received = stubs.get_packet_received()
    errored = stubs.get_receive_error()
    overwrite = stubs.get_overwrite_warning()
    boundary = stubs.get_boundary()
    current = stubs.get_current_page()
    return received, errored, overwrite, boundary, current


#: The benchmark's mixed fleet: ``spec -> request``.
MIXED_REQUESTS = {
    "ide": ide_sector_read,
    "permedia2": pm2_fill_rect,
    "ne2000": ne2000_ring_poll,
}
