"""Canonical fleet requests: the mixed workload of the benchmarks.

Each request has the shipped-workload shape ``fn(stubs, aux)`` and is
deliberately *idempotent on device state*: running it N times against
one device leaves that device in the same final state regardless of
which other (idempotent) requests interleaved on *other* devices.
That property lets the stress suite compare a parallel run against a
single-worker reference run request-for-request.

The mix mirrors a small machine under real load:

* :func:`ide_sector_read` — a one-sector PIO read: coalesced command
  block programming, status poll, a 256-word block-in.  Heavy on block
  words; the latency model makes it the slow request of the mix.
* :func:`pm2_fill_rect` — a Permedia2 FILL_RECT primitive: packed
  register writes, render trigger, busy poll.  Write-heavy, short.
* :func:`ne2000_ring_poll` — the NE2000 receive-ring service loop's
  idle branch: read ISR bits, boundary, current page.  Read-heavy,
  shortest; volatile registers defeat the shadow cache, as they must.
* :func:`ide_sector_checksum` — the CPU-bound outlier: one sector read
  followed by a pure-Python rolling checksum over the data.  Threads
  serialize it on the GIL; the process backend is what makes it scale.

Request codec
-------------

The process backend ships requests to worker processes by *reference*,
not by value: :func:`encode_request` turns a module-level request
callable into a ``"package.module:qualname"`` token and
:func:`decode_request` resolves it back on the other side.
:class:`functools.partial` over a module-level callable is also
accepted — the base function travels by reference, the bound
arguments by value (they must pickle).  Encoding validates eagerly in
the submitting process — a lambda, closure, instance method or a
partial with unpicklable arguments fails at ``submit`` time with a
clear error instead of poisoning a worker — and guarantees the token
round-trips to the *same* function object (an equivalent partial), so
both backends execute identical code.
"""

from __future__ import annotations

import functools
import importlib
import pickle
import time


def ide_sector_read(stubs, aux):
    """Program a 1-sector LBA read of sector 2 and drain the data FIFO."""
    stubs.set_irq_disabled(True)
    stubs.set_lba_mode(True)
    stubs.set_drive("MASTER")
    stubs.set_head(0)
    stubs.set_sector_count(1)
    stubs.set_lba_low(2)
    stubs.set_lba_mid(0)
    stubs.set_lba_high(0)
    stubs.set_command("READ_SECTORS")
    if stubs.get_ide_err():
        raise RuntimeError("IDE device reported an error")
    data = stubs.read_ide_data_block(256)
    stubs.get_alt_status()
    return data


def ide_sector_read_txn(stubs, aux):
    """The same sector read with the command block in one transaction."""
    with stubs.txn():
        stubs.set_irq_disabled(True)
        stubs.set_lba_mode(True)
        stubs.set_drive("MASTER")
        stubs.set_head(0)
        stubs.set_sector_count(1)
        stubs.set_lba_low(2)
        stubs.set_lba_mid(0)
        stubs.set_lba_high(0)
    stubs.set_command("READ_SECTORS")
    if stubs.get_ide_err():
        raise RuntimeError("IDE device reported an error")
    data = stubs.read_ide_data_block(256)
    stubs.get_alt_status()
    return data


def pm2_fill_rect(stubs, aux):
    """Queue one FILL_RECT primitive and poll it to completion."""
    stubs.set_pixel_depth("BPP8")
    stubs.set_fb_write_mask(0xFFFFFFFF)
    stubs.set_block_color(0x55)
    stubs.set_rect_x(2)
    stubs.set_rect_y(3)
    stubs.set_rect_width(8)
    stubs.set_rect_height(4)
    stubs.set_render("FILL_RECT")
    busy = stubs.get_graphics_busy()
    overflow = stubs.get_fifo_overflow()
    return busy, overflow


def ne2000_ring_poll(stubs, aux):
    """One pass of the receive-ring service loop's polling branch."""
    received = stubs.get_packet_received()
    errored = stubs.get_receive_error()
    overwrite = stubs.get_overwrite_warning()
    boundary = stubs.get_boundary()
    current = stubs.get_current_page()
    return received, errored, overwrite, boundary, current


def ide_sector_read_lba(stubs, aux, lba=2):
    """A parameterized 1-sector read: ``functools.partial`` over this
    callable ships to worker processes (see :func:`encode_request`)."""
    stubs.set_irq_disabled(True)
    stubs.set_lba_mode(True)
    stubs.set_drive("MASTER")
    stubs.set_head(0)
    stubs.set_sector_count(1)
    stubs.set_lba_low(lba)
    stubs.set_lba_mid(0)
    stubs.set_lba_high(0)
    stubs.set_command("READ_SECTORS")
    if stubs.get_ide_err():
        raise RuntimeError("IDE device reported an error")
    data = stubs.read_ide_data_block(256)
    stubs.get_alt_status()
    return data


#: Pure-Python work factor of :func:`ide_sector_checksum`; chosen so
#: one request costs a few milliseconds of GIL-holding compute —
#: enough to dwarf the IPC cost of shipping the request to a process.
CHECKSUM_ROUNDS = 80


def ide_sector_checksum(stubs, aux):
    """Read one sector, then checksum it in pure Python (CPU-bound).

    The bus traffic is identical to :func:`ide_sector_read`; the
    checksum loop after it holds the GIL for its whole duration, so a
    thread fleet cannot overlap two of these no matter how many
    workers it has.  This is the request the multiprocessing backend
    exists for.
    """
    data = ide_sector_read(stubs, aux)
    accumulator = 0
    for _ in range(CHECKSUM_ROUNDS):
        for word in data:
            accumulator = (accumulator * 31 + word) & 0xFFFFFFFF
    return accumulator


#: Dispatch depth of :func:`ide_taskfile_churn`: enough single-register
#: writes that per-op crossing cost (Python bytecode + ctypes + GIL
#: traffic) dominates the request, which is exactly what the native
#: core's batched ``repeat()`` dispatch is built to collapse.
CHURN_OPS = 8192


def ide_taskfile_churn(stubs, aux, n=CHURN_OPS):
    """Hammer one 8-bit taskfile register ``n`` times (CPU-bound dispatch).

    The request is pure dispatch overhead by design: no data transfer,
    no latency model stalls, just ``n`` writes of the same value to
    ``lba_low``.  On interpret/specialize stubs each write is a full
    Python round trip holding the GIL; on native stubs the whole run
    collapses into one C call via ``repeat()`` that *releases* the GIL,
    so N thread-fleet workers overlap in real parallel.  Both paths
    produce identical bus traffic (``n`` 8-bit writes of 2), so every
    parity pin — accounting, traces, end state — stays byte-exact
    across strategies.
    """
    repeat = getattr(stubs, "repeat", None)
    if repeat is not None:
        repeat("set_lba_low", n, 2)
    else:
        for _ in range(n):
            stubs.set_lba_low(2)
    return n


def ide_data_probe(stubs, aux):
    """Read the IDE data FIFO without arming a transfer (always faults).

    DRQ is clear, so the device model rejects the read; the request
    exists to prove mid-batch error propagation: a process worker
    executing a batch must surface the failure as a
    :class:`~repro.engine.mp.WorkerError` carrying the device's message
    and keep serving later batches.
    """
    return stubs.read_ide_data_block(8)


def wedged_request(stubs, aux, seconds=2.0):
    """Deliberately wedge the executing worker for ``seconds``.

    Fault injection for the live telemetry plane: the request touches
    no device state (so it perturbs no parity check) but blocks inside
    the worker long enough for :class:`repro.obs.live.FleetHealth` to
    flag the worker ``stalled`` — it cannot heartbeat while stuck in
    user code, which is exactly the signal the detector keys on.
    Module-level so ``functools.partial(wedged_request, seconds=...)``
    ships to process workers through the request codec.
    """
    time.sleep(seconds)
    return seconds


#: The benchmark's mixed fleet: ``spec -> request``.
MIXED_REQUESTS = {
    "ide": ide_sector_read,
    "permedia2": pm2_fill_rect,
    "ne2000": ne2000_ring_poll,
}

#: The CPU-bound mix: every request is GIL-dominated compute.
CPU_REQUESTS = {
    "ide": ide_sector_checksum,
}


# ---------------------------------------------------------------------------
# Picklable request codec (the process backend's wire format)
# ---------------------------------------------------------------------------


def encode_request(request):
    """``module-level callable -> "package.module:qualname"`` token.

    A :class:`functools.partial` over a module-level callable encodes
    as ``("partial", base_token, pickled (args, kwargs))`` — the bound
    arguments travel by value, so they must pickle; anything else
    (unpicklable arguments, a lambda under the partial) fails *here*,
    in the submitting process, with a clear error instead of poisoning
    a worker.  Both forms round-trip through :func:`decode_request` at
    encode time, so a token that encodes is guaranteed to decode to an
    equivalent callable in any process that can import this package.
    Raises :class:`ValueError` for anything else that cannot be
    resolved by import on the worker side: lambdas, nested functions,
    bound methods.
    """
    if isinstance(request, functools.partial):
        return _encode_partial(request)
    module = getattr(request, "__module__", None)
    qualname = getattr(request, "__qualname__", None)
    if not module or not qualname:
        raise ValueError(
            f"request {request!r} is not a named module-level "
            f"callable and cannot be shipped to a worker process")
    if "<locals>" in qualname or "<lambda>" in qualname:
        raise ValueError(
            f"request {qualname!r} is a lambda or nested function; "
            f"the process backend needs a module-level callable "
            f"(define it at the top of a module, like the requests in "
            f"repro.engine.requests)")
    token = f"{module}:{qualname}"
    resolved = decode_request(token)
    if resolved is not request:
        raise ValueError(
            f"request token {token!r} resolves to {resolved!r}, not "
            f"the submitted callable — submit the module-level "
            f"function itself, not a wrapper")
    return token


def _encode_partial(request: functools.partial):
    """``("partial", base_token, args_blob)`` for a partial request.

    ``functools.partial`` flattens nested partials at construction, so
    ``request.func`` is always the base callable — which must itself
    encode (i.e. be module-level).
    """
    base_token = encode_request(request.func)
    if not isinstance(base_token, str):  # a partial of a partial object
        raise ValueError(
            f"request {request!r} wraps a non-function callable; "
            f"ship functools.partial over a module-level function")
    try:
        args_blob = pickle.dumps(
            (request.args, dict(request.keywords)), protocol=4)
    except Exception as exc:
        raise ValueError(
            f"functools.partial arguments for "
            f"{base_token!r} are not picklable and cannot be shipped "
            f"to a worker process: {exc!r}") from exc
    token = ("partial", base_token, args_blob)
    resolved = decode_request(token)
    if resolved.func is not request.func \
            or resolved.args != request.args \
            or resolved.keywords != dict(request.keywords):
        raise ValueError(
            f"partial token for {base_token!r} did not round-trip; "
            f"bound arguments must pickle to equal values")
    return token


def decode_request(token):
    """Inverse of :func:`encode_request` (importing as needed)."""
    if isinstance(token, tuple):
        if len(token) != 3 or token[0] != "partial":
            raise ValueError(f"malformed request token {token!r}")
        _, base_token, args_blob = token
        base = decode_request(base_token)
        try:
            args, kwargs = pickle.loads(args_blob)
        except Exception as exc:
            raise ValueError(
                f"partial token for {base_token!r} carries an "
                f"unreadable argument payload: {exc!r}") from exc
        return functools.partial(base, *args, **kwargs)
    module_name, _, qualname = token.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed request token {token!r}")
    try:
        target = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as exc:
        raise ValueError(
            f"request token {token!r} does not resolve: {exc}") from exc
    if not callable(target):
        raise ValueError(f"request token {token!r} names "
                         f"non-callable {target!r}")
    return target


def request_label(request) -> str:
    """Human-readable name for a request callable (partial-aware)."""
    if isinstance(request, functools.partial):
        bound = [repr(a) for a in request.args]
        bound += [f"{k}={v!r}" for k, v in request.keywords.items()]
        return (f"{request_label(request.func)}"
                f"({', '.join(bound)})")
    return getattr(request, "__name__", repr(request))
