"""Shipped Devil specifications.

The paper's authors planned a public-domain library of Devil
specifications for common PC devices; this package is that library for
the reproduction.  Each ``.devil`` file is a complete specification
accepted by the checker, covering the seven device classes the paper
reports on (mouse, DMA, interrupt, Ethernet, sound, IDE disk, video).
"""

from __future__ import annotations

import importlib.resources
import threading

from ..devil.compiler import CompiledSpec, compile_spec

#: Names of every shipped specification (without the .devil suffix).
SPEC_NAMES = (
    "busmouse",
    "dma8237",
    "pic8259",
    "ne2000",
    "cs4236",
    "ide",
    "piix4",
    "permedia2",
)


def load_source(name: str) -> str:
    """Return the source text of the shipped specification ``name``."""
    resource = importlib.resources.files(__package__).joinpath(
        f"{name}.devil")
    return resource.read_text(encoding="utf-8")


_COMPILED: dict[str, CompiledSpec] = {}
_COMPILE_LOCK = threading.Lock()


def compile_shipped(name: str) -> CompiledSpec:
    """Compile the shipped specification ``name``.

    Shipped specifications never change within a process, so the result
    is memoized: every caller shares one :class:`CompiledSpec` (treat it
    as immutable).  Parsing and checking therefore happen once per spec
    per process instead of once per ``bind()`` call site.  The memo is
    thread-safe: a hit is a single dict probe, a miss compiles exactly
    once under a lock (double-checked), so concurrent fleet workers can
    never interleave cache population or observe a half-compiled spec.
    """
    spec = _COMPILED.get(name)
    if spec is None:
        with _COMPILE_LOCK:
            spec = _COMPILED.get(name)
            if spec is None:
                spec = compile_spec(load_source(name),
                                    filename=f"{name}.devil")
                _COMPILED[name] = spec
    return spec
