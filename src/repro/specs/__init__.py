"""Shipped Devil specifications.

The paper's authors planned a public-domain library of Devil
specifications for common PC devices; this package is that library for
the reproduction.  Each ``.devil`` file is a complete specification
accepted by the checker, covering the seven device classes the paper
reports on (mouse, DMA, interrupt, Ethernet, sound, IDE disk, video).
"""

from __future__ import annotations

import importlib.resources

from ..devil.compiler import CompiledSpec, compile_spec

#: Names of every shipped specification (without the .devil suffix).
SPEC_NAMES = (
    "busmouse",
    "dma8237",
    "pic8259",
    "ne2000",
    "cs4236",
    "ide",
    "piix4",
    "permedia2",
)


def load_source(name: str) -> str:
    """Return the source text of the shipped specification ``name``."""
    resource = importlib.resources.files(__package__).joinpath(
        f"{name}.devil")
    return resource.read_text(encoding="utf-8")


def compile_shipped(name: str) -> CompiledSpec:
    """Compile the shipped specification ``name``."""
    return compile_spec(load_source(name), filename=f"{name}.devil")
