"""C-resident simulated device models for the native strategy.

PR 8 made batched stub dispatch cross the Python↔C boundary once per
batch — but every port access still called back into the Python device
model, so I/O-touching batches reacquired the GIL on every operation.
This module ports the *hot register files* of the two
benchmark-dominant devices into C:

* the IDE disk (:class:`repro.devices.ide.IdeDiskModel`): taskfile
  reads/writes, the status-register IRQ-ack read, and the PIO data
  port including multi-sector block reload/commit;
* the Permedia2 (:class:`repro.devices.permedia2.Permedia2Model`):
  FIFO-modelled register writes, the rect/fill/copy render engine,
  and the linear framebuffer aperture.

The Python dataclasses stay the single source of truth for *cold*
state and rare paths — IDE command execution (``_execute``) and
device-control writes (soft reset) fall back to the Python model via a
:class:`SyncedFallback` proxy that re-syncs the mirror either way, so
DMA bookkeeping and the identify block never need a C port.

Exactness contract: every C handler reproduces the Python model's
observable semantics bit-for-bit — field update order, FIFO push
before decode, counter increments *before* an unknown-command error,
the copy-source bounds check even for empty clipped rectangles, and
the exact :class:`BusError` message strings (raised from C via
``devil_nat_fail_fmt`` → status ``DEVIL_NAT_DEVERR``).  The four-way
parity suites and the golden I/O gate hold the contract.

Mirrors share memory where possible: the IDE backing store is mapped
with ``(c_ubyte * n).from_buffer(bytearray)`` and the Permedia2
framebuffer is the numpy array's own buffer, so bulk pixel/sector data
is never copied at sync points — only scalars are.
"""

from __future__ import annotations

import ctypes
from ctypes import (
    POINTER,
    c_char,
    c_int,
    c_longlong,
    c_ubyte,
    c_uint,
    c_ulong,
    c_ulonglong,
    c_void_p,
)

from ...devices.ide import SECTOR_SIZE, IdeControlPort, IdeDiskModel
from ...devices.permedia2 import Permedia2Aperture, Permedia2Model

#: Model kinds carried in ``devil_nat_port_t.model``.
MODEL_NONE = 0
MODEL_IDE = 1
MODEL_IDE_CTRL = 2
MODEL_PM2 = 3
MODEL_PM2_FB = 4

_DIRECTION_CODE = {"": 0, "read": 1, "write": 2}
_DIRECTION_NAME = ("", "read", "write")


def model_c_source() -> str:
    """The spec-independent C model code embedded in ``--with-models``
    shims.  Everything is ``static``, so per-spec libraries each carry
    their own copy and never collide at dynamic-link time."""
    return _MODEL_C


_MODEL_C = r"""
/* ---- C-resident device models (--with-models build variant) ------ */
/* Kinds in devil_nat_port_t.model: 1 = IDE disk, 2 = IDE control,    */
/* 3 = Permedia2 registers, 4 = Permedia2 framebuffer aperture.       */

typedef struct devil_nat_ide {
    unsigned features, nsect, lba_low, lba_mid, lba_high, device;
    unsigned control;
    unsigned status, error, multiple_count;
    unsigned long long interrupts_raised;
    int irq_pending;
    int direction;             /* 0 idle, 1 read, 2 write */
    unsigned current_lba;
    long long remaining;
    unsigned block_sectors;
    unsigned long long buf_len, buf_pos;
    unsigned char *buffer;     /* scratch PIO buffer, capacity buf_cap */
    unsigned long long buf_cap;
    unsigned char *store;      /* shared with the Python bytearray */
    unsigned long long store_len;
} devil_nat_ide_t;

typedef struct devil_nat_pm2 {
    unsigned fifo_used, drain_per_poll;
    unsigned block_color, rect_x, rect_y, rect_width, rect_height;
    int copy_dx, copy_dy;
    unsigned depth_code;
    unsigned scissor_min_x, scissor_min_y;
    unsigned scissor_max_x, scissor_max_y;
    unsigned write_mask, logical_op;
    unsigned window_origin_x, window_origin_y;
    unsigned long long fb_address;
    unsigned *fb;              /* shared with the numpy framebuffer */
    unsigned fb_width, fb_height;
    unsigned long long pixels_filled, pixels_copied, bytes_touched;
    unsigned long long primitives, fifo_overflows;
} devil_nat_pm2_t;

#define DEVIL_NAT_IDE_ERR 0x01u
#define DEVIL_NAT_IDE_DRQ 0x08u

static void devil_nat_ide_irq(devil_nat_ide_t *d)
{
    d->interrupts_raised++;
    d->irq_pending = 1;
}

static void devil_nat_ide_load_read_block(devil_nat_ide_t *d)
{
    unsigned long long sectors = d->block_sectors;
    unsigned long long start, want, avail;
    if ((long long)sectors > d->remaining)
        sectors = (unsigned long long)d->remaining;
    start = (unsigned long long)d->current_lba * 512ull;
    want = sectors * 512ull;
    avail = start < d->store_len ? d->store_len - start : 0ull;
    if (want > avail)          /* mirrors the Python slice truncation */
        want = avail;
    if (want > d->buf_cap)
        want = d->buf_cap;
    memcpy(d->buffer, d->store + start, (size_t)want);
    d->buf_len = want;
    d->buf_pos = 0;
    d->current_lba += (unsigned)sectors;
    d->remaining -= (long long)sectors;
    d->status |= DEVIL_NAT_IDE_DRQ;
}

static void devil_nat_ide_open_write_block(devil_nat_ide_t *d)
{
    unsigned long long sectors = d->block_sectors;
    if ((long long)sectors > d->remaining)
        sectors = (unsigned long long)d->remaining;
    d->buf_len = sectors * 512ull;
    if (d->buf_len > d->buf_cap)
        d->buf_len = d->buf_cap;
    memset(d->buffer, 0, (size_t)d->buf_len);
    d->buf_pos = 0;
    d->status |= DEVIL_NAT_IDE_DRQ;
}

static void devil_nat_ide_commit_write_block(devil_nat_ide_t *d)
{
    unsigned long long sectors = d->buf_len / 512ull;
    unsigned long long start = (unsigned long long)d->current_lba * 512ull;
    unsigned long long n = d->buf_len;
    if (start < d->store_len) {
        if (n > d->store_len - start)
            n = d->store_len - start;
        memcpy(d->store + start, d->buffer, (size_t)n);
    }
    d->current_lba += (unsigned)sectors;
    d->remaining -= (long long)sectors;
    devil_nat_ide_irq(d);
    if (d->remaining > 0) {
        devil_nat_ide_open_write_block(d);
    } else {
        d->status &= ~DEVIL_NAT_IDE_DRQ;
        d->direction = 0;
    }
}

static unsigned devil_nat_ide_data_read(devil_nat_ide_t *d, int width)
{
    unsigned size = (unsigned)width / 8u, value = 0u, i;
    if (!(d->status & DEVIL_NAT_IDE_DRQ) || d->direction != 1)
        devil_nat_fail_fmt("data-port read without pending read DRQ");
    for (i = 0; i < size; i++)
        if (d->buf_pos + i < d->buf_len)
            value |= (unsigned)d->buffer[d->buf_pos + i] << (8u * i);
    d->buf_pos += size;
    if (d->buf_pos >= d->buf_len) {
        if (d->remaining > 0) {
            devil_nat_ide_load_read_block(d);
            devil_nat_ide_irq(d);
        } else {
            d->status &= ~DEVIL_NAT_IDE_DRQ;
            d->direction = 0;
        }
    }
    return value;
}

static void devil_nat_ide_data_write(devil_nat_ide_t *d,
                                     unsigned value, int width)
{
    unsigned size = (unsigned)width / 8u, i;
    unsigned long long end;
    if (!(d->status & DEVIL_NAT_IDE_DRQ) || d->direction != 2)
        devil_nat_fail_fmt("data-port write without pending write DRQ");
    for (i = 0; i < size; i++)
        if (d->buf_pos + i < d->buf_cap)
            d->buffer[d->buf_pos + i] =
                (unsigned char)((value >> (8u * i)) & 0xFFu);
    /* bytearray slice assignment can extend the buffer past its end */
    end = d->buf_pos + size;
    if (end > d->buf_len)
        d->buf_len = end > d->buf_cap ? d->buf_cap : end;
    d->buf_pos += size;
    if (d->buf_pos >= d->buf_len)
        devil_nat_ide_commit_write_block(d);
}

static unsigned devil_nat_ide_read(devil_nat_ide_t *d,
                                   unsigned off, int width)
{
    if (off == 0u) {
        if (width != 16 && width != 32)
            devil_nat_fail_fmt(
                "IDE data port takes 16/32-bit accesses, got %d", width);
        return devil_nat_ide_data_read(d, width);
    }
    if (width != 8)
        devil_nat_fail_fmt(
            "IDE taskfile registers are 8-bit, got %d", width);
    switch (off) {
    case 1u: return d->error;
    case 2u: return d->nsect;
    case 3u: return d->lba_low;
    case 4u: return d->lba_mid;
    case 5u: return d->lba_high;
    case 6u: return d->device;
    case 7u: d->irq_pending = 0; return d->status;
    }
    devil_nat_fail_fmt("IDE has no readable offset %u", off);
    return 0u;
}

/* Returns 1 when handled in C; 0 defers to the Python fallback.
 * Command writes (offset 7) defer: _execute() touches DMA request
 * objects and the identify block, which stay Python-side. */
static int devil_nat_ide_write(devil_nat_ide_t *d, unsigned off,
                               unsigned value, int width)
{
    if (off == 0u) {
        if (width != 16 && width != 32)
            devil_nat_fail_fmt(
                "IDE data port takes 16/32-bit accesses, got %d", width);
        devil_nat_ide_data_write(d, value, width);
        return 1;
    }
    if (off == 7u)
        return 0;
    if (width != 8)
        devil_nat_fail_fmt(
            "IDE taskfile registers are 8-bit, got %d", width);
    switch (off) {
    case 1u: d->features = value; return 1;
    case 2u: d->nsect = value; return 1;
    case 3u: d->lba_low = value; return 1;
    case 4u: d->lba_mid = value; return 1;
    case 5u: d->lba_high = value; return 1;
    case 6u: d->device = value; return 1;
    }
    devil_nat_fail_fmt("IDE has no writable offset %u", off);
    return 0;
}

static unsigned devil_nat_ide_ctrl_read(devil_nat_ide_t *d,
                                        unsigned off, int width)
{
    if (off != 0u || width != 8)
        devil_nat_fail_fmt("IDE control block is one 8-bit register");
    return d->status;    /* alternate status: no IRQ acknowledge */
}

static int devil_nat_signed16(unsigned value)
{
    return value >= 0x8000u ? (int)value - 0x10000 : (int)value;
}

static void devil_nat_pm2_clip(devil_nat_pm2_t *g,
                               long long *rx0, long long *ry0,
                               long long *rx1, long long *ry1)
{
    long long x0 = (long long)g->rect_x + g->window_origin_x;
    long long y0 = (long long)g->rect_y + g->window_origin_y;
    long long x1 = x0 + g->rect_width;
    long long y1 = y0 + g->rect_height;
    if (x0 < (long long)g->scissor_min_x) x0 = g->scissor_min_x;
    if (x0 < 0) x0 = 0;
    if (y0 < (long long)g->scissor_min_y) y0 = g->scissor_min_y;
    if (y0 < 0) y0 = 0;
    if (x1 > (long long)g->scissor_max_x) x1 = g->scissor_max_x;
    if (x1 > (long long)g->fb_width) x1 = g->fb_width;
    if (y1 > (long long)g->scissor_max_y) y1 = g->scissor_max_y;
    if (y1 > (long long)g->fb_height) y1 = g->fb_height;
    if (x1 <= x0 || y1 <= y0) {
        *rx0 = *ry0 = *rx1 = *ry1 = 0;
        return;
    }
    *rx0 = x0; *ry0 = y0; *rx1 = x1; *ry1 = y1;
}

static void devil_nat_pm2_render(devil_nat_pm2_t *g, unsigned command)
{
    static const unsigned depth_bytes[4] = {1u, 2u, 3u, 4u};
    long long x0, y0, x1, y1, r, c;
    unsigned long long pixels;
    if (command == 3u) {       /* sync: drain the FIFO */
        g->fifo_used = 0u;
        return;
    }
    devil_nat_pm2_clip(g, &x0, &y0, &x1, &y1);
    pixels = (unsigned long long)(x1 - x0) * (unsigned long long)(y1 - y0);
    /* counters move before command decode, exactly like the Python
     * model — an unknown command still costs a primitive */
    g->primitives++;
    g->bytes_touched += pixels * depth_bytes[g->depth_code & 3u];
    if (command == 1u) {       /* fill */
        for (r = y0; r < y1; r++) {
            unsigned *row = g->fb + (size_t)r * g->fb_width;
            for (c = x0; c < x1; c++)
                row[c] = g->block_color;
        }
        g->pixels_filled += pixels;
    } else if (command == 2u) {  /* copy */
        long long sx0 = x0 + g->copy_dx, sy0 = y0 + g->copy_dy;
        long long sx1 = x1 + g->copy_dx, sy1 = y1 + g->copy_dy;
        /* bounds-checked even for an empty clipped rectangle, exactly
         * like the Python model */
        if (!(0 <= sx0 && sx1 <= (long long)g->fb_width &&
              0 <= sy0 && sy1 <= (long long)g->fb_height))
            devil_nat_fail_fmt("copy source rectangle outside framebuffer");
        if (pixels) {
            /* numpy copies the source slice first; mirror with a
             * scratch buffer so overlapping rects behave identically */
            size_t row_words = (size_t)(x1 - x0);
            unsigned *tmp =
                (unsigned *)malloc((size_t)pixels * sizeof(unsigned));
            if (!tmp)
                devil_nat_fail_fmt("native copy scratch allocation failed");
            for (r = 0; r < y1 - y0; r++)
                memcpy(tmp + (size_t)r * row_words,
                       g->fb + (size_t)(sy0 + r) * g->fb_width + sx0,
                       row_words * sizeof(unsigned));
            for (r = 0; r < y1 - y0; r++)
                memcpy(g->fb + (size_t)(y0 + r) * g->fb_width + x0,
                       tmp + (size_t)r * row_words,
                       row_words * sizeof(unsigned));
            free(tmp);
        }
        g->pixels_copied += pixels;
    } else {
        devil_nat_fail_fmt("unknown render command 0b00");
    }
}

static unsigned devil_nat_pm2_read(devil_nat_pm2_t *g,
                                   unsigned off, int width)
{
    if (width != 32)
        devil_nat_fail_fmt(
            "Permedia2 registers are 32-bit, got %d", width);
    if (off == 0u) {           /* FIFO space: polling drains */
        g->fifo_used = g->fifo_used > g->drain_per_poll
            ? g->fifo_used - g->drain_per_poll : 0u;
        return 32u - g->fifo_used;
    }
    if (off == 6u)
        return g->fifo_used > 0u ? 1u : 0u;
    devil_nat_fail_fmt("Permedia2 offset %u is not readable", off);
    return 0u;
}

static int devil_nat_pm2_write(devil_nat_pm2_t *g, unsigned off,
                               unsigned value, int width)
{
    if (width != 32)
        devil_nat_fail_fmt(
            "Permedia2 registers are 32-bit, got %d", width);
    if (off < 1u || off > 13u)
        devil_nat_fail_fmt("Permedia2 offset %u is not writable", off);
    /* FIFO push happens before decode, like the Python model */
    if (g->fifo_used >= 32u) {
        g->fifo_overflows++;
        g->fifo_used = 32u;
    } else {
        g->fifo_used++;
    }
    switch (off) {
    case 1u: g->block_color = value; break;
    case 2u:
        g->rect_x = value & 0xFFFFu;
        g->rect_y = (value >> 16) & 0xFFFFu;
        break;
    case 3u:
        g->rect_width = value & 0xFFFFu;
        g->rect_height = (value >> 16) & 0xFFFFu;
        break;
    case 4u:
        g->copy_dx = devil_nat_signed16(value & 0xFFFFu);
        g->copy_dy = devil_nat_signed16((value >> 16) & 0xFFFFu);
        break;
    case 5u: devil_nat_pm2_render(g, value & 3u); break;
    case 7u: g->depth_code = value & 3u; break;
    case 8u:
        g->scissor_min_x = value & 0xFFFFu;
        g->scissor_min_y = (value >> 16) & 0xFFFFu;
        break;
    case 9u:
        g->scissor_max_x = value & 0xFFFFu;
        g->scissor_max_y = (value >> 16) & 0xFFFFu;
        break;
    case 10u: g->write_mask = value; break;
    case 11u: g->logical_op = value & 0xFu; break;
    case 12u:
        g->window_origin_x = value & 0xFFFFu;
        g->window_origin_y = (value >> 16) & 0xFFFFu;
        break;
    case 13u: g->fb_address = value; break;
    default: break;            /* offset 6: FIFO-pushed, then ignored */
    }
    return 1;
}

static unsigned devil_nat_pm2_fb_read(devil_nat_pm2_t *g,
                                      unsigned off, int width)
{
    unsigned long long index, y, x;
    if (off != 0u)
        devil_nat_fail_fmt("the aperture decodes a single address");
    if (width != 32)
        devil_nat_fail_fmt("the framebuffer aperture is 32-bit");
    index = g->fb_address;
    y = index / g->fb_width;
    x = index % g->fb_width;
    if (y >= (unsigned long long)g->fb_height)
        devil_nat_fail_fmt(
            "aperture address %llu outside framebuffer", index);
    g->fb_address = index + 1ull;
    return g->fb[(size_t)y * g->fb_width + x];
}

static int devil_nat_pm2_fb_write(devil_nat_pm2_t *g, unsigned off,
                                  unsigned value, int width)
{
    unsigned long long index, y, x;
    if (off != 0u)
        devil_nat_fail_fmt("the aperture decodes a single address");
    if (width != 32)
        devil_nat_fail_fmt("the framebuffer aperture is 32-bit");
    index = g->fb_address;
    y = index / g->fb_width;
    x = index % g->fb_width;
    if (y >= (unsigned long long)g->fb_height)
        devil_nat_fail_fmt(
            "aperture address %llu outside framebuffer", index);
    g->fb[(size_t)y * g->fb_width + x] = value;
    g->fb_address = index + 1ull;
    return 1;
}

static int devil_nat_model_in(devil_nat_port_t *m, unsigned off,
                              int width, unsigned *value)
{
    switch (m->model) {
    case 1:
        *value = devil_nat_ide_read(
            (devil_nat_ide_t *)m->mstate, off, width);
        return 1;
    case 2:
        *value = devil_nat_ide_ctrl_read(
            (devil_nat_ide_t *)m->mstate, off, width);
        return 1;
    case 3:
        *value = devil_nat_pm2_read(
            (devil_nat_pm2_t *)m->mstate, off, width);
        return 1;
    case 4:
        *value = devil_nat_pm2_fb_read(
            (devil_nat_pm2_t *)m->mstate, off, width);
        return 1;
    }
    return 0;
}

static int devil_nat_model_out(devil_nat_port_t *m, unsigned off,
                               unsigned value, int width)
{
    switch (m->model) {
    case 1:
        return devil_nat_ide_write(
            (devil_nat_ide_t *)m->mstate, off, value, width);
    case 2:
        return 0;              /* soft reset clears DMA state: Python */
    case 3:
        return devil_nat_pm2_write(
            (devil_nat_pm2_t *)m->mstate, off, value, width);
    case 4:
        return devil_nat_pm2_fb_write(
            (devil_nat_pm2_t *)m->mstate, off, value, width);
    }
    return 0;
}
/* ---- end C-resident device models -------------------------------- */
"""


class _IdeCState(ctypes.Structure):
    """ctypes mirror of ``devil_nat_ide_t`` — field-for-field."""

    _fields_ = [
        ("features", c_uint), ("nsect", c_uint), ("lba_low", c_uint),
        ("lba_mid", c_uint), ("lba_high", c_uint), ("device", c_uint),
        ("control", c_uint),
        ("status", c_uint), ("error", c_uint), ("multiple_count", c_uint),
        ("interrupts_raised", c_ulonglong),
        ("irq_pending", c_int),
        ("direction", c_int),
        ("current_lba", c_uint),
        ("remaining", c_longlong),
        ("block_sectors", c_uint),
        ("buf_len", c_ulonglong), ("buf_pos", c_ulonglong),
        ("buffer", POINTER(c_ubyte)),
        ("buf_cap", c_ulonglong),
        ("store", POINTER(c_ubyte)),
        ("store_len", c_ulonglong),
    ]


class _Pm2CState(ctypes.Structure):
    """ctypes mirror of ``devil_nat_pm2_t`` — field-for-field."""

    _fields_ = [
        ("fifo_used", c_uint), ("drain_per_poll", c_uint),
        ("block_color", c_uint),
        ("rect_x", c_uint), ("rect_y", c_uint),
        ("rect_width", c_uint), ("rect_height", c_uint),
        ("copy_dx", c_int), ("copy_dy", c_int),
        ("depth_code", c_uint),
        ("scissor_min_x", c_uint), ("scissor_min_y", c_uint),
        ("scissor_max_x", c_uint), ("scissor_max_y", c_uint),
        ("write_mask", c_uint), ("logical_op", c_uint),
        ("window_origin_x", c_uint), ("window_origin_y", c_uint),
        ("fb_address", c_ulonglong),
        ("fb", POINTER(c_uint)),
        ("fb_width", c_uint), ("fb_height", c_uint),
        ("pixels_filled", c_ulonglong), ("pixels_copied", c_ulonglong),
        ("bytes_touched", c_ulonglong),
        ("primitives", c_ulonglong), ("fifo_overflows", c_ulonglong),
    ]


def check_model_abi(lib, prefix: str) -> None:
    """Refuse a ``--with-models`` library whose C struct layouts
    disagree with the ctypes mirrors (compiler padding drift)."""
    for symbol, mirror in ((f"{prefix}_nat_ide_model_size", _IdeCState),
                           (f"{prefix}_nat_pm2_model_size", _Pm2CState)):
        probe = getattr(lib, symbol)
        probe.argtypes = []
        probe.restype = c_ulong
        compiled = probe()
        expected = ctypes.sizeof(mirror)
        if compiled != expected:
            raise RuntimeError(
                f"native model ABI mismatch: {symbol}() = {compiled}, "
                f"ctypes mirror = {expected}")


class IdeBinding:
    """Two-way scalar sync between an :class:`IdeDiskModel` and its C
    mirror.  The backing store is shared (zero-copy); the PIO buffer
    lives in a C-side scratch region sized for the largest possible
    transfer and is copied at sync points (it is small and bounded)."""

    def __init__(self, disk: IdeDiskModel):
        self.disk = disk
        self.cstate = _IdeCState()
        capacity = max(len(disk.store), SECTOR_SIZE)
        self._scratch = (c_ubyte * capacity)()
        self.cstate.buffer = self._scratch
        self.cstate.buf_cap = capacity
        self._store_obj: bytearray | None = None
        self._store_ref = None

    def _refresh_store(self) -> None:
        store = self.disk.store
        if store is self._store_obj:
            return
        self._store_obj = store
        if len(store):
            self._store_ref = (c_ubyte * len(store)).from_buffer(store)
            self.cstate.store = ctypes.cast(self._store_ref,
                                            POINTER(c_ubyte))
        else:
            self._store_ref = None
            self.cstate.store = None
        self.cstate.store_len = len(store)

    def sync_to_c(self) -> None:
        disk, s = self.disk, self.cstate
        self._refresh_store()
        s.features = disk.features
        s.nsect = disk.nsect
        s.lba_low = disk.lba_low
        s.lba_mid = disk.lba_mid
        s.lba_high = disk.lba_high
        s.device = disk.device
        s.control = disk.control
        s.status = disk.status
        s.error = disk.error
        s.multiple_count = disk.multiple_count
        s.interrupts_raised = disk.interrupts_raised
        s.irq_pending = 1 if disk.irq_pending else 0
        s.direction = _DIRECTION_CODE[disk._direction]
        s.current_lba = disk._current_lba
        s.remaining = disk._remaining
        s.block_sectors = disk._block_sectors
        buffer = disk._buffer
        length = len(buffer)
        if length > s.buf_cap:
            self._scratch = (c_ubyte * length)()
            s.buffer = self._scratch
            s.buf_cap = length
        if length:
            ctypes.memmove(self._scratch, bytes(buffer), length)
        s.buf_len = length
        s.buf_pos = disk._buffer_pos

    def sync_to_py(self) -> None:
        disk, s = self.disk, self.cstate
        disk.features = int(s.features)
        disk.nsect = int(s.nsect)
        disk.lba_low = int(s.lba_low)
        disk.lba_mid = int(s.lba_mid)
        disk.lba_high = int(s.lba_high)
        disk.device = int(s.device)
        disk.control = int(s.control)
        disk.status = int(s.status)
        disk.error = int(s.error)
        disk.multiple_count = int(s.multiple_count)
        disk.interrupts_raised = int(s.interrupts_raised)
        disk.irq_pending = bool(s.irq_pending)
        disk._direction = _DIRECTION_NAME[s.direction]
        disk._current_lba = int(s.current_lba)
        disk._remaining = int(s.remaining)
        disk._block_sectors = int(s.block_sectors)
        length = int(s.buf_len)
        disk._buffer = bytearray(
            ctypes.string_at(self._scratch, length)) if length \
            else bytearray()
        disk._buffer_pos = int(s.buf_pos)


class Pm2Binding:
    """Two-way scalar sync between a :class:`Permedia2Model` and its C
    mirror.  The framebuffer is the numpy array's own memory — fills
    and copies in C mutate the Python-visible pixels directly."""

    def __init__(self, gpu: Permedia2Model):
        self.gpu = gpu
        self.cstate = _Pm2CState()
        self._fb_obj = None

    def _refresh_framebuffer(self) -> None:
        fb = self.gpu.framebuffer
        if fb is self._fb_obj:
            return
        self._fb_obj = fb
        self.cstate.fb = fb.ctypes.data_as(POINTER(c_uint))
        self.cstate.fb_height, self.cstate.fb_width = fb.shape

    def sync_to_c(self) -> None:
        gpu, s = self.gpu, self.cstate
        self._refresh_framebuffer()
        s.fifo_used = gpu.fifo_used
        s.drain_per_poll = gpu.drain_per_poll
        s.block_color = gpu.block_color
        s.rect_x = gpu.rect_x
        s.rect_y = gpu.rect_y
        s.rect_width = gpu.rect_width
        s.rect_height = gpu.rect_height
        s.copy_dx = gpu.copy_dx
        s.copy_dy = gpu.copy_dy
        s.depth_code = gpu.depth_code
        s.scissor_min_x, s.scissor_min_y = gpu.scissor_min
        s.scissor_max_x, s.scissor_max_y = gpu.scissor_max
        s.write_mask = gpu.write_mask
        s.logical_op = gpu.logical_op
        s.window_origin_x, s.window_origin_y = gpu.window_origin
        s.fb_address = gpu.fb_address
        s.pixels_filled = gpu.pixels_filled
        s.pixels_copied = gpu.pixels_copied
        s.bytes_touched = gpu.bytes_touched
        s.primitives = gpu.primitives
        s.fifo_overflows = gpu.fifo_overflows

    def sync_to_py(self) -> None:
        gpu, s = self.gpu, self.cstate
        gpu.fifo_used = int(s.fifo_used)
        gpu.drain_per_poll = int(s.drain_per_poll)
        gpu.block_color = int(s.block_color)
        gpu.rect_x = int(s.rect_x)
        gpu.rect_y = int(s.rect_y)
        gpu.rect_width = int(s.rect_width)
        gpu.rect_height = int(s.rect_height)
        gpu.copy_dx = int(s.copy_dx)
        gpu.copy_dy = int(s.copy_dy)
        gpu.depth_code = int(s.depth_code)
        gpu.scissor_min = (int(s.scissor_min_x), int(s.scissor_min_y))
        gpu.scissor_max = (int(s.scissor_max_x), int(s.scissor_max_y))
        gpu.write_mask = int(s.write_mask)
        gpu.logical_op = int(s.logical_op)
        gpu.window_origin = (int(s.window_origin_x),
                             int(s.window_origin_y))
        gpu.fb_address = int(s.fb_address)
        gpu.pixels_filled = int(s.pixels_filled)
        gpu.pixels_copied = int(s.pixels_copied)
        gpu.bytes_touched = int(s.bytes_touched)
        gpu.primitives = int(s.primitives)
        gpu.fifo_overflows = int(s.fifo_overflows)


class SyncedFallback:
    """Raw-callback proxy for a C-modelled mapping: syncs the mirror
    back to Python, runs the real device method, and re-syncs to C —
    in a ``finally``, so the mirror stays fresh even when the Python
    path raises mid-batch."""

    __slots__ = ("binding", "device")

    def __init__(self, binding, device):
        self.binding = binding
        self.device = device

    def io_read(self, offset: int, width: int) -> int:
        self.binding.sync_to_py()
        try:
            return self.device.io_read(offset, width)
        finally:
            self.binding.sync_to_c()

    def io_write(self, offset: int, value: int, width: int) -> None:
        self.binding.sync_to_py()
        try:
            return self.device.io_write(offset, value, width)
        finally:
            self.binding.sync_to_c()


def _ide_eligible(disk: IdeDiskModel) -> bool:
    return isinstance(disk.store, bytearray)


def _pm2_eligible(gpu: Permedia2Model) -> bool:
    fb = getattr(gpu, "framebuffer", None)
    return (fb is not None
            and getattr(fb, "dtype", None) is not None
            and str(fb.dtype) == "uint32"
            and fb.flags["C_CONTIGUOUS"]
            and fb.ndim == 2
            and fb.shape == (gpu.height, gpu.width)
            and gpu.width > 0 and gpu.height > 0)


class ModelRegistry:
    """Per-native-core registry: one shared binding per underlying
    Python model, so the IDE disk and its control port (or the
    Permedia2 registers and aperture) mirror one C state block."""

    def __init__(self):
        self._bindings: dict[int, object] = {}
        self._anchors: list = []   # pin models so ids stay unique

    def _memo(self, model, factory):
        binding = self._bindings.get(id(model))
        if binding is None:
            binding = factory(model)
            self._bindings[id(model)] = binding
            self._anchors.append(model)
        return binding

    def binding_for(self, device):
        """``(kind, binding)`` when ``device`` has a C port, else
        ``None`` (the mapping stays in python-callback mode)."""
        if isinstance(device, IdeDiskModel) and _ide_eligible(device):
            return (MODEL_IDE, self._memo(device, IdeBinding))
        if isinstance(device, IdeControlPort) \
                and _ide_eligible(device.disk):
            return (MODEL_IDE_CTRL, self._memo(device.disk, IdeBinding))
        if isinstance(device, Permedia2Model) and _pm2_eligible(device):
            return (MODEL_PM2, self._memo(device, Pm2Binding))
        if isinstance(device, Permedia2Aperture) \
                and _pm2_eligible(device.gpu):
            return (MODEL_PM2_FB, self._memo(device.gpu, Pm2Binding))
        return None


__all__ = [
    "MODEL_NONE", "MODEL_IDE", "MODEL_IDE_CTRL", "MODEL_PM2",
    "MODEL_PM2_FB", "model_c_source", "check_model_abi",
    "IdeBinding", "Pm2Binding", "SyncedFallback", "ModelRegistry",
]
