"""Native execution strategy: compiled C dispatch core.

``bind(..., strategy="native")`` compiles the spec's generated C stub
header plus a small C runtime shim (port-table dispatch, mask/shift
composition, accounting counters, bounded trace ring) into a per-spec
shared library and drives it through ctypes in ABI mode.  See
:mod:`repro.devil.native.instance` for the exactness contract and
:mod:`repro.devil.native.build` for toolchain discovery and the
on-disk build cache.
"""

from __future__ import annotations

from .build import (NativeBuildError, build_library, cache_dir,
                    find_compiler, load_library, native_available)
from .instance import MODELS_ENV, NativeDeviceInstance, models_enabled
from .shim import generate_shim, native_stub_table


def bind_native(model, bus, bases, debug: bool = True,
                composition: str = "cache",
                shadow_cache: bool = False,
                with_models: bool | None = None) -> NativeDeviceInstance:
    """Bind ``model`` with the compiled C dispatch core.

    ``with_models`` selects the ``--with-models`` shim variant (C ports
    of the IDE and Permedia2 hot registers for zero-crossing direct
    batches); ``None`` follows the ``DEVIL_NATIVE_MODELS`` environment
    default (on).  Raises :class:`NativeBuildError` when no C compiler
    is available; ``bind(strategy="auto")`` catches that upstream and
    falls back to the specializer.
    """
    return NativeDeviceInstance(model, bus, bases, debug=debug,
                                composition=composition,
                                shadow_cache=shadow_cache,
                                with_models=with_models)


__all__ = [
    "MODELS_ENV",
    "NativeBuildError",
    "NativeDeviceInstance",
    "bind_native",
    "build_library",
    "cache_dir",
    "find_compiler",
    "generate_shim",
    "load_library",
    "models_enabled",
    "native_available",
    "native_stub_table",
]
