"""The ``strategy="native"`` device binding.

A :class:`NativeDeviceInstance` keeps device state in the generated C
state struct (mirrored by ctypes, so Python and C read the same bytes)
and dispatches public stubs through the compiled shared library.  The
division of labour is chosen for *exactness* against the interpreter,
which stays the semantic reference:

* top-level variable get/set, structure get/set and block transfers run
  in C; their port I/O calls back into the Python :class:`Bus`, so
  traces, accounting, collectors and mapped device models observe
  byte-identical streams;
* value validation stays in Python: setters pre-validate with the
  interpreter's ``_encode`` (so §3.2 write errors carry the exact
  interpreter messages) and getters decode the raw C result with
  ``_decode`` (read-side checks, release fallbacks);
* structure-member reads and memory variables run purely in Python
  against the shared mirror, preserving the interpreter's snapshot
  semantics (members read the fetch-time snapshot, not live caches)
  and its memory rules (writes run no actions, reads return the stored
  value);
* :meth:`NativeDeviceInstance.repeat` is the batched entry: ``n``
  calls of one stub cross the Python↔C boundary once.  On a plain,
  untraced, uncollected bus the batch additionally switches the shim
  into *direct* mode — port-table dispatch straight to the mapped
  device models with C-side accounting counters and a bounded trace
  ring, merged into ``bus.accounting`` when the batch ends
  (:meth:`sync_to_bus`).

C runtime checks unwind via ``setjmp``/``longjmp`` and surface as
:class:`DevilRuntimeError`; exceptions raised inside Python callbacks
abort the C frames and re-raise unchanged.
"""

from __future__ import annotations

import ctypes
import os
from ctypes import (CFUNCTYPE, POINTER, Structure, c_char, c_char_p,
                    c_int, c_ubyte, c_uint, c_ulong, c_ulonglong,
                    c_void_p)

from ... import obs
from ...bus.bus import Bus, BusError, IoTraceEntry
from ...bus.concurrent import ThreadSafeBus
from ..errors import DevilRuntimeError
from ..runtime import DeviceInstance
from ..codegen.c_backend import generate_c_header
from . import build
from .build import NativeBuildError
from .shim import (STATUS_CHECK, STATUS_DEVERR, STATUS_NODEV,
                   STATUS_PYERR, generate_shim, native_stub_table)

#: Environment kill-switch for the C-resident device models (the
#: ``--with-models`` shim variant).  On by default: parity is pinned by
#: the four-way suites, and non-modelled devices are unaffected.
MODELS_ENV = "DEVIL_NATIVE_MODELS"


def models_enabled() -> bool:
    return os.environ.get(MODELS_ENV, "1") not in ("0", "no", "off", "")

#: Capacity of the C flight-recorder ring (last N direct-mode accesses).
RING_CAPACITY = 256

_IN_FN = CFUNCTYPE(c_uint, c_void_p, c_uint, c_int)
_OUT_FN = CFUNCTYPE(None, c_void_p, c_uint, c_uint, c_int)
_IN_REP_FN = CFUNCTYPE(None, c_void_p, c_uint, c_int, c_ulong,
                       POINTER(c_uint))
_OUT_REP_FN = CFUNCTYPE(None, c_void_p, c_uint, c_int, c_ulong,
                        POINTER(c_uint))
_RAW_IN_FN = CFUNCTYPE(c_uint, c_void_p, c_uint, c_uint, c_int)
_RAW_OUT_FN = CFUNCTYPE(None, c_void_p, c_uint, c_uint, c_uint, c_int)
_OBS_FN = CFUNCTYPE(None, c_void_p, c_char_p, c_char_p)


class _PortEntry(Structure):
    """One bus mapping in the C port table.

    ``model``/``mstate`` select an optional C-resident device model;
    the trailing counters account direct-mode accesses *per entry* so
    :meth:`_NativeCore.sync_accounting` can merge them into the owning
    mapping's shard on a :class:`ThreadSafeBus` (exact per-device
    accounting) or into ``bus.accounting`` on a plain :class:`Bus`.
    """

    _fields_ = [("base", c_uint), ("size", c_uint), ("index", c_uint),
                ("model", c_int), ("mstate", c_void_p),
                ("reads", c_ulonglong), ("writes", c_ulonglong),
                ("w8", c_ulonglong), ("w16", c_ulonglong),
                ("w32", c_ulonglong)]


class _TraceEntry(Structure):
    _fields_ = [("op", c_uint), ("port", c_uint), ("value", c_uint),
                ("width", c_uint)]


class _NatBus(Structure):
    """ctypes mirror of the shim's ``devil_nat_bus_t`` (same order)."""

    _fields_ = [
        ("py_in", _IN_FN),
        ("py_out", _OUT_FN),
        ("py_in_rep", _IN_REP_FN),
        ("py_out_rep", _OUT_REP_FN),
        ("raw_in", _RAW_IN_FN),
        ("raw_out", _RAW_OUT_FN),
        ("obs", _OBS_FN),
        ("ctx", c_void_p),
        ("direct", c_int),
        ("action_hook", c_int),
        ("aborted", c_int),
        ("ports", POINTER(_PortEntry)),
        ("n_ports", c_uint),
        ("ring", POINTER(_TraceEntry)),
        ("ring_cap", c_uint),
        ("ring_written", c_ulonglong),
        ("fail_msg", c_char_p),
        ("fail_port", c_uint),
        ("dev_lock", c_void_p),
        ("fail_buf", c_char * 256),
    ]


def _state_struct(model, debug: bool):
    """ctypes mirror of ``<p>_state_t`` (field order must match
    ``_CWriter._emit_state_struct`` exactly)."""
    fields: list[tuple[str, object]] = []
    for name in model.params:
        fields.append((f"port_{name}", c_uint))
    for name in model.registers:
        fields.append((f"cache_{name}", c_uint))
    memory = [v for v in model.variables.values() if v.memory]
    for variable in memory:
        fields.append((f"mem_{variable.name}", c_uint))
    for variable in memory:
        fields.append((f"init_{variable.name}", c_ubyte))
    if debug:
        for structure in model.structures:
            fields.append((f"fetched_{structure}", c_ubyte))
    return type(f"{model.name}_nat_state", (Structure,),
                {"_fields_": fields})


def _merge_counts(accounting, reads: int, writes: int,
                  w8: int, w16: int, w32: int) -> None:
    """Fold one port entry's direct-batch counters into an
    :class:`IoAccounting` (a shard or the plain-bus totals)."""
    accounting.reads += reads
    accounting.writes += writes
    by_width = accounting.single_by_width
    for width, count in ((8, w8), (16, w16), (32, w32)):
        if count:
            by_width[width] = by_width.get(width, 0) + count


class _NativeCore:
    """Library handle, ABI mirrors, callbacks and stub closures."""

    def __init__(self, instance: "NativeDeviceInstance"):
        self.instance = instance
        self.bus = instance.bus
        model = instance.model
        self.prefix = model.name
        self.with_models = instance.with_models
        header = generate_c_header(model, debug=instance.debug)
        shim_source = generate_shim(model,
                                    with_models=self.with_models)
        self.library_path = build.build_library(
            model.name, header, shim_source, instance.debug)
        lib = build.load_library(self.library_path)
        self._bind_entries(lib)
        if self.with_models:
            from .models import ModelRegistry, check_model_abi
            try:
                check_model_abi(lib, self.prefix)
            except RuntimeError as exc:
                raise NativeBuildError(
                    f"{exc}; clear {build.cache_dir()} and re-bind") \
                    from exc
            self.models = ModelRegistry()
        else:
            self.models = None

        struct_cls = _state_struct(model, instance.debug)
        if self.lib_state_size() != ctypes.sizeof(struct_cls):
            raise NativeBuildError(
                f"native library {self.library_path} disagrees with the "
                f"ctypes state mirror for {model.name!r} "
                f"({self.lib_state_size()} vs "
                f"{ctypes.sizeof(struct_cls)} bytes); clear "
                f"{build.cache_dir()} and re-bind")
        if self.lib_bus_size() != ctypes.sizeof(_NatBus):
            raise NativeBuildError(
                f"native library {self.library_path} disagrees with the "
                f"devil_nat_bus_t ABI mirror; clear {build.cache_dir()} "
                f"and re-bind")
        if self.lib_port_size() != ctypes.sizeof(_PortEntry):
            raise NativeBuildError(
                f"native library {self.library_path} disagrees with the "
                f"devil_nat_port_t ABI mirror; clear {build.cache_dir()} "
                f"and re-bind")
        self.state = struct_cls()
        self.state_ptr = ctypes.cast(ctypes.pointer(self.state), c_void_p)
        self.cache_fields = [f"cache_{name}" for name in model.registers]
        self.fetched_fields = [f"fetched_{name}"
                               for name in model.structures] \
            if instance.debug else []

        bases = (c_uint * max(len(model.params), 1))()
        for i, name in enumerate(model.params):
            bases[i] = instance.bases[name]
        self.lib_init(self.state_ptr, bases)

        stubs, blocks = native_stub_table(model)
        self.stub_index = {entry.stub: entry for entry in stubs}
        self.block_index = {entry.stub: entry for entry in blocks}
        self.memory_vars = {variable.name: variable
                            for variable in model.variables.values()
                            if variable.memory}
        max_args = max([len(e.args) for e in stubs] + [1])
        self.args = (c_uint * max_args)()
        self.out = (c_uint * 1)()

        self.pending: BaseException | None = None
        self.hook_flag = False
        self.ring = (_TraceEntry * RING_CAPACITY)()
        self.direct_devices: list = []
        self._port_stamp: tuple | None = None
        self._port_entries = None
        self._port_mappings: list = []
        self._table_bindings: list = []
        self._own_all_modelled = False
        self.cbus = self._make_cbus()
        self.cbus_ptr = ctypes.cast(ctypes.pointer(self.cbus), c_void_p)
        # Per-device recursive C mutex: entry frames hold it for the
        # whole batch, so concurrent GIL-free batches against this
        # binding serialize in C.
        self._dev_lock = self.lib_lock_new()
        self.cbus.dev_lock = self._dev_lock
        self.raw_stubs: dict[str, object] = {}

    def __del__(self):
        lock = getattr(self, "_dev_lock", None)
        free = getattr(self, "lib_lock_free", None)
        if lock and free is not None:
            self._dev_lock = None
            cbus = getattr(self, "cbus", None)
            if cbus is not None:
                cbus.dev_lock = None
            try:
                free(lock)
            except Exception:       # interpreter teardown
                pass

    # -- library entry points ------------------------------------------

    def _bind_entries(self, lib) -> None:
        p = self.prefix
        self.lib_call = getattr(lib, f"{p}_nat_call")
        self.lib_call.argtypes = [c_void_p, c_void_p, c_uint,
                                  POINTER(c_uint), POINTER(c_uint)]
        self.lib_call.restype = c_int
        self.lib_repeat = getattr(lib, f"{p}_nat_repeat")
        self.lib_repeat.argtypes = [c_void_p, c_void_p, c_uint,
                                    POINTER(c_uint), c_ulong,
                                    POINTER(c_uint)]
        self.lib_repeat.restype = c_int
        self.lib_read_block = getattr(lib, f"{p}_nat_read_block")
        self.lib_read_block.argtypes = [c_void_p, c_void_p, c_uint,
                                        POINTER(c_uint), c_ulong]
        self.lib_read_block.restype = c_int
        self.lib_write_block = getattr(lib, f"{p}_nat_write_block")
        self.lib_write_block.argtypes = [c_void_p, c_void_p, c_uint,
                                         POINTER(c_uint), c_ulong]
        self.lib_write_block.restype = c_int
        self.lib_init = getattr(lib, f"{p}_nat_init")
        self.lib_init.argtypes = [c_void_p, POINTER(c_uint)]
        self.lib_init.restype = None
        self.lib_state_size = getattr(lib, f"{p}_nat_state_size")
        self.lib_state_size.argtypes = []
        self.lib_state_size.restype = c_ulong
        self.lib_bus_size = getattr(lib, f"{p}_nat_bus_abi_size")
        self.lib_bus_size.argtypes = []
        self.lib_bus_size.restype = c_ulong
        self.lib_port_size = getattr(lib, f"{p}_nat_port_abi_size")
        self.lib_port_size.argtypes = []
        self.lib_port_size.restype = c_ulong
        self.lib_lock_new = getattr(lib, f"{p}_nat_lock_new")
        self.lib_lock_new.argtypes = []
        self.lib_lock_new.restype = c_void_p
        self.lib_lock_free = getattr(lib, f"{p}_nat_lock_free")
        self.lib_lock_free.argtypes = [c_void_p]
        self.lib_lock_free.restype = None

    # -- callbacks ------------------------------------------------------

    def _make_cbus(self) -> _NatBus:
        bus = self.bus
        core = self

        def py_in(ctx, port, width):
            try:
                return bus.read(port, width) & 0xFFFFFFFF
            except BaseException as exc:
                core.pending = exc
                core.cbus.aborted = 1
                return 0

        def py_out(ctx, value, port, width):
            try:
                bus.write(value, port, width)
            except BaseException as exc:
                core.pending = exc
                core.cbus.aborted = 1

        def py_in_rep(ctx, port, width, count, buffer):
            try:
                values = bus.block_read(port, count, width)
                for i, value in enumerate(values):
                    buffer[i] = value
            except BaseException as exc:
                core.pending = exc
                core.cbus.aborted = 1

        def py_out_rep(ctx, port, width, count, buffer):
            try:
                bus.block_write(port, [buffer[i] for i in range(count)],
                                width)
            except BaseException as exc:
                core.pending = exc
                core.cbus.aborted = 1

        def raw_in(ctx, index, offset, width):
            try:
                return core.direct_devices[index].io_read(
                    offset, width) & 0xFFFFFFFF
            except BaseException as exc:
                core.pending = exc
                core.cbus.aborted = 1
                return 0

        def raw_out(ctx, index, offset, value, width):
            try:
                core.direct_devices[index].io_write(offset, value, width)
            except BaseException as exc:
                core.pending = exc
                core.cbus.aborted = 1

        label_memo: dict[tuple, tuple] = {}

        def obs_action(ctx, kind, target):
            collector = bus.collector
            if collector is None:
                return
            try:
                key = (kind, target)
                pair = label_memo.get(key)
                if pair is None:
                    pair = (kind.decode("ascii"), target.decode("ascii"))
                    label_memo[key] = pair
                collector.record_action(pair[0], pair[1])
            except BaseException as exc:
                core.pending = exc
                core.cbus.aborted = 1

        # Keep the CFUNCTYPE objects alive for the binding's lifetime.
        self._callbacks = (
            _IN_FN(py_in), _OUT_FN(py_out), _IN_REP_FN(py_in_rep),
            _OUT_REP_FN(py_out_rep), _RAW_IN_FN(raw_in),
            _RAW_OUT_FN(raw_out), _OBS_FN(obs_action))
        cbus = _NatBus()
        (cbus.py_in, cbus.py_out, cbus.py_in_rep, cbus.py_out_rep,
         cbus.raw_in, cbus.raw_out, cbus.obs) = self._callbacks
        cbus.ring = self.ring
        cbus.ring_cap = RING_CAPACITY
        return cbus

    # -- call plumbing --------------------------------------------------

    def _sync_hook(self) -> None:
        hook = self.bus.collector is not None
        if hook is not self.hook_flag:
            self.cbus.action_hook = 1 if hook else 0
            self.hook_flag = hook

    def call_stub(self, index: int) -> None:
        self._sync_hook()
        status = self.lib_call(self.state_ptr, self.cbus_ptr, index,
                               self.args, self.out)
        if status:
            self._raise(status)

    def _raise(self, status: int) -> None:
        cbus = self.cbus
        if status == STATUS_PYERR:
            exc, self.pending = self.pending, None
            cbus.aborted = 0
            if exc is None:
                raise DevilRuntimeError(
                    "native callback aborted without a pending exception",
                    self.instance.model.location)
            raise exc
        if status == STATUS_CHECK:
            message = cbus.fail_msg or b"native runtime check failed"
            raise DevilRuntimeError(message.decode("ascii", "replace"),
                                    self.instance.model.location)
        if status == STATUS_NODEV:
            raise BusError(f"no device mapped at port "
                           f"{cbus.fail_port:#x}")
        if status == STATUS_DEVERR:
            # A C-resident device model raised: same exception type and
            # message the Python model would have produced.
            message = cbus.fail_msg or b"native device model error"
            raise BusError(message.decode("ascii", "replace"))
        raise DevilRuntimeError(
            f"native dispatch failed with status {status} "
            f"(stub table / library version skew)",
            self.instance.model.location)

    # -- direct mode ----------------------------------------------------

    def enter_direct(self) -> bool:
        """Switch a batch to port-table dispatch when exactness allows.

        Tracing or a collector always disqualify: those paths need the
        per-access Python hooks, so their batches stay on the callback
        route.  A plain :class:`Bus` qualifies unconditionally.  A
        :class:`ThreadSafeBus` (the zero-latency fleet bus) qualifies
        only when every mapping this instance owns has a C-resident
        model: the batch then runs entirely in C with the GIL released
        (ctypes drops it around the foreign call and no callback ever
        reacquires it), serialized per device by the C mutex — the
        Python ``mapping.lock`` is never needed because fleet sessions
        are exclusive per device and per-entry counters merge into the
        shard under its lock at batch exit.  Subclasses (e.g. the
        latency-modelling fleet bus) never qualify: their per-access
        hooks are semantics.
        """
        bus = self.bus
        if bus.tracing or bus.collector is not None:
            return False
        bus_type = type(bus)
        if bus_type is Bus:
            self._refresh_port_table()
        elif bus_type is ThreadSafeBus:
            self._refresh_port_table()
            if not self._own_all_modelled:
                return False
        else:
            return False
        for binding in self._table_bindings:
            binding.sync_to_c()
        self.cbus.direct = 1
        return True

    def leave_direct(self) -> None:
        self.cbus.direct = 0
        for binding in self._table_bindings:
            binding.sync_to_py()
        self.sync_accounting()

    def _refresh_port_table(self) -> None:
        mappings = list(self.bus._mappings)
        stamp = tuple((id(m), id(m.device)) for m in mappings)
        if stamp == self._port_stamp:
            return
        from .models import SyncedFallback

        entries = (_PortEntry * max(len(mappings), 1))()
        own_bases = set(self.instance.bases.values())
        devices: list = []
        bindings: list = []
        own_modelled = self.models is not None
        for i, mapping in enumerate(mappings):
            entries[i].base = mapping.base
            entries[i].size = mapping.size
            entries[i].index = i
            device = mapping.device
            attached = None
            # Only mappings this instance *owns* get a C model: another
            # instance's device must not be mirrored from here, or two
            # cores would clobber each other's sync points.
            if self.models is not None and mapping.base in own_bases:
                attached = self.models.binding_for(device)
            if attached is not None:
                kind, binding = attached
                entries[i].model = kind
                entries[i].mstate = ctypes.cast(
                    ctypes.pointer(binding.cstate), c_void_p)
                devices.append(SyncedFallback(binding, device))
                if binding not in bindings:
                    bindings.append(binding)
            else:
                devices.append(device)
                if mapping.base in own_bases:
                    own_modelled = False
        self._port_entries = entries        # keep alive
        self._port_mappings = mappings
        self._table_bindings = bindings
        self._own_all_modelled = own_modelled
        self.direct_devices = devices
        self.cbus.ports = entries
        self.cbus.n_ports = len(mappings)
        self._port_stamp = stamp

    def sync_accounting(self) -> None:
        """Merge per-entry C counters of the last direct batch.

        On a :class:`ThreadSafeBus` each entry's counts land in the
        owning mapping's shard (under its lock), keeping
        ``accounting_by_device()`` exact; on a plain :class:`Bus` they
        land in ``bus.accounting`` directly.
        """
        entries = self._port_entries
        if entries is None:
            return
        fallback = None
        for entry, mapping in zip(entries, self._port_mappings):
            reads, writes = entry.reads, entry.writes
            if not (reads or writes):
                continue
            w8, w16, w32 = entry.w8, entry.w16, entry.w32
            entry.reads = entry.writes = 0
            entry.w8 = entry.w16 = entry.w32 = 0
            shard = getattr(mapping, "shard", None)
            lock = getattr(mapping, "lock", None)
            if shard is not None and lock is not None:
                with lock:
                    _merge_counts(shard, reads, writes, w8, w16, w32)
            else:
                if fallback is None:
                    fallback = self.bus.accounting
                _merge_counts(fallback, reads, writes, w8, w16, w32)

    # -- caches ---------------------------------------------------------

    def clear_caches(self) -> None:
        state = self.state
        for field in self.cache_fields:
            setattr(state, field, 0)
        for field in self.fetched_fields:
            setattr(state, field, 0)

    def snapshot_structure(self, structure) -> dict:
        """Post-fetch snapshot + decode, shared by get_<struct> and
        batched repeats."""
        instance = self.instance
        state = self.state
        snapshot = {}
        for register in instance._structure_registers(structure.name):
            snapshot[register] = getattr(state, f"cache_{register}")
        instance._structure_cache[structure.name] = snapshot
        result = {}
        for member_name in structure.members:
            member = instance.model.variables[member_name]
            raw = instance._assemble(member, snapshot)
            result[member_name] = instance._decode(member, raw)
        return result

    # -- stub installation ----------------------------------------------

    def install(self) -> None:
        instance = self.instance
        model = instance.model
        for stub, target, kind in obs.stub_catalog(model):
            if getattr(instance, stub, None) is None:
                continue
            wrapper = self._build_stub(stub, target, kind)
            self.raw_stubs[stub] = wrapper
            setattr(instance, stub, wrapper)

    def _build_stub(self, stub: str, target: str, kind: str):
        instance = self.instance
        model = instance.model
        if kind == "get":
            variable = model.variables[target]
            if variable.memory:
                return self._memory_getter(variable)
            if variable.structure is not None:
                return self._member_getter(variable)
            return self._getter(variable, self.stub_index[stub].index)
        if kind == "set":
            variable = model.variables[target]
            if variable.memory:
                return self._memory_setter(variable)
            return self._setter(variable, self.stub_index[stub].index)
        if kind == "get_struct":
            return self._struct_getter(model.structures[target],
                                       self.stub_index[stub].index)
        if kind == "set_struct":
            return self._struct_setter(model.structures[target],
                                       self.stub_index[stub].index)
        if kind == "block_read":
            return self._block_reader(target,
                                      self.block_index[stub].index)
        assert kind == "block_write"
        return self._block_writer(target, self.block_index[stub].index)

    def _getter(self, variable, index: int):
        instance = self.instance
        out = self.out
        mask = (1 << variable.width) - 1

        def native_get():
            self.call_stub(index)
            return instance._decode(variable, out[0] & mask)
        return native_get

    def _setter(self, variable, index: int):
        instance = self.instance
        args = self.args

        def native_set(value):
            args[0] = instance._encode(variable, value)
            self.call_stub(index)
            instance._last_written[variable.name] = value
        return native_set

    def _member_getter(self, variable):
        # Pure Python: the interpreter's snapshot semantics (fetch-time
        # register values, debug unfetched-read check) are the spec.
        instance = self.instance

        def native_member_get():
            return instance._get_member(variable)
        return native_member_get

    def memory_get(self, variable):
        """Read a memory variable from the C mirror.

        The mirror is authoritative (C-side actions update it and the
        Python ``_memory`` dict cannot see them); the ``init_`` flag —
        unconditional in the state struct — preserves the interpreter's
        read-before-initialisation error in release mode too.
        """
        name = variable.name
        if not getattr(self.state, f"init_{name}"):
            raise DevilRuntimeError(
                f"memory variable {name!r} read before initialisation",
                variable.location)
        return self.instance._decode(
            variable, getattr(self.state, f"mem_{name}"))

    def memory_set(self, variable, value) -> None:
        # Interpreter semantics: store only — memory writes run no
        # set-actions.  Both sides are written: the mirror feeds C
        # actions and mode checks, ``_memory`` keeps the interpreter
        # fallback paths (``_check_mode``) coherent.
        instance = self.instance
        name = variable.name
        raw = instance._encode(variable, value)
        setattr(self.state, f"mem_{name}", raw)
        setattr(self.state, f"init_{name}", 1)
        instance._memory[name] = value
        instance._last_written[name] = value

    def sync_memory(self) -> None:
        """Pull C-action-written memory values into ``_memory`` so
        interpreter fallback paths (mode checks, error paths) see the
        same device mode the compiled stubs do."""
        instance = self.instance
        state = self.state
        for name, variable in self.memory_vars.items():
            if getattr(state, f"init_{name}"):
                instance._memory[name] = instance._decode(
                    variable, getattr(state, f"mem_{name}"))

    def _memory_getter(self, variable):
        def native_memory_get():
            return self.memory_get(variable)
        return native_memory_get

    def _memory_setter(self, variable):
        def native_memory_set(value):
            self.memory_set(variable, value)
        return native_memory_set

    def _struct_getter(self, structure, index: int):
        def native_struct_get():
            self.call_stub(index)
            return self.snapshot_structure(structure)
        return native_struct_get

    def _struct_setter(self, structure, index: int):
        instance = self.instance
        model = instance.model
        members = [model.variables[m] for m in structure.members]
        member_names = set(structure.members)
        args = self.args

        def native_struct_set(**values):
            missing = member_names - set(values)
            if missing:
                raise DevilRuntimeError(
                    f"structure write of {structure.name!r} must provide "
                    f"every member (missing: {sorted(missing)})",
                    structure.location)
            unknown = set(values) - member_names
            if unknown:
                raise DevilRuntimeError(
                    f"unknown member(s) {sorted(unknown)} in structure "
                    f"write of {structure.name!r}", structure.location)
            for i, member in enumerate(members):
                args[i] = instance._encode(member, values[member.name])
            self.call_stub(index)
            for member in members:
                instance._last_written[member.name] = values[member.name]
        return native_struct_set

    def _block_reader(self, target: str, index: int):
        instance = self.instance

        def native_read_block(count):
            if not isinstance(count, int) or count < 0:
                # Interpreter path reproduces the exact error behaviour
                # (pre-actions, then the bus rejects the count).
                self.sync_memory()
                return DeviceInstance.read_block(instance, target, count)
            buffer = (c_uint * max(count, 1))()
            self._sync_hook()
            status = self.lib_read_block(self.state_ptr, self.cbus_ptr,
                                         index, buffer, count)
            if status:
                self._raise(status)
            return buffer[:count]
        return native_read_block

    def _block_writer(self, target: str, index: int):
        def native_write_block(values):
            values = list(values)
            count = len(values)
            buffer = (c_uint * max(count, 1))()
            for i, value in enumerate(values):
                buffer[i] = value & 0xFFFFFFFF
            self._sync_hook()
            status = self.lib_write_block(self.state_ptr, self.cbus_ptr,
                                          index, buffer, count)
            if status:
                self._raise(status)
            return count
        return native_write_block


class NativeDeviceInstance(DeviceInstance):
    """A device bound with ``strategy="native"``.

    Same public stub surface and (byte-for-byte) same bus traffic as
    the interpreter; state lives in the compiled C struct.  Unsupported
    by design: transactions, ``shadow_cache`` and the
    ``read-modify-write`` composition ablation — bind another strategy
    for those.
    """

    def __init__(self, model, bus, bases, debug: bool = True,
                 composition: str = "cache",
                 shadow_cache: bool = False,
                 with_models: bool | None = None):
        if composition != "cache":
            raise DevilRuntimeError(
                f"strategy='native' supports only composition='cache' "
                f"(got {composition!r}); use interpret/specialize for "
                f"the read-modify-write ablation", model.location)
        if shadow_cache:
            raise DevilRuntimeError(
                "strategy='native' does not support shadow_cache=True; "
                "use strategy='specialize' for read elision",
                model.location)
        super().__init__(model, bus, bases, debug=debug,
                         composition="cache", strategy="interpret",
                         shadow_cache=False)
        self.strategy = "native"
        self.with_models = models_enabled() if with_models is None \
            else bool(with_models)
        self._native = _NativeCore(self)
        self._native.install()
        if self._instrumented:
            # Re-wrap: the native closures replaced the interpreted
            # stubs instrument_instance wrapped in super().__init__.
            obs.instrument_instance(self)

    # -- generic accessors route through the native closures -----------

    def get(self, name: str) -> object:
        core = self._native
        variable = core.memory_vars.get(name)
        if variable is not None:      # public or private memory var
            return core.memory_get(variable)
        fn = core.raw_stubs.get(f"get_{name}")
        if fn is None or name in self.model.structures:
            core.sync_memory()
            return super().get(name)   # unknown/write-only error paths
        return fn()

    def set(self, name: str, value: object) -> None:
        core = self._native
        variable = core.memory_vars.get(name)
        if variable is not None:
            return core.memory_set(variable, value)
        fn = core.raw_stubs.get(f"set_{name}")
        if fn is None or name in self.model.structures:
            core.sync_memory()
            return super().set(name, value)
        return fn(value)

    def get_structure(self, name: str) -> dict[str, object]:
        fn = self._native.raw_stubs.get(f"get_{name}") \
            if name in self.model.structures else None
        if fn is None:
            self._native.sync_memory()
            return super().get_structure(name)
        return fn()

    def set_structure(self, name: str, values: dict[str, object]) -> None:
        fn = self._native.raw_stubs.get(f"set_{name}") \
            if name in self.model.structures else None
        if fn is None:
            self._native.sync_memory()
            return super().set_structure(name, values)
        return fn(**values)

    def read_block(self, name: str, count: int) -> list[int]:
        fn = self._native.raw_stubs.get(f"read_{name}_block")
        if fn is None:
            self._native.sync_memory()
            return super().read_block(name, count)
        return fn(count)

    def write_block(self, name: str, values) -> int:
        fn = self._native.raw_stubs.get(f"write_{name}_block")
        if fn is None:
            self._native.sync_memory()
            return super().write_block(name, values)
        return fn(values)

    # -- batched dispatch ----------------------------------------------

    def repeat(self, stub: str, n: int, *args) -> object:
        """Call public stub ``stub`` ``n`` times, one C crossing total.

        Returns what the final call returned (setters return None).
        ``set_<struct>`` takes the member values positionally, in
        declaration order.  With a span collector attached the batch
        falls back to a Python loop over the instrumented stubs so
        per-call spans stay exact; read-side decode checks run against
        the final value.  On a plain untraced bus the batch runs in
        direct mode (C port table + C accounting, merged back when the
        batch ends).
        """
        core = self._native
        n = int(n)
        entry = core.stub_index.get(stub)
        if entry is None or self.bus.collector is not None:
            fn = getattr(self, stub, None)
            if fn is None:
                raise DevilRuntimeError(
                    f"unknown stub {stub!r} for repeat()",
                    self.model.location)
            if entry is None and stub not in core.raw_stubs and \
                    stub not in core.block_index:
                raise DevilRuntimeError(
                    f"unknown stub {stub!r} for repeat()",
                    self.model.location)
            result = None
            for _ in range(n):
                result = fn(*args)
            return result
        model = self.model
        if entry.kind == "set":
            variable = model.variables[entry.target]
            core.args[0] = self._encode(variable, args[0])
        elif entry.kind == "set_struct":
            structure = model.structures[entry.target]
            members = [model.variables[m] for m in structure.members]
            if len(args) != len(members):
                raise DevilRuntimeError(
                    f"repeat({stub!r}) takes {len(members)} positional "
                    f"member values (declaration order), got {len(args)}",
                    structure.location)
            for i, member in enumerate(members):
                core.args[i] = self._encode(member, args[i])
        elif args:
            raise DevilRuntimeError(
                f"stub {stub!r} takes no arguments", model.location)
        if n <= 0:
            return None
        direct = core.enter_direct()
        try:
            core._sync_hook()
            status = core.lib_repeat(core.state_ptr, core.cbus_ptr,
                                     entry.index, core.args, n, core.out)
        finally:
            if direct:
                core.leave_direct()
        if status:
            core._raise(status)
        if entry.kind == "get":
            variable = model.variables[entry.target]
            mask = (1 << variable.width) - 1
            return self._decode(variable, core.out[0] & mask)
        if entry.kind == "get_struct":
            return core.snapshot_structure(model.structures[entry.target])
        if entry.kind == "set":
            self._last_written[entry.target] = args[0]
        elif entry.kind == "set_struct":
            structure = model.structures[entry.target]
            for member_name, value in zip(structure.members, args):
                self._last_written[member_name] = value
        return None

    # -- seams for the parity harness ----------------------------------

    def sync_to_bus(self) -> None:
        """Flush pending C accounting deltas into ``bus.accounting``.

        A no-op outside direct batches: single calls and callback-mode
        batches account through the Python bus as they go.
        """
        self._native.sync_accounting()

    def state_blob(self) -> bytes:
        """The C state struct, byte for byte (ports, caches, memory)."""
        self.sync_to_bus()
        return bytes(self._native.state)

    def flight_recorder(self) -> list[IoTraceEntry]:
        """Decoded bounded trace ring: the last direct-mode accesses."""
        cbus = self._native.cbus
        ring = self._native.ring
        capacity = cbus.ring_cap
        written = cbus.ring_written
        count = min(written, capacity)
        entries = []
        for position in range(written - count, written):
            slot = ring[position % capacity]
            entries.append(IoTraceEntry(
                "r" if slot.op == 0 else "w", slot.port, slot.value,
                slot.width))
        return entries

    # -- unsupported features ------------------------------------------

    def transaction(self):
        raise DevilRuntimeError(
            "strategy='native' does not support transactions; bind "
            "strategy='specialize' (or 'interpret') for write "
            "coalescing", self.model.location)

    def txn(self):
        return self.transaction()

    # -- introspection --------------------------------------------------

    def cached_register(self, name: str) -> int | None:
        """Masked raw cache word from the C state struct.

        Differs from the interpreter in two documented ways: the native
        cache is zero-initialised (never ``None``) and read caches are
        stored masked to the register's variable bits, as in the
        generated C.
        """
        if name not in self.model.registers:
            return None
        return getattr(self._native.state, f"cache_{name}")

    def invalidate_caches(self) -> None:
        super().invalidate_caches()
        self._native.clear_caches()
