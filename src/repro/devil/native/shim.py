"""C runtime shim emission for the native execution strategy.

The generated C header (:mod:`repro.devil.codegen.c_backend`) contains
the paper's Figure-3 stubs as ``static inline`` functions.  This module
emits the translation unit that turns one spec's header into a loadable
shared library:

* the ``devil_nat_bus_t`` ABI struct mirrored by ctypes on the Python
  side — callback pointers, mode flags, a port table with *per-entry*
  accounting counters (merged into the owning mapping's shard, so
  ``ThreadSafeBus.accounting_by_device()`` stays exact under direct
  batches), a per-device pthread mutex and a bounded trace ring;
* ``devil_in``/``devil_out``/``devil_in_rep``/``devil_out_rep``
  implementations that either call back into the Python :class:`Bus`
  (exact-parity path) or dispatch through the C port table straight to
  the mapped device models (direct path, used for batched loops on an
  untraced bus);
* with ``with_models=True``, C ports of the two benchmark-dominant
  simulated devices (:mod:`repro.devices.ide` taskfile/data/status
  ports and :mod:`repro.devices.permedia2` FIFO/rect registers plus
  the framebuffer aperture) so direct-mode batches run with **zero**
  Python crossings per operation; infrequent paths (IDE command
  execution, device-control writes) fall back to the Python model
  through a state-syncing proxy;
* ``DEVIL_CHECK`` routed through ``setjmp``/``longjmp`` so a failed
  §3.2 check unwinds the C frames and surfaces as a Python exception
  instead of ``assert()``-aborting the interpreter; C device models
  report :class:`BusError` conditions the same way (status
  ``DEVIL_NAT_DEVERR``, message formatted into ``fail_buf``);
* ``DEVIL_OBS_ACTION`` routed to the span collector callback;
* one ``switch``-based dispatch function plus batched entry points
  (``<p>_nat_call``, ``<p>_nat_repeat``, ``<p>_nat_read_block``,
  ``<p>_nat_write_block``) so inner loops cross the Python↔C boundary
  once per batch, not once per port access.  Every entry point takes
  the per-device mutex (``<p>_nat_lock_new``) for its whole frame, so
  concurrent C batches against one device state serialize in C even
  when the GIL is released around the foreign call.

The stub table (:func:`native_stub_table`) is the single source of
truth for dispatch ids: the C ``switch`` and the Python loader both
derive from it, recomputed deterministically from the resolved model on
every bind.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codegen.c_backend import c_value_cast

#: Entry status codes shared with the Python loader.
STATUS_OK = 0
STATUS_PYERR = 1    # a Python callback raised; the stored exception re-raises
STATUS_CHECK = 2    # a DEVIL_CHECK failed; fail_msg carries the message
STATUS_NODEV = 3    # direct mode: no device mapped at fail_port
STATUS_BADID = 4    # unknown stub id (loader/table version skew)
STATUS_DEVERR = 5   # a C device model raised; fail_msg is the BusError text


@dataclass(frozen=True)
class NatStub:
    """One dispatchable stub: a ``case`` in the generated switch."""

    index: int
    stub: str            # Python attribute name, e.g. "set_init"
    kind: str            # "get" | "set" | "get_struct" | "set_struct"
    target: str          # variable or structure name
    args: tuple          # variable names supplying each args[] slot
    has_out: bool


@dataclass(frozen=True)
class NatBlock:
    """One block-transfer stub: a ``case`` in the block switches."""

    index: int
    stub: str            # e.g. "read_ide_data_block"
    kind: str            # "block_read" | "block_write"
    target: str


def native_stub_table(model) -> tuple[list[NatStub], list[NatBlock]]:
    """Dispatch tables for one resolved device.

    Mirrors the attachment rules of ``DeviceInstance._attach_stubs``
    minus what stays on the Python side: memory variables (their
    interpreter semantics — no set-actions on write, abstract values
    returned verbatim — live in Python against the shared state
    mirror).  Member getters *are* listed: single calls use the
    snapshot path in Python, but batched ``repeat()`` loops dispatch
    them in C.
    """
    def readable(variable):
        return variable.memory or all(
            model.registers[c.register].readable
            for c in variable.chunks)

    def writable(variable):
        return variable.memory or all(
            model.registers[c.register].writable
            for c in variable.chunks)

    stubs: list[NatStub] = []
    blocks: list[NatBlock] = []
    for variable in model.public_variables():
        name = variable.name
        if variable.memory:
            continue
        if readable(variable):
            stubs.append(NatStub(len(stubs), f"get_{name}", "get",
                                 name, (), True))
        if writable(variable):
            stubs.append(NatStub(len(stubs), f"set_{name}", "set",
                                 name, (name,), False))
        if variable.behaviors.block:
            if readable(variable):
                blocks.append(NatBlock(len(blocks),
                                       f"read_{name}_block",
                                       "block_read", name))
            if writable(variable):
                blocks.append(NatBlock(len(blocks),
                                       f"write_{name}_block",
                                       "block_write", name))
    for structure in model.structures.values():
        members = [model.variables[m] for m in structure.members]
        if all(readable(m) for m in members):
            stubs.append(NatStub(len(stubs), f"get_{structure.name}",
                                 "get_struct", structure.name, (), False))
        if all(writable(m) for m in members):
            stubs.append(NatStub(len(stubs), f"set_{structure.name}",
                                 "set_struct", structure.name,
                                 tuple(structure.members), False))
    return stubs, blocks


def generate_shim(model, prefix: str | None = None,
                  header_name: str | None = None,
                  with_models: bool = False) -> str:
    """Emit the runtime shim C source for ``model``.

    The same source serves debug and release builds: the header decides
    (via its embedded ``DEVIL_DEBUG`` define when emitted with
    ``debug=True``) whether the §3.2 checks are compiled in.
    ``with_models`` additionally compiles the C-resident device models
    (IDE disk/control, Permedia2 regs/aperture) into the library; the
    build cache keys on the source text, so both variants coexist.
    """
    p = prefix or model.name
    header = header_name or f"{p}.dil.h"
    stubs, blocks = native_stub_table(model)
    w: list[str] = []

    def line(text: str = "") -> None:
        w.append(text)

    line(f"/* Generated native runtime shim for specification "
         f"'{model.name}'. Do not edit. */")
    line("/* -std=c99 hides PTHREAD_MUTEX_RECURSIVE without this. */")
    line("#define _XOPEN_SOURCE 700")
    line("#include <pthread.h>")
    line("#include <setjmp.h>")
    line("#include <stdlib.h>")
    if with_models:
        line("#include <stdarg.h>")
        line("#include <stdio.h>")
        line("#include <string.h>")
    line()
    line("typedef unsigned (*devil_nat_in_fn)(void *ctx, unsigned port, "
         "int width);")
    line("typedef void (*devil_nat_out_fn)(void *ctx, unsigned value, "
         "unsigned port, int width);")
    line("typedef void (*devil_nat_in_rep_fn)(void *ctx, unsigned port, "
         "int width, unsigned long count, unsigned *buffer);")
    line("typedef void (*devil_nat_out_rep_fn)(void *ctx, unsigned port, "
         "int width, unsigned long count, const unsigned *buffer);")
    line("typedef unsigned (*devil_nat_raw_in_fn)(void *ctx, "
         "unsigned index, unsigned offset, int width);")
    line("typedef void (*devil_nat_raw_out_fn)(void *ctx, "
         "unsigned index, unsigned offset, unsigned value, int width);")
    line("typedef void (*devil_nat_obs_fn)(void *ctx, const char *kind, "
         "const char *target);")
    line()
    line("/* One bus mapping.  `model`/`mstate` select an optional")
    line(" * C-resident device model; the counters account direct-mode")
    line(" * accesses per entry so the Python side can merge them into")
    line(" * the owning mapping's shard (exact per-device accounting")
    line(" * on a ThreadSafeBus). */")
    line("typedef struct devil_nat_port {")
    line("    unsigned base;")
    line("    unsigned size;")
    line("    unsigned index;   /* slot in the Python-side device list */")
    line("    int model;        /* 0 = python callback; else a model kind */")
    line("    void *mstate;")
    line("    unsigned long long reads;")
    line("    unsigned long long writes;")
    line("    unsigned long long w8;")
    line("    unsigned long long w16;")
    line("    unsigned long long w32;")
    line("} devil_nat_port_t;")
    line()
    line("typedef struct devil_nat_trace {")
    line("    unsigned op;      /* 0 = read, 1 = write */")
    line("    unsigned port;")
    line("    unsigned value;")
    line("    unsigned width;")
    line("} devil_nat_trace_t;")
    line()
    line("/* Mirrored field-for-field by ctypes on the Python side; the")
    line(" * loader cross-checks sizeof() at dlopen time. */")
    line("typedef struct devil_nat_bus {")
    line("    devil_nat_in_fn py_in;        /* exact-parity path: the "
         "Python Bus */")
    line("    devil_nat_out_fn py_out;")
    line("    devil_nat_in_rep_fn py_in_rep;")
    line("    devil_nat_out_rep_fn py_out_rep;")
    line("    devil_nat_raw_in_fn raw_in;   /* direct path: mapped "
         "device models */")
    line("    devil_nat_raw_out_fn raw_out;")
    line("    devil_nat_obs_fn obs;")
    line("    void *ctx;")
    line("    int direct;")
    line("    int action_hook;")
    line("    int aborted;")
    line("    devil_nat_port_t *ports;")
    line("    unsigned n_ports;")
    line("    devil_nat_trace_t *ring;      /* bounded flight recorder */")
    line("    unsigned ring_cap;")
    line("    unsigned long long ring_written;")
    line("    const char *fail_msg;")
    line("    unsigned fail_port;")
    line("    void *dev_lock;   /* per-device recursive pthread mutex */")
    line("    char fail_buf[256];")
    line("} devil_nat_bus_t;")
    line()
    line("static __thread devil_nat_bus_t *devil_nat_cur;")
    line("static __thread jmp_buf *devil_nat_env;")
    line()
    line(f"#define DEVIL_NAT_PYERR {STATUS_PYERR}")
    line(f"#define DEVIL_NAT_CHECK {STATUS_CHECK}")
    line(f"#define DEVIL_NAT_NODEV {STATUS_NODEV}")
    line(f"#define DEVIL_NAT_BADID {STATUS_BADID}")
    line(f"#define DEVIL_NAT_DEVERR {STATUS_DEVERR}")
    line()
    line("static void devil_nat_fail(const char *msg)")
    line("{")
    line("    devil_nat_cur->fail_msg = msg;")
    line("    longjmp(*devil_nat_env, DEVIL_NAT_CHECK);")
    line("}")
    if with_models:
        line()
        line("/* BusError from a C device model: format the exact message")
        line(" * the Python model would raise, then unwind. */")
        line("static void devil_nat_fail_fmt(const char *fmt, ...)")
        line("{")
        line("    va_list ap;")
        line("    va_start(ap, fmt);")
        line("    vsnprintf(devil_nat_cur->fail_buf,")
        line("              sizeof devil_nat_cur->fail_buf, fmt, ap);")
        line("    va_end(ap);")
        line("    devil_nat_cur->fail_msg = devil_nat_cur->fail_buf;")
        line("    longjmp(*devil_nat_env, DEVIL_NAT_DEVERR);")
        line("}")
        from .models import model_c_source
        line()
        line(model_c_source().rstrip())
    line()
    line("#define DEVIL_CHECK(cond, msg) \\")
    line("    do { if (!(cond)) devil_nat_fail(msg); } while (0)")
    line("#define DEVIL_OBS_ACTION(kind, target) "
         "devil_nat_action(kind, target)")
    line("#define DEVIL_IO_DECLARED")
    line()
    line("static unsigned devil_in(unsigned port, int width);")
    line("static void devil_out(unsigned value, unsigned port, "
         "int width);")
    line("static void devil_in_rep(unsigned port, int width, "
         "unsigned long count, unsigned *buffer);")
    line("static void devil_out_rep(unsigned port, int width, "
         "unsigned long count, const unsigned *buffer);")
    line("static void devil_nat_action(const char *kind, "
         "const char *target);")
    line()
    line(f'#include "{header}"')
    line()
    line("static void devil_nat_action(const char *kind, "
         "const char *target)")
    line("{")
    line("    devil_nat_bus_t *bus = devil_nat_cur;")
    line("    if (!bus->action_hook)")
    line("        return;")
    line("    bus->obs(bus->ctx, kind, target);")
    line("    if (bus->aborted)")
    line("        longjmp(*devil_nat_env, DEVIL_NAT_PYERR);")
    line("}")
    line()
    line("static unsigned devil_nat_width_mask(int width)")
    line("{")
    line("    return width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u);")
    line("}")
    line()
    line("static devil_nat_port_t *devil_nat_find("
         "devil_nat_bus_t *bus, unsigned port)")
    line("{")
    line("    unsigned i;")
    line("    for (i = 0; i < bus->n_ports; i++) {")
    line("        devil_nat_port_t *m = &bus->ports[i];")
    line("        if (port >= m->base && port < m->base + m->size)")
    line("            return m;")
    line("    }")
    line("    bus->fail_port = port;")
    line("    longjmp(*devil_nat_env, DEVIL_NAT_NODEV);")
    line("    return 0;")
    line("}")
    line()
    line("static void devil_nat_count(devil_nat_port_t *m, int width, "
         "int is_write)")
    line("{")
    line("    if (is_write)")
    line("        m->writes++;")
    line("    else")
    line("        m->reads++;")
    line("    if (width == 8)")
    line("        m->w8++;")
    line("    else if (width == 16)")
    line("        m->w16++;")
    line("    else")
    line("        m->w32++;")
    line("}")
    line()
    line("static void devil_nat_record(devil_nat_bus_t *bus, unsigned op, "
         "unsigned port, unsigned value, unsigned width)")
    line("{")
    line("    if (bus->ring_cap) {")
    line("        devil_nat_trace_t *slot =")
    line("            &bus->ring[bus->ring_written % bus->ring_cap];")
    line("        slot->op = op;")
    line("        slot->port = port;")
    line("        slot->value = value;")
    line("        slot->width = width;")
    line("    }")
    line("    bus->ring_written++;")
    line("}")
    line()
    line("static unsigned devil_in(unsigned port, int width)")
    line("{")
    line("    devil_nat_bus_t *bus = devil_nat_cur;")
    line("    unsigned value;")
    line("    if (bus->direct) {")
    line("        devil_nat_port_t *m = devil_nat_find(bus, port);")
    if with_models:
        line("        if (!m->model || !devil_nat_model_in(m, "
             "port - m->base, width, &value)) {")
        line("            value = bus->raw_in(bus->ctx, m->index, "
             "port - m->base, width);")
        line("            if (bus->aborted)")
        line("                longjmp(*devil_nat_env, DEVIL_NAT_PYERR);")
        line("        }")
    else:
        line("        value = bus->raw_in(bus->ctx, m->index, "
             "port - m->base, width);")
        line("        if (bus->aborted)")
        line("            longjmp(*devil_nat_env, DEVIL_NAT_PYERR);")
    line("        value &= devil_nat_width_mask(width);")
    line("        devil_nat_count(m, width, 0);")
    line("        devil_nat_record(bus, 0u, port, value, "
         "(unsigned)width);")
    line("        return value;")
    line("    }")
    line("    value = bus->py_in(bus->ctx, port, width);")
    line("    if (bus->aborted)")
    line("        longjmp(*devil_nat_env, DEVIL_NAT_PYERR);")
    line("    return value;")
    line("}")
    line()
    line("static void devil_out(unsigned value, unsigned port, int width)")
    line("{")
    line("    devil_nat_bus_t *bus = devil_nat_cur;")
    line("    if (bus->direct) {")
    line("        devil_nat_port_t *m = devil_nat_find(bus, port);")
    line("        value &= devil_nat_width_mask(width);")
    if with_models:
        line("        if (!m->model || !devil_nat_model_out(m, "
             "port - m->base, value, width)) {")
        line("            bus->raw_out(bus->ctx, m->index, "
             "port - m->base, value, width);")
        line("            if (bus->aborted)")
        line("                longjmp(*devil_nat_env, DEVIL_NAT_PYERR);")
        line("        }")
    else:
        line("        bus->raw_out(bus->ctx, m->index, port - m->base, "
             "value, width);")
        line("        if (bus->aborted)")
        line("            longjmp(*devil_nat_env, DEVIL_NAT_PYERR);")
    line("        devil_nat_count(m, width, 1);")
    line("        devil_nat_record(bus, 1u, port, value, "
         "(unsigned)width);")
    line("        return;")
    line("    }")
    line("    bus->py_out(bus->ctx, value, port, width);")
    line("    if (bus->aborted)")
    line("        longjmp(*devil_nat_env, DEVIL_NAT_PYERR);")
    line("}")
    line()
    line("static void devil_in_rep(unsigned port, int width, "
         "unsigned long count, unsigned *buffer)")
    line("{")
    line("    devil_nat_bus_t *bus = devil_nat_cur;")
    line("    bus->py_in_rep(bus->ctx, port, width, count, buffer);")
    line("    if (bus->aborted)")
    line("        longjmp(*devil_nat_env, DEVIL_NAT_PYERR);")
    line("}")
    line()
    line("static void devil_out_rep(unsigned port, int width, "
         "unsigned long count, const unsigned *buffer)")
    line("{")
    line("    devil_nat_bus_t *bus = devil_nat_cur;")
    line("    bus->py_out_rep(bus->ctx, port, width, count, buffer);")
    line("    if (bus->aborted)")
    line("        longjmp(*devil_nat_env, DEVIL_NAT_PYERR);")
    line("}")
    line()
    # -- generated dispatch switch -------------------------------------
    line(f"static int {p}_nat_dispatch({p}_state_t *d, unsigned stub_id, "
         "const unsigned *args, unsigned *out)")
    line("{")
    line("    (void)args;")
    line("    (void)out;")
    line("    switch (stub_id) {")
    for entry in stubs:
        call_args = ", ".join(
            c_value_cast(p, model.variables[arg], f"args[{j}]")
            for j, arg in enumerate(entry.args))
        if entry.kind == "get":
            line(f"    case {entry.index}: "
                 f"*out = (unsigned){p}__get_{entry.target}(d); return 0;")
        elif entry.kind == "set":
            line(f"    case {entry.index}: "
                 f"{p}__set_{entry.target}(d, {call_args}); return 0;")
        elif entry.kind == "get_struct":
            line(f"    case {entry.index}: "
                 f"{p}__get_{entry.target}(d); return 0;")
        else:  # set_struct
            line(f"    case {entry.index}: "
                 f"{p}__set_{entry.target}(d, {call_args}); return 0;")
    line("    default: return DEVIL_NAT_BADID;")
    line("    }")
    line("}")
    line()
    # -- exported entry points -----------------------------------------
    # The per-device mutex is held for the whole entry frame: the lock
    # is taken before setjmp, and a longjmp from any depth lands back
    # at the setjmp in this same frame, so DEVIL_NAT_LEAVE always
    # unlocks.  The mutex is recursive: a Python callback that
    # re-enters the same instance must not self-deadlock.
    line("#define DEVIL_NAT_ENTER() \\")
    line("    jmp_buf env; \\")
    line("    jmp_buf *prev_env = devil_nat_env; \\")
    line("    devil_nat_bus_t *prev_bus = devil_nat_cur; \\")
    line("    int status; \\")
    line("    if (bus->dev_lock) \\")
    line("        pthread_mutex_lock((pthread_mutex_t *)bus->dev_lock); \\")
    line("    devil_nat_cur = bus; \\")
    line("    devil_nat_env = &env; \\")
    line("    bus->fail_msg = 0; \\")
    line("    status = setjmp(env)")
    line()
    line("#define DEVIL_NAT_LEAVE() \\")
    line("    devil_nat_cur = prev_bus; \\")
    line("    devil_nat_env = prev_env; \\")
    line("    if (bus->dev_lock) \\")
    line("        pthread_mutex_unlock((pthread_mutex_t *)bus->dev_lock); \\")
    line("    return status")
    line()
    line(f"int {p}_nat_call(void *state, devil_nat_bus_t *bus, "
         "unsigned stub_id, const unsigned *args, unsigned *out)")
    line("{")
    line("    DEVIL_NAT_ENTER();")
    line("    if (status == 0)")
    line(f"        status = {p}_nat_dispatch(({p}_state_t *)state, "
         "stub_id, args, out);")
    line("    DEVIL_NAT_LEAVE();")
    line("}")
    line()
    line(f"int {p}_nat_repeat(void *state, devil_nat_bus_t *bus, "
         "unsigned stub_id, const unsigned *args, unsigned long n, "
         "unsigned *out)")
    line("{")
    line("    DEVIL_NAT_ENTER();")
    line("    if (status == 0) {")
    line("        unsigned long i;")
    line("        for (i = 0; i < n && status == 0; i++)")
    line(f"            status = {p}_nat_dispatch(({p}_state_t *)state, "
         "stub_id, args, out);")
    line("    }")
    line("    DEVIL_NAT_LEAVE();")
    line("}")
    line()
    line(f"int {p}_nat_read_block(void *state, devil_nat_bus_t *bus, "
         "unsigned block_id, unsigned *buffer, unsigned long count)")
    line("{")
    line("    DEVIL_NAT_ENTER();")
    line("    if (status == 0) {")
    line("        switch (block_id) {")
    for entry in blocks:
        if entry.kind != "block_read":
            continue
        line(f"        case {entry.index}: "
             f"{p}__{entry.stub}(({p}_state_t *)state, buffer, count); "
             "break;")
    line("        default: status = DEVIL_NAT_BADID;")
    line("        }")
    line("    }")
    line("    DEVIL_NAT_LEAVE();")
    line("}")
    line()
    line(f"int {p}_nat_write_block(void *state, devil_nat_bus_t *bus, "
         "unsigned block_id, const unsigned *buffer, unsigned long count)")
    line("{")
    line("    DEVIL_NAT_ENTER();")
    line("    if (status == 0) {")
    line("        switch (block_id) {")
    for entry in blocks:
        if entry.kind != "block_write":
            continue
        line(f"        case {entry.index}: "
             f"{p}__{entry.stub}(({p}_state_t *)state, buffer, count); "
             "break;")
    line("        default: status = DEVIL_NAT_BADID;")
    line("        }")
    line("    }")
    line("    DEVIL_NAT_LEAVE();")
    line("}")
    line()
    bases = ", ".join(f"bases[{i}]" for i in range(len(model.params)))
    line(f"void {p}_nat_init(void *state, const unsigned *bases)")
    line("{")
    line("    (void)bases;")
    if bases:
        line(f"    {p}__init(({p}_state_t *)state, {bases});")
    else:
        line(f"    {p}__init(({p}_state_t *)state);")
    line("}")
    line()
    line("/* Per-device mutex lifecycle.  Recursive so a callback that")
    line(" * re-enters the same binding cannot self-deadlock. */")
    line(f"void *{p}_nat_lock_new(void)")
    line("{")
    line("    pthread_mutexattr_t attr;")
    line("    pthread_mutex_t *mutex =")
    line("        (pthread_mutex_t *)malloc(sizeof(pthread_mutex_t));")
    line("    if (!mutex)")
    line("        return 0;")
    line("    pthread_mutexattr_init(&attr);")
    line("    pthread_mutexattr_settype(&attr, PTHREAD_MUTEX_RECURSIVE);")
    line("    pthread_mutex_init(mutex, &attr);")
    line("    pthread_mutexattr_destroy(&attr);")
    line("    return mutex;")
    line("}")
    line()
    line(f"void {p}_nat_lock_free(void *mutex)")
    line("{")
    line("    if (mutex) {")
    line("        pthread_mutex_destroy((pthread_mutex_t *)mutex);")
    line("        free(mutex);")
    line("    }")
    line("}")
    line()
    line("/* Layout cross-checks: the Python loader refuses a library "
         "whose")
    line(" * struct sizes disagree with its ctypes mirrors. */")
    line(f"unsigned long {p}_nat_state_size(void)")
    line("{")
    line(f"    return (unsigned long)sizeof({p}_state_t);")
    line("}")
    line()
    line(f"unsigned long {p}_nat_bus_abi_size(void)")
    line("{")
    line("    return (unsigned long)sizeof(devil_nat_bus_t);")
    line("}")
    line()
    line(f"unsigned long {p}_nat_port_abi_size(void)")
    line("{")
    line("    return (unsigned long)sizeof(devil_nat_port_t);")
    line("}")
    if with_models:
        line()
        line(f"unsigned long {p}_nat_ide_model_size(void)")
        line("{")
        line("    return (unsigned long)sizeof(devil_nat_ide_t);")
        line("}")
        line()
        line(f"unsigned long {p}_nat_pm2_model_size(void)")
        line("{")
        line("    return (unsigned long)sizeof(devil_nat_pm2_t);")
        line("}")
    return "\n".join(w) + "\n"
