"""Toolchain discovery and the on-disk native build cache.

A native bind compiles ``<spec>.dil.h`` + the runtime shim into a
shared library with whatever C compiler the machine has (``$CC``,
``cc``, ``gcc`` or ``clang``, in that order).  Compiled libraries are
cached on disk keyed by ``(source hash, debug flag, toolchain id,
codegen version)`` so re-binds — and every bind after the first in a
fleet — are instant.  Cold-cache builds are serialized per target by
an ``fcntl.flock`` on ``<target>.lock`` with a second existence check
after acquisition, so N fleet workers (threads *or* processes)
cold-binding the same spec concurrently produce exactly one compiler
invocation; publication stays atomic (``os.replace``) as a belt for
cross-host caches where flock may not reach.  Loaded handles are
additionally memoized in-process: one ``dlopen`` per library per
interpreter.

No compiler is a supported configuration: :func:`find_compiler`
returns ``None``, ``native_available()`` is ``False``, and
``bind(strategy="auto")`` falls back to the specializer.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path

try:
    import fcntl
except ImportError:                     # non-POSIX: atomic publish only
    fcntl = None

from ..codegen.c_backend import CODEGEN_VERSION
from ..errors import DevilRuntimeError

#: Environment override for the cache directory (CI points this at a
#: directory restored across runs).
CACHE_ENV = "DEVIL_NATIVE_CACHE"

#: Flags the cache key includes: changing them invalidates cached .so.
#: ``-pthread`` backs the per-device mutex in the shim's entry frames.
CFLAGS = ("-O2", "-fPIC", "-shared", "-std=c99", "-pthread")

#: Number of actual compiler invocations this process performed
#: (observable cache behaviour for tests and benchmarks).
BUILD_COUNT = 0


class NativeBuildError(DevilRuntimeError):
    """Toolchain missing or the compiler rejected generated code."""


_LOCK = threading.Lock()
_COMPILER: tuple[str | None, str] | None = None   # (path, version id)
_LOADED: dict[str, ctypes.CDLL] = {}


def cache_dir() -> Path:
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "devil-native"


def find_compiler() -> str | None:
    """Absolute path of the C compiler to use, or None."""
    return _compiler()[0]


def native_available() -> bool:
    return find_compiler() is not None


def compiler_id() -> str:
    """Toolchain identity string baked into the cache key."""
    return _compiler()[1]


def _compiler() -> tuple[str | None, str]:
    global _COMPILER
    cached = _COMPILER
    if cached is not None:
        return cached
    with _LOCK:
        if _COMPILER is None:
            _COMPILER = _discover()
        return _COMPILER


def _discover() -> tuple[str | None, str]:
    candidates = [os.environ.get("CC"), "cc", "gcc", "clang"]
    for candidate in candidates:
        if not candidate:
            continue
        path = shutil.which(candidate)
        if path is None:
            continue
        try:
            probe = subprocess.run([path, "--version"],
                                   capture_output=True, text=True,
                                   timeout=30)
        except (OSError, subprocess.TimeoutExpired):
            continue
        if probe.returncode != 0:
            continue
        first = probe.stdout.splitlines()[0] if probe.stdout else path
        return path, first.strip()
    return None, "none"


def _reset_compiler_cache() -> None:
    """Test hook: forget the discovered toolchain."""
    global _COMPILER
    with _LOCK:
        _COMPILER = None


def build_key(name: str, header: str, shim: str, debug: bool) -> str:
    """Cache key: (spec sources, debug flag, toolchain, codegen version)."""
    digest = hashlib.sha256()
    for part in (f"codegen={CODEGEN_VERSION}", compiler_id(),
                 " ".join(CFLAGS), f"debug={int(debug)}", header, shim):
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()[:20]


def build_library(name: str, header: str, shim: str,
                  debug: bool) -> Path:
    """Compile (or fetch from cache) one spec's native library."""
    global BUILD_COUNT
    cc = find_compiler()
    if cc is None:
        raise NativeBuildError(
            "no C compiler found for strategy='native' (searched $CC, "
            "cc, gcc, clang); install one or bind with strategy='auto' "
            "to fall back to the specializer")
    flavor = "dbg" if debug else "rel"
    key = build_key(name, header, shim, debug)
    directory = cache_dir()
    target = directory / f"{name}-{flavor}-{key}.so"
    if target.exists():
        return target
    directory.mkdir(parents=True, exist_ok=True)
    # Serialize the cold build per target: without this, N workers
    # racing an empty cache each spawn a compiler (correct but N× the
    # cost, and historically a corruption risk against non-atomic
    # caches).  flock is advisory, per open-file-description, and
    # released on close even if the holder dies mid-compile.
    lock_file = None
    if fcntl is not None:
        lock_file = open(directory / f"{target.name}.lock", "w")
        fcntl.flock(lock_file, fcntl.LOCK_EX)
    try:
        if target.exists():            # second check: lock-holder built it
            return target
        workdir = Path(tempfile.mkdtemp(prefix=f"build-{name}-",
                                        dir=directory))
        try:
            (workdir / f"{name}.dil.h").write_text(header)
            source = workdir / f"{name}_shim.c"
            source.write_text(shim)
            produced = workdir / target.name
            command = [cc, *CFLAGS, str(source), "-o", str(produced)]
            result = subprocess.run(command, capture_output=True,
                                    text=True, cwd=workdir, timeout=120)
            if result.returncode != 0:
                raise NativeBuildError(
                    f"native build of spec {name!r} failed "
                    f"({' '.join(command)}):\n{result.stderr.strip()}")
            BUILD_COUNT += 1
            os.replace(produced, target)   # atomic publish
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    finally:
        if lock_file is not None:
            fcntl.flock(lock_file, fcntl.LOCK_UN)
            lock_file.close()
    return target


def load_library(path: Path) -> ctypes.CDLL:
    """dlopen with an in-process memo (one handle per .so per process)."""
    key = str(path)
    handle = _LOADED.get(key)
    if handle is not None:
        return handle
    with _LOCK:
        handle = _LOADED.get(key)
        if handle is None:
            handle = ctypes.CDLL(key)
            _LOADED[key] = handle
        return handle
