"""Recursive-descent parser for the Devil language.

The grammar covers everything exercised by the paper's figures:

* device declarations parameterized by ranged ports,
* registers with read/write ports, masks, ``pre``/``post``/``set``
  action blocks, explicit bit widths, indexed register constructors and
  their instantiations,
* variables built from bit-range chunks of one or more registers
  (``#`` concatenation), behaviour qualifiers (``volatile``, ``block``,
  ``[read|write] trigger [except SYM | for VALUE]``), ``set`` actions
  and ``serialized as`` clauses,
* structures with conditional serialization,
* boolean, integer, integer-set and enumerated types, plus named
  ``type`` declarations.
"""

from __future__ import annotations

from . import ast
from .errors import DevilParseError, SourceLocation
from .lexer import Lexer, Token, TokenKind
from .types import EnumDirection


class Parser:
    """Parses one Devil source text into a :class:`ast.DeviceDecl`."""

    def __init__(self, source: str, filename: str = "<devil>"):
        self._tokens = list(Lexer(source, filename).tokens())
        self._index = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _location(self) -> SourceLocation:
        return self._current.location

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._current.kind is kind

    def _check_keyword(self, word: str) -> bool:
        return self._current.is_keyword(word)

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._check(kind):
            return self._advance()
        return None

    def _accept_keyword(self, word: str) -> Token | None:
        if self._check_keyword(word):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str) -> Token:
        if not self._check(kind):
            raise DevilParseError(
                f"expected {kind.value} {context}, found {self._current}",
                self._location())
        return self._advance()

    def _expect_keyword(self, word: str, context: str) -> Token:
        if not self._check_keyword(word):
            raise DevilParseError(
                f"expected '{word}' {context}, found {self._current}",
                self._location())
        return self._advance()

    def _expect_int(self, context: str) -> int:
        token = self._expect(TokenKind.INT, context)
        assert token.value is not None
        return token.value

    def _expect_ident(self, context: str) -> Token:
        return self._expect(TokenKind.IDENT, context)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def parse_device(self) -> ast.DeviceDecl:
        """Parse a whole specification (types + one device declaration)."""
        leading_types: list[ast.TypeDecl] = []
        while self._check_keyword("type"):
            leading_types.append(self._parse_type_decl())
        location = self._location()
        self._expect_keyword("device", "at start of specification")
        name = self._expect_ident("as device name").text
        self._expect(TokenKind.LPAREN, "after device name")
        params = [self._parse_port_param()]
        while self._accept(TokenKind.COMMA):
            params.append(self._parse_port_param())
        self._expect(TokenKind.RPAREN, "after device parameters")
        self._expect(TokenKind.LBRACE, "to open device body")
        declarations: list[ast.Declaration] = list(leading_types)
        while not self._check(TokenKind.RBRACE):
            declarations.append(self._parse_declaration())
        self._expect(TokenKind.RBRACE, "to close device body")
        if not self._check(TokenKind.EOF):
            raise DevilParseError(
                f"unexpected {self._current} after device declaration",
                self._location())
        return ast.DeviceDecl(name, params, declarations, location)

    # ------------------------------------------------------------------
    # Device parameters
    # ------------------------------------------------------------------

    def _parse_port_param(self) -> ast.PortParam:
        location = self._location()
        name = self._expect_ident("as port parameter name").text
        self._expect(TokenKind.COLON, "after port parameter name")
        self._expect_keyword("bit", "in port parameter type")
        self._expect(TokenKind.LBRACKET, "after 'bit'")
        width = self._expect_int("as port data width")
        self._expect(TokenKind.RBRACKET, "after port data width")
        self._expect_keyword("port", "in port parameter type")
        offsets = [(0, 0)]
        if self._accept(TokenKind.AT):
            self._expect(TokenKind.LBRACE, "after '@' in port range")
            offsets = self._parse_int_ranges("in port offset range")
            self._expect(TokenKind.RBRACE, "to close port offset range")
        return ast.PortParam(name, width, offsets, location)

    def _parse_int_ranges(self, context: str) -> list[tuple[int, int]]:
        ranges = [self._parse_int_range(context)]
        while self._accept(TokenKind.COMMA):
            ranges.append(self._parse_int_range(context))
        return ranges

    def _parse_int_range(self, context: str) -> tuple[int, int]:
        location = self._location()
        low = self._expect_int(context)
        high = low
        if self._accept(TokenKind.DOTDOT):
            high = self._expect_int(context)
        if high < low:
            raise DevilParseError(
                f"reversed range {low}..{high} {context}", location)
        return (low, high)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _parse_declaration(self) -> ast.Declaration:
        if self._check_keyword("register"):
            return self._parse_register_decl()
        if self._check_keyword("variable") or self._check_keyword("private"):
            return self._parse_variable_decl()
        if self._check_keyword("structure"):
            return self._parse_structure_decl()
        if self._check_keyword("type"):
            return self._parse_type_decl()
        if self._check(TokenKind.IDENT) and self._current.text == "mode":
            return self._parse_mode_decl()
        raise DevilParseError(
            f"expected a declaration, found {self._current}",
            self._location())

    def _parse_type_decl(self) -> ast.TypeDecl:
        location = self._location()
        self._expect_keyword("type", "at start of type declaration")
        name = self._expect_ident("as type name").text
        self._expect(TokenKind.ASSIGN, "after type name")
        type_expr = self._parse_type_expr()
        self._expect(TokenKind.SEMICOLON, "after type declaration")
        return ast.TypeDecl(name, type_expr, location)

    def _parse_mode_decl(self) -> ast.ModeDecl:
        location = self._location()
        self._expect_ident("at start of mode declaration")
        names = [self._expect_ident("as mode name").text]
        while self._accept(TokenKind.COMMA):
            names.append(self._expect_ident("as mode name").text)
        self._expect(TokenKind.SEMICOLON, "after mode declaration")
        return ast.ModeDecl(names, location)

    # -- registers ------------------------------------------------------

    def _parse_register_decl(self) -> ast.RegisterDecl:
        location = self._location()
        self._expect_keyword("register", "at start of register declaration")
        name = self._expect_ident("as register name").text
        params: list[ast.IndexParam] = []
        if self._accept(TokenKind.LPAREN):
            params.append(self._parse_index_param())
            while self._accept(TokenKind.COMMA):
                params.append(self._parse_index_param())
            self._expect(TokenKind.RPAREN, "after register parameters")
        self._expect(TokenKind.ASSIGN, "after register name")

        decl = ast.RegisterDecl(name, params=params, location=location)
        self._parse_register_rhs(decl)
        while self._accept(TokenKind.COMMA):
            self._parse_register_attr(decl)
        if self._accept(TokenKind.COLON):
            self._expect_keyword("bit", "in register width")
            self._expect(TokenKind.LBRACKET, "after 'bit'")
            decl.width = self._expect_int("as register width")
            self._expect(TokenKind.RBRACKET, "after register width")
        self._expect(TokenKind.SEMICOLON, "after register declaration")
        return decl

    def _parse_index_param(self) -> ast.IndexParam:
        location = self._location()
        name = self._expect_ident("as register parameter name").text
        self._expect(TokenKind.COLON, "after register parameter name")
        type_expr = self._parse_type_expr()
        return ast.IndexParam(name, type_expr, location)

    def _parse_register_rhs(self, decl: ast.RegisterDecl) -> None:
        """First clause after '=': a port, 'read/write port', or I(23)."""
        if self._check_keyword("read") or self._check_keyword("write"):
            self._parse_register_attr(decl)
            return
        # Either "ident @ off" (port) or "ident ( args )" (instantiation).
        location = self._location()
        name = self._expect_ident("as port or register constructor").text
        if self._check(TokenKind.LPAREN):
            self._advance()
            arguments = [self._expect_int("as constructor argument")]
            while self._accept(TokenKind.COMMA):
                arguments.append(self._expect_int("as constructor argument"))
            self._expect(TokenKind.RPAREN, "after constructor arguments")
            decl.base = ast.RegisterInstantiation(name, arguments, location)
            return
        port = self._finish_port_expr(name, location)
        decl.read_port = port
        decl.write_port = port

    def _finish_port_expr(self, base: str,
                          location: SourceLocation) -> ast.PortExpr:
        """Parse the optional ``@ offset`` clause.

        The offset is a constant, a register-constructor parameter, or
        a ``constant + parameter`` sum (either order), supporting the
        register-array idiom ``base @ 1 + i``.
        """
        offset = 0
        offset_param: str | None = None
        if self._accept(TokenKind.AT):
            if self._check(TokenKind.INT):
                offset = self._expect_int("as port offset")
                if self._accept_plus():
                    offset_param = self._expect_ident(
                        "as offset parameter").text
            else:
                offset_param = self._expect_ident(
                    "as port offset or parameter").text
                if self._accept_plus():
                    offset = self._expect_int("as offset constant")
        return ast.PortExpr(base, offset, offset_param, location)

    def _accept_plus(self) -> bool:
        return self._accept(TokenKind.PLUS) is not None

    def _parse_port_expr(self) -> ast.PortExpr:
        location = self._location()
        base = self._expect_ident("as port name").text
        return self._finish_port_expr(base, location)

    def _parse_register_attr(self, decl: ast.RegisterDecl) -> None:
        location = self._location()
        if self._accept_keyword("read"):
            if decl.read_port is not None and decl.write_port is decl.read_port:
                decl.write_port = None  # the bare port was write-implied
            if decl.read_port is not None and decl.write_port is not decl.read_port:
                raise DevilParseError("duplicate read port clause", location)
            decl.read_port = self._parse_port_expr()
        elif self._accept_keyword("write"):
            if decl.write_port is not None and decl.read_port is decl.write_port:
                decl.read_port = None
            elif decl.write_port is not None:
                raise DevilParseError("duplicate write port clause", location)
            decl.write_port = self._parse_port_expr()
        elif self._accept_keyword("mask"):
            if decl.mask_pattern is not None:
                raise DevilParseError("duplicate mask clause", location)
            token = self._expect(TokenKind.BITPATTERN, "after 'mask'")
            decl.mask_pattern = token.text
        elif self._accept_keyword("pre"):
            decl.pre_actions.extend(self._parse_action_block())
        elif self._accept_keyword("post"):
            decl.post_actions.extend(self._parse_action_block())
        elif self._accept_keyword("set"):
            decl.set_actions.extend(self._parse_action_block())
        elif self._check(TokenKind.IDENT) and self._current.text == "in":
            self._advance()
            if decl.mode is not None:
                raise DevilParseError("duplicate mode clause", location)
            decl.mode = self._expect_ident("as mode name").text
        else:
            raise DevilParseError(
                f"expected register attribute, found {self._current}",
                location)

    # -- variables ------------------------------------------------------

    def _parse_variable_decl(self) -> ast.VariableDecl:
        location = self._location()
        private = self._accept_keyword("private") is not None
        self._expect_keyword("variable", "at start of variable declaration")
        name = self._expect_ident("as variable name").text
        decl = ast.VariableDecl(name, private=private, location=location)

        if self._accept(TokenKind.ASSIGN):
            decl.chunks = [self._parse_chunk()]
            while self._accept(TokenKind.HASH):
                decl.chunks.append(self._parse_chunk())
        while self._accept(TokenKind.COMMA):
            self._parse_variable_attr(decl)
        if self._accept(TokenKind.COLON):
            decl.type_expr = self._parse_type_expr()
        if self._accept_keyword("serialized"):
            self._expect_keyword("as", "after 'serialized'")
            decl.serialization = self._parse_serialization_block()
        self._expect(TokenKind.SEMICOLON, "after variable declaration")
        return decl

    def _parse_chunk(self) -> ast.Chunk:
        location = self._location()
        register = self._expect_ident("as register name in chunk").text
        ranges: list[ast.BitRange] | None = None
        if self._accept(TokenKind.LBRACKET):
            ranges = [self._parse_bit_range()]
            while self._accept(TokenKind.COMMA):
                ranges.append(self._parse_bit_range())
            self._expect(TokenKind.RBRACKET, "after bit range")
        return ast.Chunk(register, ranges, location)

    def _parse_bit_range(self) -> ast.BitRange:
        location = self._location()
        msb = self._expect_int("as bit index")
        lsb = msb
        if self._accept(TokenKind.DOTDOT):
            lsb = self._expect_int("as bit index")
        if lsb > msb:
            raise DevilParseError(
                f"bit range {msb}..{lsb} is reversed (msb first)", location)
        return ast.BitRange(msb, lsb, location)

    def _parse_variable_attr(self, decl: ast.VariableDecl) -> None:
        location = self._location()
        if self._accept_keyword("volatile"):
            decl.behaviors.volatile = True
        elif self._accept_keyword("block"):
            decl.behaviors.block = True
        elif self._accept_keyword("set"):
            decl.set_actions.extend(self._parse_action_block())
        else:
            direction = ast.AccessDirection.BOTH
            if self._accept_keyword("read"):
                direction = ast.AccessDirection.READ
            elif self._accept_keyword("write"):
                direction = ast.AccessDirection.WRITE
            self._expect_keyword("trigger", "in behaviour qualifier")
            spec = ast.TriggerSpec(direction, location=location)
            if self._accept_keyword("except"):
                spec.except_symbol = self._expect_ident(
                    "as neutral value after 'except'").text
            elif self._accept_keyword("for"):
                spec.for_value = self._parse_action_value()
            if decl.behaviors.trigger is not None:
                raise DevilParseError(
                    "duplicate trigger qualifier", location)
            decl.behaviors.trigger = spec

    # -- structures -----------------------------------------------------

    def _parse_structure_decl(self) -> ast.StructureDecl:
        location = self._location()
        self._expect_keyword("structure", "at start of structure declaration")
        name = self._expect_ident("as structure name").text
        self._expect(TokenKind.ASSIGN, "after structure name")
        self._expect(TokenKind.LBRACE, "to open structure body")
        members: list[ast.VariableDecl] = []
        while not self._check(TokenKind.RBRACE):
            members.append(self._parse_variable_decl())
        self._expect(TokenKind.RBRACE, "to close structure body")
        serialization = None
        if self._accept_keyword("serialized"):
            self._expect_keyword("as", "after 'serialized'")
            serialization = self._parse_serialization_block()
        self._expect(TokenKind.SEMICOLON, "after structure declaration")
        return ast.StructureDecl(name, members, serialization, location)

    # -- serialization --------------------------------------------------

    def _parse_serialization_block(self) -> list[ast.SerStmt]:
        self._expect(TokenKind.LBRACE, "to open serialization block")
        statements: list[ast.SerStmt] = []
        while not self._check(TokenKind.RBRACE):
            statements.append(self._parse_ser_stmt())
        self._expect(TokenKind.RBRACE, "to close serialization block")
        return statements

    def _parse_ser_stmt(self) -> ast.SerStmt:
        location = self._location()
        if self._accept_keyword("if"):
            self._expect(TokenKind.LPAREN, "after 'if'")
            variable = self._expect_ident("as condition variable").text
            self._expect(TokenKind.EQ, "in serialization condition")
            value = self._parse_action_value()
            self._expect(TokenKind.RPAREN, "after serialization condition")
            body = self._parse_ser_stmt()
            return ast.SerIf(variable, value, body, location)
        register = self._expect_ident("as register in serialization").text
        # Semicolons separate steps; the one before '}' may be omitted,
        # matching the paper's "{cnt_low; cnt_high}" spelling.
        if not self._check(TokenKind.RBRACE):
            self._expect(TokenKind.SEMICOLON, "after serialization step")
        return ast.SerWrite(register, location)

    # -- actions --------------------------------------------------------

    def _parse_action_block(self) -> list[ast.Action]:
        self._expect(TokenKind.LBRACE, "to open action block")
        actions = [self._parse_action()]
        while self._accept(TokenKind.SEMICOLON):
            if self._check(TokenKind.RBRACE):
                break
            actions.append(self._parse_action())
        self._expect(TokenKind.RBRACE, "to close action block")
        return actions

    def _parse_action(self) -> ast.Action:
        location = self._location()
        target = self._expect_ident("as action target").text
        self._expect(TokenKind.ASSIGN, "in action")
        value = self._parse_action_value()
        return ast.Action(target, value, location)

    def _parse_action_value(self) -> ast.ActionValue:
        location = self._location()
        token = self._current
        if token.kind is TokenKind.INT:
            self._advance()
            assert token.value is not None
            return ast.IntValue(token.value, location)
        if token.kind is TokenKind.STAR:
            self._advance()
            return ast.WildcardValue(location)
        if token.is_keyword("true"):
            self._advance()
            return ast.BoolValue(True, location)
        if token.is_keyword("false"):
            self._advance()
            return ast.BoolValue(False, location)
        if token.kind is TokenKind.IDENT:
            self._advance()
            return ast.SymbolValue(token.text, location)
        if token.kind is TokenKind.LBRACE:
            self._advance()
            fields = [self._parse_struct_field()]
            while self._accept(TokenKind.SEMICOLON):
                if self._check(TokenKind.RBRACE):
                    break
                fields.append(self._parse_struct_field())
            self._expect(TokenKind.RBRACE, "to close structure value")
            return ast.StructValue(fields, location)
        raise DevilParseError(
            f"expected a value, found {self._current}", location)

    def _parse_struct_field(self) -> tuple[str, ast.ActionValue]:
        name = self._expect_ident("as structure field name").text
        self._expect(TokenKind.ARROW_WRITE, "after structure field name")
        return (name, self._parse_action_value())

    # -- types ----------------------------------------------------------

    def _parse_type_expr(self) -> ast.TypeExpr:
        location = self._location()
        if self._accept_keyword("bool"):
            return ast.BoolTypeExpr(location)
        if self._check_keyword("signed"):
            self._advance()
            self._expect_keyword("int", "after 'signed'")
            self._expect(TokenKind.LPAREN, "after 'int'")
            width = self._expect_int("as integer width")
            self._expect(TokenKind.RPAREN, "after integer width")
            return ast.IntTypeExpr(width, signed=True, location=location)
        if self._accept_keyword("int"):
            if self._accept(TokenKind.LPAREN):
                width = self._expect_int("as integer width")
                self._expect(TokenKind.RPAREN, "after integer width")
                return ast.IntTypeExpr(width, signed=False, location=location)
            self._expect(TokenKind.LBRACE, "after 'int'")
            ranges = self._parse_int_ranges("in integer set type")
            self._expect(TokenKind.RBRACE, "to close integer set type")
            return ast.IntSetTypeExpr(ranges, location)
        if self._check(TokenKind.LBRACE):
            return self._parse_enum_type_expr()
        if self._check(TokenKind.IDENT):
            name = self._advance().text
            return ast.NamedTypeExpr(name, location)
        raise DevilParseError(
            f"expected a type, found {self._current}", location)

    def _parse_enum_type_expr(self) -> ast.EnumTypeExpr:
        location = self._location()
        self._expect(TokenKind.LBRACE, "to open enumerated type")
        items = [self._parse_enum_item()]
        while self._accept(TokenKind.COMMA):
            items.append(self._parse_enum_item())
        self._expect(TokenKind.RBRACE, "to close enumerated type")
        return ast.EnumTypeExpr(items, location)

    def _parse_enum_item(self) -> ast.EnumItemExpr:
        location = self._location()
        name = self._expect_ident("as enumerated symbol").text
        if self._accept(TokenKind.ARROW_WRITE):
            direction = EnumDirection.WRITE
        elif self._accept(TokenKind.ARROW_READ):
            direction = EnumDirection.READ
        elif self._accept(TokenKind.ARROW_BOTH):
            direction = EnumDirection.BOTH
        else:
            raise DevilParseError(
                f"expected '=>', '<=' or '<=>' after symbol {name!r}, "
                f"found {self._current}", self._location())
        pattern = self._expect(TokenKind.BITPATTERN,
                               "as enumerated value").text
        return ast.EnumItemExpr(name, pattern, direction, location)


def parse(source: str, filename: str = "<devil>") -> ast.DeviceDecl:
    """Parse a complete Devil specification from ``source``."""
    return Parser(source, filename).parse_device()
