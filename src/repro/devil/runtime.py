"""Executable stub runtime for checked Devil specifications.

The paper's compiler emits C macros (Figure 3c) that a driver includes;
this module provides the equivalent executable artifact for the Python
reproduction: :class:`DeviceInstance` interprets the resolved model of a
specification and exposes one ``get_<var>``/``set_<var>`` stub pair per
public device variable, ``get_<structure>``/``set_<structure>`` stubs
per structure, and ``read_<var>_block``/``write_<var>_block`` stubs for
``block`` variables.

Semantics implemented (§2.1–2.2 of the paper):

* register masks — forced bits are OR-ed into every write, irrelevant
  bits cleared;
* pre/post actions — run around every access of their register, which
  is how index-based addressing and banked registers are driven;
* ``set`` actions — update private memory variables after an access,
  modelling addressing automata such as the CS4236B's ``xm`` mode bit;
* caching — the last written/read raw value of every register is kept
  so that writing one variable of a shared register preserves its
  idempotent neighbours;
* trigger neutrality — when a shared register is written on behalf of
  one variable, write-trigger neighbours receive their neutral value;
* structures — one ``get`` performs the grouped read (each register
  exactly once, volatile-consistent), after which member stubs read
  the cache, exactly like ``bm_get_mouse_state`` / ``bm_get_dy``;
* serialization — multi-register variables and structures perform
  their I/O in the specified order, including conditional steps;
* block transfer — ``block`` variables move whole buffers with one
  accounted bus operation, the Pentium ``rep`` equivalence.

Debug mode adds the run-time checks of §3.2: range/enum validation on
writes, validation of values the device delivers on reads, and the
"structure must be fetched before its members" protocol.
"""

from __future__ import annotations

from typing import Iterable

from .. import obs
from ..bus import Bus
from .errors import DevilRuntimeError, SourceLocation, UNKNOWN_LOCATION
from .mask import extract_bits, insert_bits
from .model import (
    ParamRef,
    ResolvedAction,
    ResolvedDevice,
    ResolvedRegister,
    ResolvedValue,
    ResolvedVariable,
    VarRef,
    Wildcard,
)
from .plan import access_plan


class DeviceInstance:
    """One device bound to a bus at concrete base addresses.

    ``bases`` maps every port parameter of the specification to the
    absolute bus address it was mapped at — the run-time analogue of
    passing ``base`` to the ``logitech_busmouse`` declaration.

    In addition to the generic :meth:`get`/:meth:`set` API, one bound
    method per public variable and structure is attached at
    construction time (``get_dx``, ``set_config``, ``get_mouse_state``,
    ...), mirroring the per-variable stubs of the paper.
    """

    def __init__(self, model: ResolvedDevice, bus: Bus,
                 bases: dict[str, int], debug: bool = True,
                 composition: str = "cache",
                 strategy: str = "interpret",
                 shadow_cache: bool = False):
        missing = set(model.params) - set(bases)
        if missing:
            raise DevilRuntimeError(
                f"no base address for port parameter(s) {sorted(missing)}",
                model.location)
        if composition not in ("cache", "read-modify-write"):
            raise DevilRuntimeError(
                f"unknown composition strategy {composition!r}",
                model.location)
        if strategy not in ("interpret", "specialize"):
            raise DevilRuntimeError(
                f"unknown execution strategy {strategy!r} (choose "
                f"'interpret', 'specialize', 'native' or 'auto'; "
                f"'native'/'auto' dispatch via CompiledSpec.bind)",
                model.location)
        self.model = model
        self.bus = bus
        self.bases = dict(bases)
        self.debug = debug
        #: How neighbour bits are supplied when writing one variable of
        #: a shared register.  ``"cache"`` is Devil's strategy (§2.1:
        #: idempotent values "can be cached"); ``"read-modify-write"``
        #: is the naive alternative — re-read the register first — which
        #: costs an extra I/O per write and is *wrong* for write-only
        #: registers and non-idempotent reads.  Kept for the ablation
        #: benchmark.
        self.composition = composition
        #: How stubs execute.  ``"interpret"`` walks the resolved model
        #: on every call; ``"specialize"`` partially evaluates the model
        #: at bind time into straight-line closures with all masks,
        #: shifts and port addresses folded to literals (see
        #: :mod:`repro.devil.specialize`).  Semantics are identical.
        self.strategy = strategy
        #: Static access plan: per-register cacheable/volatile/trigger
        #: classification derived from the behaviour qualifiers.
        self.plan = access_plan(model)
        #: Shadow caching elides reads of registers whose last raw value
        #: is still authoritative (non-volatile, no trigger anywhere on
        #: the register).  It requires the write-composition cache: the
        #: read-modify-write ablation deliberately re-reads the device,
        #: so eliding those reads would change what it measures.
        self.shadow_cache = bool(shadow_cache) and composition == "cache"
        #: Registers whose ``_register_cache`` entry mirrors the device
        #: (None when shadow caching is off, so the common path costs
        #: one ``is not None`` test).
        self._shadow_valid: set[str] | None = \
            set() if self.shadow_cache else None
        #: Last known raw value per register (write composition cache).
        self._register_cache: dict[str, int] = {}
        #: Raw register snapshots per structure, taken by get_<struct>.
        self._structure_cache: dict[str, dict[str, int]] = {}
        #: Values of private memory variables.
        self._memory: dict[str, object] = {}
        #: Last abstract value written per variable (for set-actions
        #: and serialization conditions).
        self._last_written: dict[str, object] = {}
        if model.modes:
            # Devices with conditional declarations reset into their
            # first declared mode.
            self._memory["device_mode"] = model.modes[0]
            self._last_written["device_mode"] = model.modes[0]
        #: Active transaction state, or None (see :meth:`transaction`).
        self._txn: dict | None = None
        #: Specialized per-register flush writers (name -> callable),
        #: attached by :mod:`repro.devil.specialize`; None falls back
        #: to the generic compose-and-write path.
        self._txn_writers: dict | None = None
        #: Per-variable ``(registers tuple, write-triggers)`` pairs,
        #: filled lazily by :meth:`_defer_write` (the defer path runs
        #: once per set call inside a transaction, so the model walk is
        #: paid once per variable, not once per defer).
        self._defer_info: dict[str, tuple] = {}
        #: Variables with ``set { ... }`` actions; the flush consults
        #: this instead of walking the model per deferred variable.
        self._set_action_vars = frozenset(
            name for name, variable in model.variables.items()
            if variable.set_actions)
        #: Decided at bind time so disabled telemetry costs nothing:
        #: uninstrumented instances carry exactly the stubs an
        #: observability-free build would (see :mod:`repro.obs`).
        self._instrumented = obs.is_enabled()
        self._attach_stubs()
        if strategy == "specialize":
            # Deferred import: the specializer imports nothing at module
            # scope that depends on this module's load order, but the
            # lazy import keeps the interpreted path dependency-free.
            from .specialize import specialize_instance
            specialize_instance(self)
        if self._instrumented:
            # Wrap the final public stub surface (interpreted closures
            # or the specialized replacements) in span-opening wrappers.
            obs.instrument_instance(self)

    # ------------------------------------------------------------------
    # Stub attachment
    # ------------------------------------------------------------------

    def _attach_stubs(self) -> None:
        for variable in self.model.public_variables():
            name = variable.name
            if self._variable_readable(variable):
                setattr(self, f"get_{name}",
                        _bind_getter(self, name))
            if self._variable_writable(variable):
                setattr(self, f"set_{name}",
                        _bind_setter(self, name))
            if variable.behaviors.block:
                if self._variable_readable(variable):
                    setattr(self, f"read_{name}_block",
                            _bind_block_reader(self, name))
                if self._variable_writable(variable):
                    setattr(self, f"write_{name}_block",
                            _bind_block_writer(self, name))
        for structure in self.model.structures.values():
            if self._structure_readable(structure.name):
                setattr(self, f"get_{structure.name}",
                        _bind_struct_getter(self, structure.name))
            if self._structure_writable(structure.name):
                setattr(self, f"set_{structure.name}",
                        _bind_struct_setter(self, structure.name))

    def _variable_readable(self, variable: ResolvedVariable) -> bool:
        if variable.memory:
            return True
        return all(self.model.registers[c.register].readable
                   for c in variable.chunks)

    def _variable_writable(self, variable: ResolvedVariable) -> bool:
        if variable.memory:
            return True
        return all(self.model.registers[c.register].writable
                   for c in variable.chunks)

    def _structure_readable(self, name: str) -> bool:
        structure = self.model.structures[name]
        return all(self._variable_readable(self.model.variables[m])
                   for m in structure.members)

    def _structure_writable(self, name: str) -> bool:
        structure = self.model.structures[name]
        return all(self._variable_writable(self.model.variables[m])
                   for m in structure.members)

    # ------------------------------------------------------------------
    # Port arithmetic
    # ------------------------------------------------------------------

    def _address(self, port: tuple[str, int]) -> int:
        base, offset = port
        return self.bases[base] + offset

    def _port_width(self, port: tuple[str, int]) -> int:
        return self.model.params[port[0]].data_width

    # ------------------------------------------------------------------
    # Raw register access (pre/post/set actions included)
    # ------------------------------------------------------------------

    def _run_actions(self, actions: list[ResolvedAction],
                     context: dict[str, object],
                     kind: str = "reg-set") -> None:
        if not actions:
            return
        collector = self.bus.collector
        for action in actions:
            if collector is not None:
                collector.record_action(kind, action.target)
            value = self._eval_value(action.value, context,
                                     action.location)
            if action.target_kind == "structure":
                assert isinstance(value, dict)
                self.set_structure(action.target, value)
            else:
                self.set(action.target, value)

    def _eval_value(self, value: ResolvedValue,
                    context: dict[str, object],
                    location: SourceLocation) -> object:
        if isinstance(value, Wildcard):
            return 0  # any value is acceptable; stubs write zero
        if isinstance(value, ParamRef):
            raise DevilRuntimeError(
                f"unsubstituted constructor parameter {value.name!r}",
                location)
        if isinstance(value, VarRef):
            if value.name in context:
                return context[value.name]
            if value.name in self._last_written:
                return self._last_written[value.name]
            raise DevilRuntimeError(
                f"action reads variable {value.name!r} before any value "
                f"was written to it", location)
        if isinstance(value, dict):
            return {name: self._eval_value(inner, context, location)
                    for name, inner in value.items()}
        return value  # literal int / bool / enum symbol (str)

    def _check_mode(self, register) -> None:
        """Debug check: the register's mode must be the current mode."""
        if not self.debug or register.mode is None:
            return
        current = self._memory.get("device_mode")
        if current != register.mode:
            raise DevilRuntimeError(
                f"register {register.name!r} is only addressable in mode "
                f"{register.mode!r}, but the device is in {current!r}",
                register.location)

    def read_register(self, name: str,
                      context: dict[str, object] | None = None) -> int:
        """Read one register, honouring pre/post/set actions and cache."""
        register = self.model.registers[name]
        if register.read_port is None:
            raise DevilRuntimeError(
                f"register {name!r} is write-only", register.location)
        self._check_mode(register)
        context = context or {}
        self._run_actions(register.pre_actions, context, kind="pre")
        raw = self.bus.read(self._address(register.read_port),
                            self._port_width(register.read_port))
        shadow = self._shadow_valid
        if shadow is not None:
            plan = self.plan[name]
            if plan.read_barrier:
                # A read trigger may have changed any register.
                shadow.clear()
            elif plan.read_elidable:
                shadow.add(name)
        self._run_actions(register.post_actions, context, kind="post")
        self._run_actions(register.set_actions, context)
        self._register_cache[name] = raw
        return raw

    def write_register(self, name: str, raw: int,
                       context: dict[str, object] | None = None) -> None:
        """Write one register: mask applied, actions run, cache updated."""
        register = self.model.registers[name]
        if register.write_port is None:
            raise DevilRuntimeError(
                f"register {name!r} is read-only", register.location)
        self._check_mode(register)
        context = context or {}
        self._run_actions(register.pre_actions, context, kind="pre")
        self.bus.write(register.mask.apply_write(raw),
                       self._address(register.write_port),
                       self._port_width(register.write_port))
        shadow = self._shadow_valid
        if shadow is not None:
            plan = self.plan[name]
            if plan.write_barrier:
                # A write trigger may have changed any register.
                shadow.clear()
            elif plan.read_elidable:
                shadow.add(name)
        self._run_actions(register.post_actions, context, kind="post")
        self._run_actions(register.set_actions, context)
        self._register_cache[name] = raw & register.mask.variable_bits

    # ------------------------------------------------------------------
    # Value (de)composition
    # ------------------------------------------------------------------

    @staticmethod
    def _assemble(variable: ResolvedVariable,
                  raw_registers: dict[str, int]) -> int:
        """Concatenate the variable's chunks (MSB-first) from raw values."""
        value = 0
        for chunk in variable.chunks:
            raw = raw_registers[chunk.register]
            value = (value << chunk.width) | extract_bits(
                raw, chunk.msb, chunk.lsb)
        return value

    def _compose_register_write(self, register: ResolvedRegister,
                                updates: dict[str, int]) -> int:
        """Raw value to write to ``register`` given new variable bits.

        ``updates`` maps variable names to their new raw values.  Other
        variables on the register contribute their cached bits if
        idempotent, or their neutral value if write-trigger (§2.1:
        "the Devil compiler has to determine a value to assign to the
        other variables").
        """
        if self.composition == "read-modify-write" and \
                register.readable and \
                len(self.model.variables_of_register(register.name)) > 1:
            # Ablation strategy: refresh neighbour bits from the device
            # instead of the cache (one extra read per shared write).
            self.read_register(register.name)
        raw = self._register_cache.get(register.name, 0)
        for neighbour in self.model.variables_of_register(register.name):
            if neighbour.name in updates:
                new_bits = updates[neighbour.name]
                for chunk, value_lsb in neighbour.chunks_of(register.name):
                    raw = insert_bits(
                        raw, chunk.msb, chunk.lsb,
                        extract_bits(new_bits,
                                     value_lsb + chunk.width - 1,
                                     value_lsb))
            elif neighbour.behaviors.write_triggers and \
                    neighbour.trigger_neutral_raw is not None:
                neutral = neighbour.trigger_neutral_raw
                for chunk, value_lsb in neighbour.chunks_of(register.name):
                    raw = insert_bits(
                        raw, chunk.msb, chunk.lsb,
                        extract_bits(neutral,
                                     value_lsb + chunk.width - 1,
                                     value_lsb))
            # Idempotent neighbours keep their cached bits (already in
            # ``raw``); the default cache is zero, as in the generated
            # C where the cache struct is zero-initialised.
        return raw

    # ------------------------------------------------------------------
    # Variable access
    # ------------------------------------------------------------------

    def _lookup(self, name: str) -> ResolvedVariable:
        variable = self.model.variables.get(name)
        if variable is None:
            raise DevilRuntimeError(f"unknown variable {name!r}",
                                    self.model.location)
        return variable

    def get(self, name: str) -> object:
        """Read device variable ``name`` (performs the I/O)."""
        self._flush_pending()
        variable = self._lookup(name)
        if variable.memory:
            if name not in self._memory:
                raise DevilRuntimeError(
                    f"memory variable {name!r} read before initialisation",
                    variable.location)
            return self._memory[name]
        if variable.structure is not None:
            return self._get_member(variable)
        shadow = self._shadow_valid
        if shadow is not None and self.plan.variable_elidable(variable):
            registers = variable.registers()
            if all(name in shadow for name in registers):
                return self._get_elided(variable, registers)
        raw_registers: dict[str, int] = {}
        for register_name in variable.registers():
            raw_registers[register_name] = self.read_register(register_name)
        raw = self._assemble(variable, raw_registers)
        return self._decode(variable, raw)

    def _get_elided(self, variable: ResolvedVariable,
                    registers: list[str]) -> object:
        """Serve a read from the shadow cache: no port I/O, no actions.

        Debug mode checks still run; instrumented instances report the
        elided accesses so traces stay honest about what was skipped.
        """
        cache = self._register_cache
        report = self._instrumented and self.bus.tracing and \
            self.bus.collector is not None
        raw_registers: dict[str, int] = {}
        for register_name in registers:
            register = self.model.registers[register_name]
            self._check_mode(register)
            raw = cache.get(register_name, 0)
            raw_registers[register_name] = raw
            if report:
                port = register.read_port
                self.bus.collector.io_event(
                    "r", self._address(port),
                    raw & register.mask.variable_bits,
                    self._port_width(port), 1, True)
        self.bus.note_elided(len(registers))
        raw = self._assemble(variable, raw_registers)
        return self._decode(variable, raw)

    def _get_member(self, variable: ResolvedVariable) -> object:
        """Structure members read the snapshot, never the device."""
        assert variable.structure is not None
        snapshot = self._structure_cache.get(variable.structure)
        if snapshot is None:
            if self.debug:
                raise DevilRuntimeError(
                    f"variable {variable.name!r} read before its "
                    f"structure {variable.structure!r} was fetched — "
                    f"call get_{variable.structure}() first",
                    variable.location)
            snapshot = {chunk.register: 0 for chunk in variable.chunks}
        raw = self._assemble(variable, snapshot)
        return self._decode(variable, raw)

    def _decode(self, variable: ResolvedVariable, raw: int) -> object:
        if self.debug:
            return variable.type.decode(raw, variable.location)
        try:
            return variable.type.decode(raw, variable.location)
        except DevilRuntimeError:
            return raw  # release builds skip the §3.2 read checks

    def set(self, name: str, value: object) -> None:
        """Write device variable ``name`` (performs the I/O).

        Inside a :meth:`transaction`, the write is deferred and
        coalesced with other writes to the same register.
        """
        variable = self._lookup(name)
        raw = self._encode(variable, value)
        if variable.memory:
            self._memory[name] = value
            self._last_written[name] = value
            return
        if self._txn is not None:
            self._defer_write(variable, value, raw)
            return
        updates = {name: raw}
        for register_name in variable.registers():
            register = self.model.registers[register_name]
            composed = self._compose_register_write(register, updates)
            self.write_register(register_name, composed,
                                context={name: value})
        self._last_written[name] = value
        self._run_actions(variable.set_actions, {name: value},
                          kind="var-set")

    # ------------------------------------------------------------------
    # Transactions: factorized device communication (§6 future work)
    # ------------------------------------------------------------------

    def transaction(self) -> "_TransactionBlock":
        """Coalesce variable writes into one I/O operation per register.

        The paper's future work proposes "factorizing and scheduling
        device communications" at the compiler level; this is the
        runtime form.  Within the block, ``set_<var>()`` calls are
        deferred; on exit each touched register is written exactly
        once, composed from every new value — so setting the three
        device/head fields of the IDE controller costs one ``outb``,
        like the hand-written driver's ``outb(0xE0 | ...)``, and
        starting the NE2000 while issuing a remote-DMA command composes
        ``START | REMOTE_READ`` into a single command write.

        Reads inside the block first flush pending writes (program
        order is preserved across the read).  Transactions do not
        nest.
        """
        return _TransactionBlock(self)

    def txn(self) -> "_TransactionBlock":
        """Short alias for :meth:`transaction`."""
        return _TransactionBlock(self)

    def _defer_write(self, variable: ResolvedVariable, value: object,
                     raw: int) -> None:
        txn = self._txn
        assert txn is not None
        info = self._defer_info.get(variable.name)
        if info is None:
            info = (tuple(variable.registers()),
                    variable.behaviors.write_triggers)
            self._defer_info[variable.name] = info
        registers, write_triggers = info
        if write_triggers:
            # Trigger barrier: a repeated write to a write-trigger
            # variable must reach the device twice — last-write-wins
            # merging would drop a side effect.  Flush, then re-defer.
            for register_name in registers:
                pending = txn["registers"].get(register_name)
                if pending is not None and variable.name in pending:
                    self._flush_pending()
                    txn = self._txn
                    break
        txn_registers = txn["registers"]
        order = txn["order"]
        for register_name in registers:
            per_register = txn_registers.get(register_name)
            if per_register is None:
                txn_registers[register_name] = per_register = {}
                order.append(register_name)
            per_register[variable.name] = raw
        txn["variables"][variable.name] = value
        # Count the register writes an immediate set would have cost;
        # the flush performs len(order) of them, the rest coalesced.
        txn["deferred"] += len(registers)
        self._last_written[variable.name] = value
        if self._instrumented:
            collector = self.bus.collector
            if collector is not None:
                collector.mark_coalesced()

    def _flush_pending(self) -> None:
        """Flush an open transaction (called before reads)."""
        if self._txn is None:
            return
        transaction, self._txn = self._txn, None
        self._flush_transaction(transaction)
        self._txn = {"registers": {}, "order": [], "variables": {},
                     "deferred": 0}

    def _flush_transaction(self, transaction: dict) -> None:
        if not transaction["order"]:
            return
        collector = self.bus.collector if self._instrumented else None
        if collector is not None:
            collector.span_start(self.model.name, "txn_flush", "*",
                                 "txn", self.strategy)
            try:
                self._flush_transaction_body(transaction)
            except BaseException as error:
                collector.span_end(error=type(error).__name__)
                raise
            collector.span_end()
        else:
            self._flush_transaction_body(transaction)

    def _flush_transaction_body(self, transaction: dict) -> None:
        writers = self._txn_writers
        values = None
        for register_name in transaction["order"]:
            writer = None if writers is None \
                else writers.get(register_name)
            if writer is not None:
                writer(transaction["registers"][register_name])
                continue
            if values is None:
                values = dict(transaction["variables"])
            register = self.model.registers[register_name]
            updates = transaction["registers"][register_name]
            composed = self._compose_register_write(register, updates)
            self.write_register(register_name, composed, context=values)
        merged = transaction["deferred"] - len(transaction["order"])
        if merged > 0:
            self.bus.note_coalesced(merged)
        set_action_vars = self._set_action_vars
        if set_action_vars:
            for variable_name in transaction["variables"]:
                if variable_name not in set_action_vars:
                    continue
                if values is None:
                    values = dict(transaction["variables"])
                variable = self.model.variables[variable_name]
                self._run_actions(variable.set_actions, values,
                                  kind="var-set")

    def _encode(self, variable: ResolvedVariable, value: object) -> int:
        if self.debug:
            return variable.type.encode(value, variable.location)
        try:
            return variable.type.encode(value, variable.location)
        except DevilRuntimeError:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value & ((1 << variable.type.width) - 1)
            raise

    # ------------------------------------------------------------------
    # Structure access
    # ------------------------------------------------------------------

    def _structure(self, name: str):
        structure = self.model.structures.get(name)
        if structure is None:
            raise DevilRuntimeError(f"unknown structure {name!r}",
                                    self.model.location)
        return structure

    def _structure_registers(self, name: str) -> list[str]:
        """Registers of a structure's members, first-use order, deduped."""
        structure = self._structure(name)
        ordered: list[str] = []
        for member_name in structure.members:
            member = self.model.variables[member_name]
            for chunk in member.chunks:
                if chunk.register not in ordered:
                    ordered.append(chunk.register)
        return ordered

    def get_structure(self, name: str) -> dict[str, object]:
        """Grouped read: each member register exactly once (§2.1).

        Returns the decoded member values; member stubs subsequently
        read the same snapshot, so ``dy`` and ``buttons`` observe the
        single read of ``y_high`` — exactly Figure 3c.
        """
        self._flush_pending()
        structure = self._structure(name)
        snapshot: dict[str, int] = {}
        for register_name in self._structure_registers(name):
            snapshot[register_name] = self.read_register(register_name)
        self._structure_cache[name] = snapshot
        result = {}
        for member_name in structure.members:
            member = self.model.variables[member_name]
            raw = self._assemble(member, snapshot)
            result[member_name] = self._decode(member, raw)
        return result

    def set_structure(self, name: str, values: dict[str, object]) -> None:
        """Grouped write, honouring the serialization clause.

        ``values`` must provide every member (the checker enforces the
        same rule on structure-valued actions); conditional
        serialization steps are evaluated against these values, which
        is how the 8259A's mode-dependent init sequence is driven.
        """
        self._flush_pending()
        structure = self._structure(name)
        missing = set(structure.members) - set(values)
        if missing:
            raise DevilRuntimeError(
                f"structure write of {name!r} must provide every member "
                f"(missing: {sorted(missing)})", structure.location)
        unknown = set(values) - set(structure.members)
        if unknown:
            raise DevilRuntimeError(
                f"unknown member(s) {sorted(unknown)} in structure write "
                f"of {name!r}", structure.location)
        updates = {}
        for member_name, value in values.items():
            member = self.model.variables[member_name]
            updates[member_name] = self._encode(member, value)

        if structure.serialization is not None:
            steps = structure.serialization
        else:
            steps = [_PlainStep(register)
                     for register in self._structure_registers(name)]
        for step in steps:
            if step.condition is not None:
                variable_name, expected_raw = step.condition
                if updates.get(variable_name) != expected_raw:
                    continue
            register = self.model.registers[step.register]
            composed = self._compose_register_write(register, updates)
            self.write_register(step.register, composed, context=dict(values))
        for member_name, value in values.items():
            member = self.model.variables[member_name]
            self._last_written[member_name] = value
            self._run_actions(member.set_actions, dict(values),
                              kind="var-set")

    # ------------------------------------------------------------------
    # Block transfer
    # ------------------------------------------------------------------

    def _block_variable(self, name: str) -> ResolvedVariable:
        variable = self._lookup(name)
        if not variable.behaviors.block:
            raise DevilRuntimeError(
                f"variable {name!r} has no 'block' behaviour",
                variable.location)
        if len(variable.chunks) != 1:
            raise DevilRuntimeError(
                f"block variable {name!r} must cover one whole register",
                variable.location)
        chunk = variable.chunks[0]
        register = self.model.registers[chunk.register]
        if chunk.width != register.width or chunk.lsb != 0:
            raise DevilRuntimeError(
                f"block variable {name!r} must cover one whole register",
                variable.location)
        return variable

    def read_block(self, name: str, count: int) -> list[int]:
        """Block read: one accounted bus operation for ``count`` words.

        Models the processor-specific ``rep`` stub of §2.2 ("Block
        transfer"): pre-actions run once, then the transfer is
        hardware-paced.
        """
        self._flush_pending()
        variable = self._block_variable(name)
        register = self.model.registers[variable.chunks[0].register]
        if register.read_port is None:
            raise DevilRuntimeError(
                f"register {register.name!r} is write-only",
                register.location)
        self._run_actions(register.pre_actions, {}, kind="pre")
        values = self.bus.block_read(self._address(register.read_port),
                                     count,
                                     self._port_width(register.read_port))
        if self._shadow_valid is not None:
            # Hardware-paced transfers step the device's internal state.
            self._shadow_valid.clear()
        self._run_actions(register.post_actions, {}, kind="post")
        self._run_actions(register.set_actions, {})
        return values

    def write_block(self, name: str, values: Iterable[int]) -> int:
        """Block write counterpart of :meth:`read_block`."""
        self._flush_pending()
        variable = self._block_variable(name)
        register = self.model.registers[variable.chunks[0].register]
        if register.write_port is None:
            raise DevilRuntimeError(
                f"register {register.name!r} is read-only",
                register.location)
        self._run_actions(register.pre_actions, {}, kind="pre")
        count = self.bus.block_write(self._address(register.write_port),
                                     values,
                                     self._port_width(register.write_port))
        if self._shadow_valid is not None:
            self._shadow_valid.clear()
        self._run_actions(register.post_actions, {}, kind="post")
        self._run_actions(register.set_actions, {})
        return count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def cached_register(self, name: str) -> int | None:
        """Last known raw value of a register (None if never accessed)."""
        return self._register_cache.get(name)

    def invalidate_caches(self) -> None:
        """Drop every cache (e.g. after a device reset)."""
        self._register_cache.clear()
        self._structure_cache.clear()
        if self._shadow_valid is not None:
            self._shadow_valid.clear()


class _TransactionBlock:
    """The ``with device.txn():`` context manager.

    A plain class rather than ``@contextmanager``: opening a
    transaction sits on driver hot paths (one per coalesced command
    setup), and the generator protocol costs several times the two
    attribute assignments actually needed.  The flush runs on *every*
    exit, exceptional or not, matching a ``try/finally`` around the
    block body.
    """

    __slots__ = ("instance",)

    def __init__(self, instance: "DeviceInstance"):
        self.instance = instance

    def __enter__(self) -> "DeviceInstance":
        instance = self.instance
        if instance._txn is not None:
            raise DevilRuntimeError("transactions do not nest",
                                    instance.model.location)
        instance._txn = {"registers": {}, "order": [], "variables": {},
                         "deferred": 0}
        return instance

    def __exit__(self, exc_type, exc, tb) -> bool:
        instance = self.instance
        transaction, instance._txn = instance._txn, None
        instance._flush_transaction(transaction)
        return False


class _PlainStep:
    """Unconditional serialization step used when none was declared."""

    __slots__ = ("register", "condition")

    def __init__(self, register: str):
        self.register = register
        self.condition = None


# ---------------------------------------------------------------------------
# Bound stub factories (kept top-level so instances stay picklable-ish
# and the closures are easy to read)
# ---------------------------------------------------------------------------


def _bind_getter(instance: DeviceInstance, name: str):
    def getter():
        return instance.get(name)
    getter.__name__ = f"get_{name}"
    getter.__doc__ = f"Read device variable {name!r}."
    return getter


def _bind_setter(instance: DeviceInstance, name: str):
    def setter(value):
        instance.set(name, value)
    setter.__name__ = f"set_{name}"
    setter.__doc__ = f"Write device variable {name!r}."
    return setter


def _bind_struct_getter(instance: DeviceInstance, name: str):
    def getter():
        return instance.get_structure(name)
    getter.__name__ = f"get_{name}"
    getter.__doc__ = f"Fetch structure {name!r} (grouped register read)."
    return getter


def _bind_struct_setter(instance: DeviceInstance, name: str):
    def setter(**values):
        instance.set_structure(name, values)
    setter.__name__ = f"set_{name}"
    setter.__doc__ = f"Write structure {name!r} (serialized register writes)."
    return setter


def _bind_block_reader(instance: DeviceInstance, name: str):
    def reader(count: int):
        return instance.read_block(name, count)
    reader.__name__ = f"read_{name}_block"
    reader.__doc__ = f"Block-read ``count`` words through {name!r}."
    return reader


def _bind_block_writer(instance: DeviceInstance, name: str):
    def writer(values):
        return instance.write_block(name, values)
    writer.__name__ = f"write_{name}_block"
    writer.__doc__ = f"Block-write a buffer through {name!r}."
    return writer
