"""Pretty-printer: render a Devil AST back to concrete syntax.

The printer closes the loop on the front end: for any specification,
``parse(print(parse(source)))`` must equal ``parse(source)`` up to
source locations — a property the test suite checks over the whole
shipped library.  It is also what a formatter or a spec-publishing
pipeline (the paper's planned WWW repository of specifications) would
use.
"""

from __future__ import annotations

from . import ast
from .types import EnumDirection


def print_device(device: ast.DeviceDecl) -> str:
    """Render a full specification."""
    params = ",\n        ".join(_param(p) for p in device.params)
    lines = [f"device {device.name} ({params})", "{"]
    for declaration in device.declarations:
        lines.append(_indent(_declaration(declaration)))
    lines.append("}")
    return "\n".join(lines) + "\n"


def _indent(text: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line if line else line
                     for line in text.splitlines())


def _param(param: ast.PortParam) -> str:
    ranges = ",".join(_int_range(low, high) for low, high in param.offsets)
    return f"{param.name} : bit[{param.data_width}] port @ {{{ranges}}}"


def _int_range(low: int, high: int) -> str:
    return str(low) if low == high else f"{low}..{high}"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


def _declaration(declaration: ast.Declaration) -> str:
    if isinstance(declaration, ast.ModeDecl):
        return "mode " + ", ".join(declaration.names) + ";"
    if isinstance(declaration, ast.RegisterDecl):
        return _register(declaration)
    if isinstance(declaration, ast.VariableDecl):
        return _variable(declaration)
    if isinstance(declaration, ast.StructureDecl):
        return _structure(declaration)
    if isinstance(declaration, ast.TypeDecl):
        return f"type {declaration.name} = " \
            f"{_type_expr(declaration.type_expr)};"
    raise TypeError(f"unknown declaration {declaration!r}")


def _register(decl: ast.RegisterDecl) -> str:
    head = f"register {decl.name}"
    if decl.params:
        inner = ", ".join(f"{p.name} : {_type_expr(p.type_expr)}"
                          for p in decl.params)
        head += f"({inner})"
    clauses: list[str] = []
    if decl.base is not None:
        arguments = ", ".join(str(a) for a in decl.base.arguments)
        clauses.append(f"{decl.base.constructor}({arguments})")
    elif decl.read_port is decl.write_port:
        clauses.append(_port(decl.read_port))
    else:
        if decl.read_port is not None:
            clauses.append(f"read {_port(decl.read_port)}")
        if decl.write_port is not None:
            clauses.append(f"write {_port(decl.write_port)}")
    if decl.mask_pattern is not None:
        clauses.append(f"mask '{decl.mask_pattern}'")
    if decl.pre_actions:
        clauses.append(f"pre {_actions(decl.pre_actions)}")
    if decl.post_actions:
        clauses.append(f"post {_actions(decl.post_actions)}")
    if decl.set_actions:
        clauses.append(f"set {_actions(decl.set_actions)}")
    if decl.mode is not None:
        clauses.append(f"in {decl.mode}")
    text = f"{head} = " + ", ".join(clauses)
    if decl.width is not None:
        text += f" : bit[{decl.width}]"
    return text + ";"


def _port(port: ast.PortExpr | None) -> str:
    assert port is not None
    if port.offset_param is not None:
        if port.offset:
            return f"{port.base} @ {port.offset} + {port.offset_param}"
        return f"{port.base} @ {port.offset_param}"
    return f"{port.base} @ {port.offset}" if port.offset else port.base


def _variable(decl: ast.VariableDecl) -> str:
    head = "private variable" if decl.private else "variable"
    text = f"{head} {decl.name}"
    if decl.chunks is not None:
        chunks = " # ".join(_chunk(chunk) for chunk in decl.chunks)
        text += f" = {chunks}"
    for qualifier in _behaviours(decl.behaviors):
        text += f", {qualifier}"
    if decl.set_actions:
        text += f", set {_actions(decl.set_actions)}"
    if decl.type_expr is not None:
        text += f" : {_type_expr(decl.type_expr)}"
    if decl.serialization is not None:
        text += f" serialized as {_serialization(decl.serialization)}"
    return text + ";"


def _chunk(chunk: ast.Chunk) -> str:
    if chunk.ranges is None:
        return chunk.register
    ranges = ",".join(str(r) for r in chunk.ranges)
    return f"{chunk.register}[{ranges}]"


def _behaviours(behaviors: ast.Behaviors) -> list[str]:
    result = []
    if behaviors.trigger is not None:
        trigger = behaviors.trigger
        prefix = {ast.AccessDirection.READ: "read ",
                  ast.AccessDirection.WRITE: "write ",
                  ast.AccessDirection.BOTH: ""}[trigger.direction]
        text = f"{prefix}trigger"
        if trigger.except_symbol is not None:
            text += f" except {trigger.except_symbol}"
        elif trigger.for_value is not None:
            text += f" for {_value(trigger.for_value)}"
        result.append(text)
    if behaviors.volatile:
        result.append("volatile")
    if behaviors.block:
        result.append("block")
    return result


def _structure(decl: ast.StructureDecl) -> str:
    lines = [f"structure {decl.name} = {{"]
    for member in decl.members:
        lines.append(_indent(_variable(member)))
    closing = "}"
    if decl.serialization is not None:
        closing += f" serialized as {_serialization(decl.serialization)}"
    lines.append(closing + ";")
    return "\n".join(lines)


def _serialization(steps: list[ast.SerStmt]) -> str:
    rendered = []
    for step in steps:
        rendered.append(_ser_stmt(step))
    return "{ " + " ".join(rendered) + " }"


def _ser_stmt(step: ast.SerStmt) -> str:
    if isinstance(step, ast.SerWrite):
        return f"{step.register};"
    assert isinstance(step, ast.SerIf)
    return (f"if ({step.variable} == {_value(step.value)}) "
            f"{_ser_stmt(step.body)}")


# ---------------------------------------------------------------------------
# Actions and values
# ---------------------------------------------------------------------------


def _actions(actions: list[ast.Action]) -> str:
    inner = "; ".join(f"{a.target} = {_value(a.value)}" for a in actions)
    return "{" + inner + "}"


def _value(value: ast.ActionValue) -> str:
    if isinstance(value, ast.IntValue):
        return str(value.value)
    if isinstance(value, ast.BoolValue):
        return "true" if value.value else "false"
    if isinstance(value, ast.SymbolValue):
        return value.name
    if isinstance(value, ast.WildcardValue):
        return "*"
    if isinstance(value, ast.StructValue):
        fields = "; ".join(f"{name} => {_value(inner)}"
                           for name, inner in value.fields)
        return "{" + fields + "}"
    raise TypeError(f"unknown action value {value!r}")


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


def _type_expr(expr: ast.TypeExpr) -> str:
    if isinstance(expr, ast.BoolTypeExpr):
        return "bool"
    if isinstance(expr, ast.IntTypeExpr):
        prefix = "signed " if expr.signed else ""
        return f"{prefix}int({expr.width})"
    if isinstance(expr, ast.IntSetTypeExpr):
        ranges = ",".join(_int_range(low, high)
                          for low, high in expr.ranges)
        return f"int{{{ranges}}}"
    if isinstance(expr, ast.EnumTypeExpr):
        arrows = {EnumDirection.READ: "<=", EnumDirection.WRITE: "=>",
                  EnumDirection.BOTH: "<=>"}
        items = ", ".join(
            f"{item.name} {arrows[item.direction]} '{item.pattern}'"
            for item in expr.items)
        return "{ " + items + " }"
    if isinstance(expr, ast.NamedTypeExpr):
        return expr.name
    raise TypeError(f"unknown type expression {expr!r}")
