"""Code generators: the Devil compiler's backends.

* :mod:`~repro.devil.codegen.c_backend` emits the C stub header the
  paper's compiler produced (Figure 3c) — ``static inline`` accessors
  over a state struct, with ``DEVIL_DEBUG`` run-time checks and the
  ``DEVIL_NO_REF`` single-device macro layer.
* :mod:`~repro.devil.codegen.py_backend` emits the same lowering as a
  standalone Python module, executable against the simulated bus; the
  test suite checks both backends produce identical I/O traces.
"""

from .c_backend import generate_c_header
from .py_backend import generate_python_module

__all__ = ["generate_c_header", "generate_python_module"]
