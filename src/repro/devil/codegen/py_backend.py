"""Python stub generator: a compiled, standalone stub module.

Where :mod:`repro.devil.runtime` *interprets* the resolved model, this
backend *compiles* it: the emitted module is plain straight-line Python
with all masks, shifts and neutral values folded into literals — the
same lowering the C backend performs, in Python syntax.  The generated
class talks to the outside world through a small ``io`` object
(``read(port, width)``, ``write(value, port, width)``,
``block_read(port, count, width)``, ``block_write(port, values,
width)``), which :class:`repro.bus.Bus` satisfies directly.

The test suite executes generated modules against the same simulated
devices as the interpreting runtime and asserts identical I/O traces —
the two implementations of the stub semantics check each other.
"""

from __future__ import annotations

from ..errors import DevilCodegenError
from ..plan import access_plan
from ..model import (
    ParamRef,
    ResolvedAction,
    ResolvedDevice,
    ResolvedRegister,
    ResolvedValue,
    ResolvedVariable,
    VarRef,
    Wildcard,
)
from ..types import BoolType, EnumType, IntSetType, IntType

_HELPERS = '''\
def _sext(value, width):
    """Two's-complement sign extension."""
    sign = 1 << (width - 1)
    value &= (1 << width) - 1
    return (value ^ sign) - sign


class DevilStubError(Exception):
    """A debug-mode check of the generated interface failed."""


class _DevilTxn:
    """Context manager coalescing variable writes (see ``txn()``)."""

    __slots__ = ("_stubs",)

    def __init__(self, stubs):
        self._stubs = stubs

    def __enter__(self):
        stubs = self._stubs
        if stubs._txn is not None:
            raise DevilStubError("transactions do not nest")
        stubs._txn = {"registers": {}, "order": [], "variables": {},
                      "deferred": 0}
        return stubs

    def __exit__(self, exc_type, exc, tb):
        stubs = self._stubs
        txn, stubs._txn = stubs._txn, None
        stubs._txn_flush(txn)
        return False
'''

_OBS_HELPERS = '''\
def _devil_span(stub, variable, kind):
    """Open/close a telemetry span around one public stub call.

    Nested calls (actions re-entering the stub layer) are depth-counted
    by the collector, so only the outermost call materialises a span —
    the same granularity the interpreted and specialized strategies
    report.
    """
    def _decorate(func):
        def _observed(self, *args, **kwargs):
            obs = self._obs
            if obs is None:
                return func(self, *args, **kwargs)
            obs.span_start(_DEVICE, stub, variable, kind, "generated")
            try:
                result = func(self, *args, **kwargs)
            except BaseException as error:
                obs.span_end(error=type(error).__name__)
                raise
            obs.span_end()
            return result
        _observed.__name__ = func.__name__
        _observed.__doc__ = func.__doc__
        _observed.__wrapped__ = func
        return _observed
    return _decorate
'''


def generate_python_module(device: ResolvedDevice,
                           observe: bool = False) -> str:
    """Emit a standalone Python stub module for ``device``.

    With ``observe=True`` the module carries :mod:`repro.obs`
    telemetry hooks: every public stub is wrapped in a span decorator
    and every action site records its kind/target on the attached
    observer.  The default emits no hooks at all, so generated modules
    used for benchmarking stay overhead-free.
    """
    return _PyWriter(device, observe=observe).emit()


def _class_name(device_name: str) -> str:
    return "".join(part.capitalize()
                   for part in device_name.split("_")) + "Stubs"


class _PyWriter:
    def __init__(self, device: ResolvedDevice, observe: bool = False):
        self.device = device
        self.observe = observe
        self.plan = access_plan(device)
        self.lines: list[str] = []
        self._indent = 0
        if observe:
            from ...obs.spans import stub_catalog
            self._span_info = {stub: (variable, kind)
                               for stub, variable, kind
                               in stub_catalog(device)}
        else:
            self._span_info = {}

    def _w(self, text: str = "") -> None:
        prefix = "    " * self._indent if text else ""
        self.lines.append(prefix + text)

    def _push(self) -> None:
        self._indent += 1

    def _pop(self) -> None:
        self._indent -= 1

    # ------------------------------------------------------------------
    # Helpers shared with the C backend's lowering
    # ------------------------------------------------------------------

    def _port_expr(self, port: tuple[str, int]) -> str:
        base, offset = port
        return f"self._port_{base} + {offset}" if offset else \
            f"self._port_{base}"

    def _port_width(self, port: tuple[str, int]) -> int:
        return self.device.params[port[0]].data_width

    def _readable(self, variable: ResolvedVariable) -> bool:
        return variable.memory or all(
            self.device.registers[c.register].readable
            for c in variable.chunks)

    def _writable(self, variable: ResolvedVariable) -> bool:
        return variable.memory or all(
            self.device.registers[c.register].writable
            for c in variable.chunks)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def emit(self) -> str:
        self._w(f'"""Generated by devilc from specification '
                f'{self.device.name!r}. Do not edit."""')
        self._w()
        for line in _HELPERS.splitlines():
            self._w(line)
        self._w()
        if self.observe:
            self._w(f"_DEVICE = {self.device.name!r}")
            self._w()
            self._w()
            for line in _OBS_HELPERS.splitlines():
                self._w(line)
            self._w()
        self._emit_enum_tables()
        self._w()
        self._w(f"class {_class_name(self.device.name)}:")
        self._push()
        self._emit_init()
        self._emit_txn_support()
        for variable in self.device.variables.values():
            if variable.memory:
                self._emit_memory_accessors(variable)
            elif variable.structure is None:
                self._emit_variable_accessors(variable)
            else:
                self._emit_member_getter(variable)
        for structure_name in self.device.structures:
            self._emit_structure_accessors(structure_name)
        for variable in self.device.variables.values():
            if variable.behaviors.block:
                self._emit_block_stubs(variable)
        self._pop()
        return "\n".join(self.lines) + "\n"

    def _deferrable_variables(self) -> list[ResolvedVariable]:
        """Variables whose setters can defer into a transaction."""
        return [v for v in self.device.variables.values()
                if not v.memory and v.structure is None
                and self._writable(v)]

    def _enum_table_name(self, variable: ResolvedVariable) -> str:
        return f"_ENUM_{variable.name.upper()}"

    def _emit_enum_tables(self) -> None:
        for variable in self.device.variables.values():
            var_type = variable.type
            if not isinstance(var_type, EnumType):
                continue
            encode = {item.name: item.value
                      for item in var_type.writable_items}
            decode = {item.value: item.name
                      for item in var_type.readable_items}
            table = self._enum_table_name(variable)
            self._w(f"{table}_ENC = {encode!r}")
            self._w(f"{table}_DEC = {decode!r}")

    def _emit_init(self) -> None:
        params = ", ".join(f"{name}_base" for name in self.device.params)
        tail = ", observer=None" if self.observe else ""
        self._w(f"def __init__(self, io, {params}, debug=False, "
                f"shadow_cache=False{tail}):")
        self._push()
        self._w('"""Bind the generated stubs to an I/O provider."""')
        self._w("self._io = io")
        self._w("self._debug = debug")
        self._w("self._txn = None")
        self._w("self._shadow = set() if shadow_cache else None")
        self._w("self._note_elided = getattr(io, 'note_elided', None)")
        self._w("self._note_coalesced = "
                "getattr(io, 'note_coalesced', None)")
        if self.observe:
            self._w("self._obs = observer")
        for name in self.device.params:
            self._w(f"self._port_{name} = {name}_base")
        for name in self.device.registers:
            self._w(f"self._cache_{name} = 0")
        for variable in self.device.variables.values():
            if variable.memory:
                if variable.name == "device_mode" and self.device.modes:
                    self._w(f"self._mem_device_mode = "
                            f"{self.device.modes[0]!r}")
                    self._w("self._mem_device_mode_init = True")
                    continue
                self._w(f"self._mem_{variable.name} = 0")
                self._w(f"self._mem_{variable.name}_init = False")
        for structure in self.device.structures:
            self._w(f"self._fetched_{structure} = False")
        self._pop()
        self._w()

    # -- transactions ---------------------------------------------------

    def _emit_txn_support(self) -> None:
        """Transaction API: defer/flush machinery plus per-register
        flush writers, mirroring ``DeviceInstance.transaction``."""
        self._w("def txn(self):")
        self._push()
        self._w('"""Coalesce variable writes: one I/O per touched '
                'register."""')
        self._w("return _DevilTxn(self)")
        self._pop()
        self._w()
        self._w("transaction = txn")
        self._w()
        self._w("def _txn_defer(self, registers, name, raw, value, "
                "trigger):")
        self._push()
        self._w("txn = self._txn")
        self._w("if trigger:")
        self._push()
        self._w("for reg in registers:")
        self._push()
        self._w("pending = txn['registers'].get(reg)")
        self._w("if pending is not None and name in pending:")
        self._push()
        self._w("# A repeated write-trigger write must fire twice.")
        self._w("self._txn_flush_pending()")
        self._w("txn = self._txn")
        self._w("break")
        self._pop()
        self._pop()
        self._pop()
        self._w("txn_registers = txn['registers']")
        self._w("for reg in registers:")
        self._push()
        self._w("per_register = txn_registers.get(reg)")
        self._w("if per_register is None:")
        self._push()
        self._w("txn_registers[reg] = per_register = {}")
        self._w("txn['order'].append(reg)")
        self._pop()
        self._w("per_register[name] = raw")
        self._pop()
        self._w("txn['variables'][name] = value")
        self._w("txn['deferred'] += len(registers)")
        self._pop()
        self._w()
        self._w("def _txn_flush_pending(self):")
        self._push()
        self._w("txn, self._txn = self._txn, None")
        self._w("self._txn_flush(txn)")
        self._w("self._txn = {'registers': {}, 'order': [], "
                "'variables': {}, 'deferred': 0}")
        self._pop()
        self._w()
        self._w("def _txn_flush(self, txn):")
        self._push()
        self._w("if not txn['order']:")
        self._push()
        self._w("return")
        self._pop()
        if self.observe:
            self._w("obs = self._obs")
            self._w("if obs is not None:")
            self._push()
            self._w("obs.span_start(_DEVICE, 'txn_flush', '*', 'txn', "
                    "'generated')")
            self._w("try:")
            self._push()
            self._w("self._txn_flush_body(txn)")
            self._pop()
            self._w("except BaseException as error:")
            self._push()
            self._w("obs.span_end(error=type(error).__name__)")
            self._w("raise")
            self._pop()
            self._w("obs.span_end()")
            self._w("return")
            self._pop()
        self._w("self._txn_flush_body(txn)")
        self._pop()
        self._w()
        self._w("def _txn_flush_body(self, txn):")
        self._push()
        self._w("for reg in txn['order']:")
        self._push()
        self._w("getattr(self, '_txn_write_' + reg)"
                "(txn['registers'][reg])")
        self._pop()
        self._w("merged = txn['deferred'] - len(txn['order'])")
        self._w("if merged > 0 and self._note_coalesced is not None:")
        self._push()
        self._w("self._note_coalesced(merged)")
        self._pop()
        self._w("for name in txn['variables']:")
        self._push()
        self._w("post = getattr(self, '_txn_post_' + name, None)")
        self._w("if post is not None:")
        self._push()
        self._w("post(txn['variables'])")
        self._pop()
        self._pop()
        self._pop()
        self._w()
        self._emit_txn_writers()

    def _emit_txn_writers(self) -> None:
        deferrable = self._deferrable_variables()
        deferrable_names = {v.name for v in deferrable}
        registers: list[str] = []
        for variable in deferrable:
            for register_name in variable.registers():
                if register_name not in registers:
                    registers.append(register_name)
        for register_name in registers:
            register = self.device.registers[register_name]
            self._w(f"def _txn_write_{register_name}(self, updates):")
            self._push()
            self._w(f"raw = self._cache_{register_name}")
            for owner in self.device.variables_of_register(register_name):
                neutral = None
                if owner.behaviors.write_triggers and \
                        owner.trigger_neutral_raw is not None:
                    neutral_bits = 0
                    neutral_value = 0
                    for chunk, value_lsb in owner.chunks_of(register_name):
                        chunk_mask = (1 << chunk.width) - 1
                        neutral_bits |= chunk_mask << chunk.lsb
                        field = (owner.trigger_neutral_raw >> value_lsb) \
                            & chunk_mask
                        neutral_value |= field << chunk.lsb
                    neutral = (neutral_bits, neutral_value)
                if owner.name in deferrable_names:
                    self_bits = 0
                    inserts = []
                    for chunk, value_lsb in owner.chunks_of(register_name):
                        chunk_mask = (1 << chunk.width) - 1
                        self_bits |= chunk_mask << chunk.lsb
                        inserts.append(
                            f"(((updates[{owner.name!r}] >> {value_lsb})"
                            f" & 0x{chunk_mask:x}) << {chunk.lsb})")
                    keep = register.mask.variable_bits & ~self_bits
                    composed = " | ".join(
                        [f"(raw & 0x{keep:x})"] + inserts)
                    self._w(f"if {owner.name!r} in updates:")
                    self._push()
                    self._w(f"raw = {composed}")
                    self._pop()
                    if neutral is not None:
                        nbits, nvalue = neutral
                        nkeep = register.mask.variable_bits & ~nbits
                        self._w("else:")
                        self._push()
                        self._w(f"raw = (raw & 0x{nkeep:x})"
                                + (f" | 0x{nvalue:x}" if nvalue else ""))
                        self._pop()
                elif neutral is not None:
                    nbits, nvalue = neutral
                    nkeep = register.mask.variable_bits & ~nbits
                    self._w(f"raw = (raw & 0x{nkeep:x})"
                            + (f" | 0x{nvalue:x}" if nvalue else ""))
            self._emit_register_write(register, "raw")
            self._pop()
            self._w()
        for variable in deferrable:
            if not variable.set_actions:
                continue
            self._w(f"def _txn_post_{variable.name}(self, values):")
            self._push()
            self._emit_actions(
                variable.set_actions, "var-set",
                context_var=variable.name,
                context_expr=f"values[{variable.name!r}]")
            self._pop()
            self._w()

    # -- actions --------------------------------------------------------

    def _action_stmt(self, action: ResolvedAction,
                     context_var: str | None = None,
                     context_expr: str = "value") -> str:
        if action.target_kind == "structure":
            if not isinstance(action.value, dict):
                raise DevilCodegenError(
                    f"structure action on {action.target!r} needs a "
                    f"field map")
            structure = self.device.structures[action.target]
            arguments = []
            for member in structure.members:
                member_var = self.device.variables[member]
                arguments.append(f"{member}=" + self._value_expr(
                    action.value[member], member_var, context_var,
                    context_expr))
            return f"self.set_{action.target}(" + ", ".join(arguments) + ")"
        target = self.device.variables[action.target]
        expr = self._value_expr(action.value, target, context_var,
                                context_expr)
        return f"self.set_{action.target}({expr})"

    def _value_expr(self, value: ResolvedValue,
                    target: ResolvedVariable,
                    context_var: str | None, context_expr: str) -> str:
        if isinstance(value, Wildcard):
            return "0"
        if isinstance(value, ParamRef):
            raise DevilCodegenError(
                f"unsubstituted constructor parameter {value.name!r}")
        if isinstance(value, VarRef):
            if context_var is not None and value.name == context_var:
                return context_expr
            source = self.device.variables.get(value.name)
            if source is not None and source.memory:
                return f"self._mem_{value.name}"
            raise DevilCodegenError(
                f"cannot evaluate reference to {value.name!r} here")
        return repr(value)

    def _decorate_stub(self, stub: str) -> None:
        """Emit the span decorator for a public stub (observe mode)."""
        info = self._span_info.get(stub)
        if info is not None:
            variable, kind = info
            self._w(f"@_devil_span({stub!r}, {variable!r}, {kind!r})")

    def _emit_actions(self, actions: list[ResolvedAction], kind: str,
                      context_var: str | None = None,
                      context_expr: str = "value") -> None:
        """Emit action statements, with observe-mode record probes.

        The kinds and ordering mirror the interpreter's
        ``_run_actions`` call sites exactly, so action streams are
        comparable across strategies.
        """
        for action in actions:
            if self.observe:
                self._w(f"if self._obs is not None: self._obs"
                        f".record_action({kind!r}, {action.target!r})")
            self._w(self._action_stmt(action, context_var, context_expr))

    def _emit_mode_check(self, register: ResolvedRegister) -> None:
        if register.mode is None:
            return
        self._w(f"if self._debug and self._mem_device_mode != "
                f"{register.mode!r}:")
        self._push()
        self._w(f"raise DevilStubError('register {register.name} "
                f"addressed outside mode {register.mode}')")
        self._pop()

    def _emit_register_read(self, register: ResolvedRegister) -> None:
        if register.read_port is None:
            raise DevilCodegenError(
                f"register {register.name!r} is write-only")
        self._emit_mode_check(register)
        self._emit_actions(register.pre_actions, "pre")
        self._w(f"raw_{register.name} = self._io.read("
                f"{self._port_expr(register.read_port)}, "
                f"{self._port_width(register.read_port)})")
        self._w(f"self._cache_{register.name} = raw_{register.name} & "
                f"0x{register.mask.variable_bits:x}")
        self._emit_shadow_update(register, read=True)
        self._emit_actions(register.post_actions, "post")
        self._emit_actions(register.set_actions, "reg-set")

    def _emit_register_write(self, register: ResolvedRegister,
                             composed: str) -> None:
        if register.write_port is None:
            raise DevilCodegenError(
                f"register {register.name!r} is read-only")
        name = register.name
        self._emit_mode_check(register)
        self._w(f"self._cache_{name} = ({composed}) & "
                f"0x{register.mask.variable_bits:x}")
        self._emit_actions(register.pre_actions, "pre")
        self._w(f"self._io.write(self._cache_{name} | "
                f"0x{register.mask.forced_value:x}, "
                f"{self._port_expr(register.write_port)}, "
                f"{self._port_width(register.write_port)})")
        self._emit_shadow_update(register, read=False)
        self._emit_actions(register.post_actions, "post")
        self._emit_actions(register.set_actions, "reg-set")

    def _emit_shadow_update(self, register: ResolvedRegister,
                            read: bool) -> None:
        """Shadow-validity maintenance after a bus access (plan-driven)."""
        plan = self.plan[register.name]
        barrier = plan.read_barrier if read else plan.write_barrier
        if barrier:
            self._w("if self._shadow is not None: self._shadow.clear()")
        elif plan.read_elidable:
            self._w(f"if self._shadow is not None: "
                    f"self._shadow.add({register.name!r})")

    # -- value (de)composition -------------------------------------------

    def _assemble_expr(self, variable: ResolvedVariable,
                       raw_prefix: str = "raw_") -> str:
        parts = []
        offset = variable.width
        for chunk in variable.chunks:
            offset -= chunk.width
            chunk_mask = (1 << chunk.width) - 1
            extract = f"(({raw_prefix}{chunk.register} >> {chunk.lsb})" \
                f" & 0x{chunk_mask:x})"
            parts.append(f"({extract} << {offset})" if offset else extract)
        return " | ".join(parts) if parts else "0"

    def _decode_expr(self, variable: ResolvedVariable, raw: str) -> str:
        var_type = variable.type
        if isinstance(var_type, BoolType):
            return f"bool(({raw}) & 1)"
        if isinstance(var_type, EnumType):
            table = self._enum_table_name(variable)
            return f"{table}_DEC.get({raw}, {raw})"
        if isinstance(var_type, IntType) and var_type.signed:
            return f"_sext({raw}, {var_type.width})"
        return raw

    def _emit_encode(self, variable: ResolvedVariable) -> None:
        """Encode `value` into `raw`, with debug checks."""
        var_type = variable.type
        if isinstance(var_type, EnumType):
            table = self._enum_table_name(variable)
            self._w(f"if value not in {table}_ENC:")
            self._push()
            self._w(f"raise DevilStubError('illegal value %r for "
                    f"{variable.name}' % (value,))")
            self._pop()
            self._w(f"raw = {table}_ENC[value]")
            return
        width_mask = (1 << variable.width) - 1
        self._w("if self._debug:")
        self._push()
        if isinstance(var_type, BoolType):
            self._w("if value not in (0, 1, True, False):")
        elif isinstance(var_type, IntSetType):
            self._w(f"if value not in {sorted(var_type.values)!r}:")
        elif isinstance(var_type, IntType):
            self._w(f"if not ({var_type.minimum} <= value <= "
                    f"{var_type.maximum}):")
        else:
            raise DevilCodegenError(
                f"unsupported type {var_type} for {variable.name!r}")
        self._push()
        self._w(f"raise DevilStubError('value %r outside "
                f"{var_type} for {variable.name}' % (value,))")
        self._pop()
        self._pop()
        self._w(f"raw = int(value) & 0x{width_mask:x}")

    def _compose_write_expr(self, register: ResolvedRegister,
                            writing: ResolvedVariable,
                            raw_expr: str = "raw") -> str:
        self_bits = 0
        inserts = []
        for chunk, value_lsb in writing.chunks_of(register.name):
            chunk_mask = (1 << chunk.width) - 1
            self_bits |= chunk_mask << chunk.lsb
            inserts.append(f"((({raw_expr} >> {value_lsb}) & "
                           f"0x{chunk_mask:x}) << {chunk.lsb})")
        neutral_bits = 0
        neutral_value = 0
        for neighbour in self.device.variables_of_register(register.name):
            if neighbour.name == writing.name:
                continue
            if neighbour.behaviors.write_triggers and \
                    neighbour.trigger_neutral_raw is not None:
                for chunk, value_lsb in neighbour.chunks_of(register.name):
                    chunk_mask = (1 << chunk.width) - 1
                    neutral_bits |= chunk_mask << chunk.lsb
                    field = (neighbour.trigger_neutral_raw >> value_lsb) \
                        & chunk_mask
                    neutral_value |= field << chunk.lsb
        keep = register.mask.variable_bits & ~self_bits & ~neutral_bits
        parts = [f"(self._cache_{register.name} & 0x{keep:x})"]
        parts.extend(inserts)
        if neutral_value:
            parts.append(f"0x{neutral_value:x}")
        return " | ".join(parts)

    # -- accessors ---------------------------------------------------------

    def _emit_memory_accessors(self, variable: ResolvedVariable) -> None:
        name = variable.name
        self._decorate_stub(f"get_{name}")
        self._w(f"def get_{name}(self):")
        self._push()
        self._w("if self._txn is not None: self._txn_flush_pending()")
        self._w(f"if self._debug and not self._mem_{name}_init:")
        self._push()
        self._w(f"raise DevilStubError('memory variable {name} read "
                f"before initialisation')")
        self._pop()
        self._w(f"return self._mem_{name}")
        self._pop()
        self._w()
        self._decorate_stub(f"set_{name}")
        self._w(f"def set_{name}(self, value):")
        self._push()
        self._w(f"self._mem_{name} = value")
        self._w(f"self._mem_{name}_init = True")
        self._emit_actions(variable.set_actions, "var-set",
                           context_var=name)
        self._pop()
        self._w()

    def _emit_variable_accessors(self, variable: ResolvedVariable) -> None:
        name = variable.name
        if self._readable(variable):
            self._decorate_stub(f"get_{name}")
            self._w(f"def get_{name}(self):")
            self._push()
            self._w(f'"""Read device variable {name!r}."""')
            self._w("if self._txn is not None: "
                    "self._txn_flush_pending()")
            if self.plan.variable_elidable(variable):
                self._emit_elided_branch(variable)
            registers = [self.device.registers[r]
                         for r in variable.registers()]
            for register in registers:
                self._emit_register_read(register)
            raw = self._assemble_expr(variable)
            self._w(f"return {self._decode_expr(variable, raw)}")
            self._pop()
            self._w()
        if self._writable(variable):
            self._decorate_stub(f"set_{name}")
            self._w(f"def set_{name}(self, value):")
            self._push()
            self._w(f'"""Write device variable {name!r}."""')
            self._emit_encode(variable)
            self._w("if self._txn is not None:")
            self._push()
            registers = tuple(variable.registers())
            trigger = bool(variable.behaviors.write_triggers)
            self._w(f"self._txn_defer({registers!r}, {name!r}, raw, "
                    f"value, {trigger!r})")
            if self.observe:
                self._w("if self._obs is not None: "
                        "self._obs.mark_coalesced()")
            self._w("return")
            self._pop()
            for register_name in variable.registers():
                register = self.device.registers[register_name]
                composed = self._compose_write_expr(register, variable)
                self._emit_register_write(register, composed)
            self._emit_actions(variable.set_actions, "var-set",
                               context_var=name, context_expr="value")
            self._pop()
            self._w()

    def _emit_elided_branch(self, variable: ResolvedVariable) -> None:
        """Serve the read from the shadow cache when it is valid."""
        registers = variable.registers()
        condition = " and ".join(f"{reg!r} in _s" for reg in registers)
        self._w("_s = self._shadow")
        self._w(f"if _s is not None and {condition}:")
        self._push()
        for register_name in registers:
            register = self.device.registers[register_name]
            self._emit_mode_check(register)
            if self.observe:
                port = register.read_port
                assert port is not None
                self._w(f"if self._obs is not None: self._obs.io_event("
                        f"'r', {self._port_expr(port)}, "
                        f"self._cache_{register_name}, "
                        f"{self._port_width(port)}, 1, True)")
        self._w(f"if self._note_elided is not None: "
                f"self._note_elided({len(registers)})")
        raw = self._assemble_expr(variable, raw_prefix="self._cache_")
        self._w(f"return {self._decode_expr(variable, raw)}")
        self._pop()

    def _emit_member_getter(self, variable: ResolvedVariable) -> None:
        if not self._readable(variable):
            return
        name = variable.name
        self._decorate_stub(f"get_{name}")
        self._w(f"def get_{name}(self):")
        self._push()
        self._w(f'"""Read {name!r} from the {variable.structure!r} '
                f'snapshot."""')
        self._w("if self._txn is not None: self._txn_flush_pending()")
        self._w(f"if self._debug and not "
                f"self._fetched_{variable.structure}:")
        self._push()
        self._w(f"raise DevilStubError('{name} read before "
                f"{variable.structure} was fetched')")
        self._pop()
        raw = self._assemble_expr(variable, raw_prefix="self._cache_")
        self._w(f"return {self._decode_expr(variable, raw)}")
        self._pop()
        self._w()

    def _structure_registers(self, structure_name: str) -> list[str]:
        structure = self.device.structures[structure_name]
        ordered: list[str] = []
        for member_name in structure.members:
            for chunk in self.device.variables[member_name].chunks:
                if chunk.register not in ordered:
                    ordered.append(chunk.register)
        return ordered

    def _emit_structure_accessors(self, structure_name: str) -> None:
        structure = self.device.structures[structure_name]
        members = [self.device.variables[m] for m in structure.members]
        register_names = self._structure_registers(structure_name)
        registers = [self.device.registers[r] for r in register_names]

        if all(self._readable(m) for m in members):
            self._decorate_stub(f"get_{structure_name}")
            self._w(f"def get_{structure_name}(self):")
            self._push()
            self._w(f'"""Grouped read of structure {structure_name!r}; '
                    f'each register once."""')
            self._w("if self._txn is not None: "
                    "self._txn_flush_pending()")
            for register in registers:
                self._emit_register_read(register)
            self._w(f"self._fetched_{structure_name} = True")
            items = ", ".join(
                f"'{m.name}': " + self._decode_expr(
                    m, self._assemble_expr(m, raw_prefix="raw_"))
                for m in members)
            self._w(f"return {{{items}}}")
            self._pop()
            self._w()

        if all(self._writable(m) for m in members):
            parameters = ", ".join(m.name for m in members)
            self._decorate_stub(f"set_{structure_name}")
            self._w(f"def set_{structure_name}(self, {parameters}):")
            self._push()
            self._w(f'"""Serialized write of structure '
                    f'{structure_name!r}."""')
            self._w("if self._txn is not None: "
                    "self._txn_flush_pending()")
            for member in members:
                self._w(f"value = {member.name}")
                self._emit_encode(member)
                self._w(f"raw_{member.name} = raw")
            steps = structure.serialization
            if steps is None:
                from ...devil.model import SerStep
                steps = [SerStep(name) for name in register_names]
            for step in steps:
                register = self.device.registers[step.register]
                composed = self._compose_struct_write(register, members)
                if step.condition is not None:
                    cond_var, cond_raw = step.condition
                    self._w(f"if raw_{cond_var} == 0x{cond_raw:x}:")
                    self._push()
                    self._emit_register_write(register, composed)
                    self._pop()
                else:
                    self._emit_register_write(register, composed)
            for member in members:
                self._emit_actions(member.set_actions, "var-set",
                                   context_var=member.name,
                                   context_expr=member.name)
            self._pop()
            self._w()

    def _compose_struct_write(self, register: ResolvedRegister,
                              members: list[ResolvedVariable]) -> str:
        member_names = {m.name for m in members}
        written = 0
        parts = []
        for member in members:
            for chunk, value_lsb in member.chunks_of(register.name):
                chunk_mask = (1 << chunk.width) - 1
                written |= chunk_mask << chunk.lsb
                parts.append(f"(((raw_{member.name} >> {value_lsb}) & "
                             f"0x{chunk_mask:x}) << {chunk.lsb})")
        neutral_bits = 0
        neutral_value = 0
        for neighbour in self.device.variables_of_register(register.name):
            if neighbour.name in member_names:
                continue
            if neighbour.behaviors.write_triggers and \
                    neighbour.trigger_neutral_raw is not None:
                for chunk, value_lsb in neighbour.chunks_of(register.name):
                    chunk_mask = (1 << chunk.width) - 1
                    neutral_bits |= chunk_mask << chunk.lsb
                    field = (neighbour.trigger_neutral_raw >> value_lsb) \
                        & chunk_mask
                    neutral_value |= field << chunk.lsb
        keep = register.mask.variable_bits & ~written & ~neutral_bits
        expr = [f"(self._cache_{register.name} & 0x{keep:x})"]
        expr.extend(parts)
        if neutral_value:
            expr.append(f"0x{neutral_value:x}")
        return " | ".join(expr)

    def _emit_block_stubs(self, variable: ResolvedVariable) -> None:
        name = variable.name
        register = self.device.registers[variable.chunks[0].register]
        if register.readable:
            self._decorate_stub(f"read_{name}_block")
            self._w(f"def read_{name}_block(self, count):")
            self._push()
            self._w(f'"""Block-read through {name!r} (one rep '
                    f'transfer)."""')
            self._w("if self._txn is not None: "
                    "self._txn_flush_pending()")
            self._emit_actions(register.pre_actions, "pre")
            self._w(f"values = self._io.block_read("
                    f"{self._port_expr(register.read_port)}, count, "
                    f"{self._port_width(register.read_port)})")
            self._w("if self._shadow is not None: self._shadow.clear()")
            self._emit_actions(register.post_actions, "post")
            self._emit_actions(register.set_actions, "reg-set")
            self._w("return values")
            self._pop()
            self._w()
        if register.writable:
            self._decorate_stub(f"write_{name}_block")
            self._w(f"def write_{name}_block(self, values):")
            self._push()
            self._w(f'"""Block-write through {name!r} (one rep '
                    f'transfer)."""')
            self._w("if self._txn is not None: "
                    "self._txn_flush_pending()")
            self._emit_actions(register.pre_actions, "pre")
            self._w(f"count = self._io.block_write("
                    f"{self._port_expr(register.write_port)}, values, "
                    f"{self._port_width(register.write_port)})")
            self._w("if self._shadow is not None: self._shadow.clear()")
            self._emit_actions(register.post_actions, "post")
            self._emit_actions(register.set_actions, "reg-set")
            self._w("return count")
            self._pop()
            self._w()
