"""C stub generator: the paper's compilation artifact (Figure 3c).

From a checked specification this backend emits a self-contained C
header of ``static inline`` accessor stubs.  The shape follows the
paper's generated ``busmouse.dil.h``:

* a state struct holding the port base addresses, one cache word per
  register (the write-composition and structure cache) and one word
  per private memory variable;
* one ``<prefix>__get_<var>`` / ``<prefix>__set_<var>`` pair per
  readable/writable variable, performing pre/post/set actions, mask
  application, cache composition and trigger neutralisation exactly
  like the Python runtime;
* grouped structure accessors and ``block`` transfer stubs;
* ``DEVIL_DEBUG`` compiles in the run-time checks of §3.2
  (out-of-range writes, unfetched-structure reads);
* ``DEVIL_NO_REF`` (Figure 3a) declares a single global device state
  and wraps every stub in an argument-free macro, so driver code reads
  exactly like Figure 3b: ``bm_get_mouse_state(); dy = bm_get_dy();``.

The including translation unit provides the I/O primitives (the kernel
would map them to ``inb``/``outb``; the test harness maps them to the
simulated bus):

.. code-block:: c

    unsigned devil_in(unsigned port, int width);
    void devil_out(unsigned value, unsigned port, int width);
    void devil_in_rep(unsigned port, int width,
                      unsigned long count, unsigned *buffer);
    void devil_out_rep(unsigned port, int width,
                       unsigned long count, const unsigned *buffer);
"""

from __future__ import annotations

import threading

from ..errors import DevilCodegenError
from ..model import (
    ParamRef,
    ResolvedAction,
    ResolvedDevice,
    ResolvedRegister,
    ResolvedValue,
    ResolvedVariable,
    VarRef,
    Wildcard,
)
from ..types import BoolType, EnumType, IntSetType, IntType


# Bump whenever the emitted C changes shape: the native build cache keys
# compiled shared libraries on this value, so stale .so files from an
# older emitter are never dlopen'ed against a newer state-struct layout.
# v3: per-entry port-table counters, per-device mutex, fail_buf and the
# C-resident device models changed the devil_nat_bus_t ABI.
CODEGEN_VERSION = 3

_HEADER_MEMO_LOCK = threading.Lock()


def generate_c_header(device: ResolvedDevice, prefix: str | None = None,
                      debug: bool = False) -> str:
    """Emit the C stub header for ``device``.

    ``prefix`` defaults to the device name; ``debug`` forces
    ``DEVIL_DEBUG`` on regardless of the including file.

    Emission is memoized per resolved device (same double-checked-lock
    pattern as ``repro.specs.compile_shipped``): a fleet binding N
    native instances of one spec emits the header once, not N times.
    Resolved devices are treated as immutable once emitted.
    """
    key = (prefix or device.name, bool(debug))
    memo = device.__dict__.get("_c_header_memo")
    if memo is not None:
        header = memo.get(key)
        if header is not None:
            return header
    with _HEADER_MEMO_LOCK:
        memo = device.__dict__.get("_c_header_memo")
        if memo is None:
            memo = {}
            device.__dict__["_c_header_memo"] = memo
        header = memo.get(key)
        if header is None:
            header = _CWriter(device, key[0], force_debug=debug).emit()
            memo[key] = header
    return header


def c_value_cast(prefix: str, variable: ResolvedVariable,
                 expr: str) -> str:
    """Cast a raw ``unsigned`` expression to a stub parameter's C type.

    The native dispatch shim marshals every argument as a width-masked
    ``unsigned``; signed stub parameters must be sign-extended back and
    enum parameters cast to their typedef before the stub call.
    """
    var_type = variable.type
    if isinstance(var_type, EnumType):
        name = var_type.name or variable.name
        return f"({prefix}_{name}_t)({expr})"
    if isinstance(var_type, IntType) and var_type.signed:
        return f"devil__sext({expr}, {var_type.width})"
    return expr


class _CWriter:
    """Stateful emitter for one header."""

    def __init__(self, device: ResolvedDevice, prefix: str,
                 force_debug: bool = False):
        self.device = device
        self.prefix = prefix
        self.force_debug = force_debug
        self.lines: list[str] = []

    # ------------------------------------------------------------------
    # Low-level helpers
    # ------------------------------------------------------------------

    def _w(self, text: str = "") -> None:
        self.lines.append(text)

    def _sym(self, name: str) -> str:
        """Enum constant name: device prefix, upper-cased."""
        return f"{self.prefix.upper()}_{name}"

    def _port_expr(self, port: tuple[str, int]) -> str:
        base, offset = port
        if offset:
            return f"d->port_{base} + {offset}"
        return f"d->port_{base}"

    def _port_width(self, port: tuple[str, int]) -> int:
        return self.device.params[port[0]].data_width

    @staticmethod
    def _hex(value: int) -> str:
        return f"0x{value:x}u"

    def _value_const(self, value: ResolvedValue, variable_type) -> str:
        """C constant for a literal action value."""
        if isinstance(value, Wildcard):
            return "0u"
        if isinstance(value, bool):
            return "1u" if value else "0u"
        if isinstance(value, int):
            return self._hex(value & 0xFFFFFFFF)
        if isinstance(value, str):  # enum symbol
            return self._sym(value)
        raise DevilCodegenError(
            f"cannot emit C constant for action value {value!r}")

    def _c_type(self, variable: ResolvedVariable) -> str:
        var_type = variable.type
        if isinstance(var_type, EnumType):
            return f"{self.prefix}_{variable.name}_t" if not var_type.name \
                else f"{self.prefix}_{var_type.name}_t"
        if isinstance(var_type, IntType) and var_type.signed:
            return "int"
        return "unsigned"

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def emit(self) -> str:
        for register in self.device.registers.values():
            if register.width > 32:
                raise DevilCodegenError(
                    f"register {register.name!r} is wider than 32 bits; "
                    f"the C backend targets 32-bit I/O")
        guard = f"DEVIL_{self.prefix.upper()}_DIL_H"
        self._w(f"/* Generated by devilc from specification "
                f"'{self.device.name}'. Do not edit. */")
        self._w(f"#ifndef {guard}")
        self._w(f"#define {guard}")
        self._w()
        if self.force_debug:
            self._w("#ifndef DEVIL_DEBUG")
            self._w("#define DEVIL_DEBUG 1")
            self._w("#endif")
            self._w()
        self._emit_io_decls()
        self._emit_debug_support()
        self._emit_enum_types()
        self._emit_state_struct()
        self._emit_prototypes()
        self._emit_init()
        for variable in self.device.variables.values():
            if variable.memory:
                self._emit_memory_accessors(variable)
        for variable in self.device.variables.values():
            if variable.memory or variable.structure is not None:
                continue
            self._emit_variable_accessors(variable)
        for structure in self.device.structures:
            self._emit_structure_accessors(structure)
        for variable in self.device.variables.values():
            if variable.structure is not None:
                self._emit_member_getter(variable)
                # Members also get individual setters (compose-with-cache
                # register writes, like any other variable); reads stay
                # snapshot-based via the grouped fetch.
                self._emit_variable_accessors(variable, getter=False)
        for variable in self.device.variables.values():
            if variable.behaviors.block:
                self._emit_block_stubs(variable)
        self._emit_noref_macros()
        self._w(f"#endif /* {guard} */")
        return "\n".join(self.lines) + "\n"

    # -- prologue -------------------------------------------------------

    def _emit_io_decls(self) -> None:
        self._w("#ifndef DEVIL_IO_DECLARED")
        self._w("#define DEVIL_IO_DECLARED")
        self._w("extern unsigned devil_in(unsigned port, int width);")
        self._w("extern void devil_out(unsigned value, unsigned port, "
                "int width);")
        self._w("extern void devil_in_rep(unsigned port, int width, "
                "unsigned long count, unsigned *buffer);")
        self._w("extern void devil_out_rep(unsigned port, int width, "
                "unsigned long count, const unsigned *buffer);")
        self._w("#endif")
        self._w()
        self._w("#ifndef DEVIL_SEXT_DEFINED")
        self._w("#define DEVIL_SEXT_DEFINED")
        self._w("static inline int devil__sext(unsigned value, int width)")
        self._w("{")
        self._w("    unsigned sign = 1u << (width - 1);")
        self._w("    if (width < 32)")
        self._w("        value &= (1u << width) - 1u;")
        self._w("    return (int)((value ^ sign) - sign);")
        self._w("}")
        self._w("#endif")
        self._w()
        self._w("#ifndef DEVIL_OBS_ACTION")
        self._w("/* Observability hook, expanded before every "
                "action-triggered stub call")
        self._w("   (mirroring the Python runtime's record-then-execute "
                "order).  The")
        self._w("   native runtime shim overrides this to notify the "
                "span collector;")
        self._w("   standalone kernel-style builds compile it away. */")
        self._w("#define DEVIL_OBS_ACTION(kind, target) ((void)0)")
        self._w("#endif")
        self._w()

    def _emit_debug_support(self) -> None:
        self._w("#ifdef DEVIL_DEBUG")
        self._w("#ifndef DEVIL_CHECK")
        self._w("#include <assert.h>")
        self._w('#define DEVIL_CHECK(cond, msg) assert((cond) && (msg))')
        self._w("#endif")
        self._w("#endif")
        self._w()

    def _emit_enum_types(self) -> None:
        emitted: set[str] = set()
        for variable in self.device.variables.values():
            var_type = variable.type
            if not isinstance(var_type, EnumType):
                continue
            type_name = self._c_type(variable)
            if type_name in emitted:
                continue
            emitted.add(type_name)
            items = ", ".join(
                f"{self._sym(item.name)} = {item.value}"
                for item in var_type.items)
            self._w(f"typedef enum {{ {items} }} {type_name};")
        if emitted:
            self._w()

    def _emit_state_struct(self) -> None:
        p = self.prefix
        self._w(f"typedef struct {p}_state {{")
        for name in self.device.params:
            self._w(f"    unsigned port_{name};")
        for name in self.device.registers:
            self._w(f"    unsigned cache_{name};")
        for variable in self.device.variables.values():
            if variable.memory:
                self._w(f"    unsigned mem_{variable.name};")
        # init_ flags are unconditional: the native runtime needs
        # initialisation tracking in release builds too (the debug-only
        # part is the DEVIL_CHECK that consults them).
        for variable in self.device.variables.values():
            if variable.memory:
                self._w(f"    unsigned char init_{variable.name};")
        self._w("#ifdef DEVIL_DEBUG")
        for structure in self.device.structures:
            self._w(f"    unsigned char fetched_{structure};")
        self._w("#endif")
        self._w(f"}} {p}_state_t;")
        self._w()

    def _emit_prototypes(self) -> None:
        """Forward declarations: stubs call each other through actions
        (a register pre-action may write a structure whose setter is
        defined later), so every accessor is declared up front."""
        p = self.prefix
        for variable in self.device.variables.values():
            name = variable.name
            c_type = self._c_type(variable)
            if variable.memory or self._readable(variable):
                self._w(f"static inline {c_type} {p}__get_{name}"
                        f"({p}_state_t *d);")
            if variable.memory or self._writable(variable):
                self._w(f"static inline void {p}__set_{name}"
                        f"({p}_state_t *d, {c_type} value);")
        for structure_name, structure in self.device.structures.items():
            members = [self.device.variables[m] for m in structure.members]
            if all(self._readable(m) for m in members):
                self._w(f"static inline void {p}__get_{structure_name}"
                        f"({p}_state_t *d);")
            if all(self._writable(m) for m in members):
                params = ", ".join(
                    f"{self._c_type(m)} {m.name}" for m in members)
                self._w(f"static inline void {p}__set_{structure_name}"
                        f"({p}_state_t *d, {params});")
        self._w()

    def _emit_init(self) -> None:
        p = self.prefix
        args = ", ".join(f"unsigned {name}_base"
                         for name in self.device.params)
        self._w(f"static inline void {p}__init({p}_state_t *d, {args})")
        self._w("{")
        for name in self.device.params:
            self._w(f"    d->port_{name} = {name}_base;")
        for name in self.device.registers:
            self._w(f"    d->cache_{name} = 0u;")
        for variable in self.device.variables.values():
            if variable.memory:
                self._w(f"    d->mem_{variable.name} = 0u;")
        if self.device.modes:
            # Reset into the first declared mode (enum value 0).
            self._w(f"    d->mem_device_mode = "
                    f"{self._sym(self.device.modes[0])};")
        for variable in self.device.variables.values():
            if variable.memory:
                init = "1" if (variable.name == "device_mode"
                               and self.device.modes) else "0"
                self._w(f"    d->init_{variable.name} = {init};")
        self._w("#ifdef DEVIL_DEBUG")
        for structure in self.device.structures:
            self._w(f"    d->fetched_{structure} = 0;")
        self._w("#endif")
        self._w("}")
        self._w()

    # -- actions --------------------------------------------------------

    def _emit_action(self, action: ResolvedAction, indent: str,
                     context_var: str | None = None,
                     context_param: str = "value",
                     kind: str = "reg-set") -> None:
        """Emit one pre/post/set action as stub calls."""
        p = self.prefix
        self._w(f'{indent}DEVIL_OBS_ACTION("{kind}", "{action.target}");')
        if action.target_kind == "structure":
            if not isinstance(action.value, dict):
                raise DevilCodegenError(
                    f"structure action on {action.target!r} needs a "
                    f"field map")
            structure = self.device.structures[action.target]
            args = []
            for member in structure.members:
                member_var = self.device.variables[member]
                args.append(self._action_value_expr(
                    action.value[member], member_var, context_var,
                    context_param))
            self._w(f"{indent}{p}__set_{action.target}(d, "
                    + ", ".join(args) + ");")
            return
        target = self.device.variables[action.target]
        expr = self._action_value_expr(action.value, target, context_var,
                                       context_param)
        self._w(f"{indent}{p}__set_{action.target}(d, {expr});")

    def _action_value_expr(self, value: ResolvedValue,
                           target: ResolvedVariable,
                           context_var: str | None,
                           context_param: str) -> str:
        if isinstance(value, VarRef):
            if context_var is not None and value.name == context_var:
                return context_param
            source = self.device.variables.get(value.name)
            if source is not None and source.memory:
                return f"d->mem_{value.name}"
            raise DevilCodegenError(
                f"C backend cannot evaluate reference to variable "
                f"{value.name!r} in this action context")
        if isinstance(value, ParamRef):
            raise DevilCodegenError(
                f"unsubstituted constructor parameter {value.name!r}")
        if isinstance(value, str):
            return f"({self._c_type(target)}){self._sym(value)}"
        return self._value_const(value, target.type)

    def _emit_mode_check(self, register: ResolvedRegister,
                         indent: str) -> None:
        if register.mode is None:
            return
        self._w("#ifdef DEVIL_DEBUG")
        self._w(f'{indent}DEVIL_CHECK(d->mem_device_mode == '
                f'(unsigned){self._sym(register.mode)}, '
                f'"register {register.name} addressed outside mode '
                f'{register.mode}");')
        self._w("#endif")

    def _emit_register_read(self, register: ResolvedRegister,
                            indent: str = "    ") -> None:
        """pre-actions, devil_in into raw_<reg>, cache, post/set."""
        if register.read_port is None:
            raise DevilCodegenError(
                f"register {register.name!r} is write-only")
        self._emit_mode_check(register, indent)
        for action in register.pre_actions:
            self._emit_action(action, indent, kind="pre")
        self._w(f"{indent}raw_{register.name} = devil_in("
                f"{self._port_expr(register.read_port)}, "
                f"{self._port_width(register.read_port)});")
        self._w(f"{indent}d->cache_{register.name} = raw_{register.name} & "
                f"{self._hex(register.mask.variable_bits)};")
        for action in register.post_actions:
            self._emit_action(action, indent, kind="post")
        for action in register.set_actions:
            self._emit_action(action, indent, kind="reg-set")

    def _emit_register_write(self, register: ResolvedRegister,
                             composed_expr: str,
                             indent: str = "    ") -> None:
        if register.write_port is None:
            raise DevilCodegenError(
                f"register {register.name!r} is read-only")
        name = register.name
        self._emit_mode_check(register, indent)
        self._w(f"{indent}d->cache_{name} = ({composed_expr}) & "
                f"{self._hex(register.mask.variable_bits)};")
        for action in register.pre_actions:
            self._emit_action(action, indent, kind="pre")
        out_expr = f"(d->cache_{name} & " \
            f"{self._hex(register.mask.variable_bits)}) | " \
            f"{self._hex(register.mask.forced_value)}"
        self._w(f"{indent}devil_out({out_expr}, "
                f"{self._port_expr(register.write_port)}, "
                f"{self._port_width(register.write_port)});")
        for action in register.post_actions:
            self._emit_action(action, indent, kind="post")
        for action in register.set_actions:
            self._emit_action(action, indent, kind="reg-set")

    # -- value (de)composition ------------------------------------------

    def _assemble_expr(self, variable: ResolvedVariable,
                       raw_prefix: str = "raw_") -> str:
        """C expression concatenating the variable's chunks, MSB first."""
        parts = []
        offset = variable.width
        for chunk in variable.chunks:
            offset -= chunk.width
            chunk_mask = (1 << chunk.width) - 1
            extract = f"(({raw_prefix}{chunk.register} >> {chunk.lsb}) & " \
                f"{self._hex(chunk_mask)})"
            parts.append(f"({extract} << {offset})" if offset else extract)
        return " | ".join(parts) if parts else "0u"

    def _decode_expr(self, variable: ResolvedVariable, raw: str) -> str:
        var_type = variable.type
        if isinstance(var_type, BoolType):
            return f"({raw}) & 1u"
        if isinstance(var_type, EnumType):
            return f"({self._c_type(variable)})({raw})"
        if isinstance(var_type, IntType) and var_type.signed:
            return f"devil__sext({raw}, {var_type.width})"
        return raw

    def _compose_write_expr(self, register: ResolvedRegister,
                            writing: ResolvedVariable,
                            raw_param: str) -> str:
        """Composed register value: self bits + cache + trigger neutrals."""
        self_bits = 0
        insert_parts = []
        for chunk, value_lsb in writing.chunks_of(register.name):
            chunk_mask = (1 << chunk.width) - 1
            self_bits |= chunk_mask << chunk.lsb
            insert_parts.append(
                f"((({raw_param} >> {value_lsb}) & "
                f"{self._hex(chunk_mask)}) << {chunk.lsb})")
        neutral_bits = 0
        neutral_value = 0
        for neighbour in self.device.variables_of_register(register.name):
            if neighbour.name == writing.name:
                continue
            if neighbour.behaviors.write_triggers and \
                    neighbour.trigger_neutral_raw is not None:
                for chunk, value_lsb in \
                        neighbour.chunks_of(register.name):
                    chunk_mask = (1 << chunk.width) - 1
                    neutral_bits |= chunk_mask << chunk.lsb
                    field = (neighbour.trigger_neutral_raw >> value_lsb) \
                        & chunk_mask
                    neutral_value |= field << chunk.lsb
        keep_mask = register.mask.variable_bits & ~self_bits & ~neutral_bits
        parts = [f"(d->cache_{register.name} & {self._hex(keep_mask)})"]
        parts.extend(insert_parts)
        if neutral_value:
            parts.append(self._hex(neutral_value))
        return " | ".join(parts)

    # -- variable accessors ----------------------------------------------

    def _readable(self, variable: ResolvedVariable) -> bool:
        return variable.memory or all(
            self.device.registers[c.register].readable
            for c in variable.chunks)

    def _writable(self, variable: ResolvedVariable) -> bool:
        return variable.memory or all(
            self.device.registers[c.register].writable
            for c in variable.chunks)

    def _emit_memory_accessors(self, variable: ResolvedVariable) -> None:
        p = self.prefix
        name = variable.name
        c_type = self._c_type(variable)
        self._w(f"static inline {c_type} {p}__get_{name}"
                f"({p}_state_t *d)")
        self._w("{")
        self._w("#ifdef DEVIL_DEBUG")
        self._w(f'    DEVIL_CHECK(d->init_{name}, '
                f'"memory variable {name} read before initialisation");')
        self._w("#endif")
        self._w(f"    return ({c_type})d->mem_{name};")
        self._w("}")
        self._w()
        self._w(f"static inline void {p}__set_{name}"
                f"({p}_state_t *d, {c_type} value)")
        self._w("{")
        self._w(f"    d->mem_{name} = (unsigned)value;")
        self._w(f"    d->init_{name} = 1;")
        for action in variable.set_actions:
            self._emit_action(action, "    ", context_var=variable.name,
                              kind="var-set")
        self._w("}")
        self._w()

    def _emit_range_check(self, variable: ResolvedVariable,
                          param: str) -> None:
        var_type = variable.type
        self._w("#ifdef DEVIL_DEBUG")
        if isinstance(var_type, EnumType):
            legal = " || ".join(
                f"{param} == {self._sym(item.name)}"
                for item in var_type.writable_items)
            self._w(f'    DEVIL_CHECK({legal or "0"}, '
                    f'"illegal value for {variable.name}");')
        elif isinstance(var_type, IntSetType):
            legal = " || ".join(f"{param} == {v}"
                                for v in sorted(var_type.values))
            self._w(f'    DEVIL_CHECK({legal}, '
                    f'"value outside {variable.name} member set");')
        elif isinstance(var_type, IntType):
            if var_type.signed:
                self._w(f'    DEVIL_CHECK((int){param} >= '
                        f'{var_type.minimum} && (int){param} <= '
                        f'{var_type.maximum}, '
                        f'"value outside range of {variable.name}");')
            else:
                self._w(f'    DEVIL_CHECK({param} <= '
                        f'{self._hex(var_type.maximum)}, '
                        f'"value outside range of {variable.name}");')
        elif isinstance(var_type, BoolType):
            self._w(f'    DEVIL_CHECK({param} == 0u || {param} == 1u, '
                    f'"boolean value for {variable.name} must be 0/1");')
        self._w("#endif")

    def _encode_expr(self, variable: ResolvedVariable, param: str) -> str:
        width_mask = (1 << variable.width) - 1
        return f"((unsigned){param} & {self._hex(width_mask)})"

    def _emit_variable_accessors(self, variable: ResolvedVariable,
                                 getter: bool = True) -> None:
        p = self.prefix
        name = variable.name
        c_type = self._c_type(variable)
        if getter and self._readable(variable):
            self._w(f"static inline {c_type} {p}__get_{name}"
                    f"({p}_state_t *d)")
            self._w("{")
            registers = [self.device.registers[r]
                         for r in variable.registers()]
            for register in registers:
                self._w(f"    unsigned raw_{register.name};")
            for register in registers:
                self._emit_register_read(register)
            raw = self._assemble_expr(variable)
            self._w(f"    return {self._decode_expr(variable, raw)};")
            self._w("}")
            self._w()
        if self._writable(variable):
            self._w(f"static inline void {p}__set_{name}"
                    f"({p}_state_t *d, {c_type} value)")
            self._w("{")
            self._emit_range_check(variable, "value")
            self._w(f"    unsigned raw = "
                    f"{self._encode_expr(variable, 'value')};")
            for register_name in variable.registers():
                register = self.device.registers[register_name]
                composed = self._compose_write_expr(register, variable,
                                                    "raw")
                self._emit_register_write(register, composed)
            for action in variable.set_actions:
                self._emit_action(action, "    ",
                                  context_var=variable.name,
                                  kind="var-set")
            self._w("}")
            self._w()

    # -- structures -------------------------------------------------------

    def _structure_registers(self, structure_name: str) -> list[str]:
        structure = self.device.structures[structure_name]
        ordered: list[str] = []
        for member_name in structure.members:
            for chunk in self.device.variables[member_name].chunks:
                if chunk.register not in ordered:
                    ordered.append(chunk.register)
        return ordered

    def _emit_structure_accessors(self, structure_name: str) -> None:
        p = self.prefix
        structure = self.device.structures[structure_name]
        members = [self.device.variables[m] for m in structure.members]
        register_names = self._structure_registers(structure_name)
        registers = [self.device.registers[r] for r in register_names]

        if all(self._readable(m) for m in members):
            self._w(f"static inline void {p}__get_{structure_name}"
                    f"({p}_state_t *d)")
            self._w("{")
            for register in registers:
                self._w(f"    unsigned raw_{register.name};")
            for register in registers:
                self._emit_register_read(register)
            self._w("#ifdef DEVIL_DEBUG")
            self._w(f"    d->fetched_{structure_name} = 1;")
            self._w("#endif")
            self._w("}")
            self._w()

        if all(self._writable(m) for m in members):
            params = ", ".join(
                f"{self._c_type(m)} {m.name}" for m in members)
            self._w(f"static inline void {p}__set_{structure_name}"
                    f"({p}_state_t *d, {params})")
            self._w("{")
            for member in members:
                self._emit_range_check(member, member.name)
            for member in members:
                self._w(f"    unsigned raw_{member.name} = "
                        f"{self._encode_expr(member, member.name)};")
            if structure.serialization is not None:
                steps = structure.serialization
            else:
                from ..model import SerStep
                steps = [SerStep(name) for name in register_names]
            for step in steps:
                register = self.device.registers[step.register]
                indent = "    "
                if step.condition is not None:
                    cond_var, cond_raw = step.condition
                    self._w(f"    if (raw_{cond_var} == "
                            f"{self._hex(cond_raw)}) {{")
                    indent = "        "
                composed = self._compose_struct_write(register, members)
                self._emit_register_write(register, composed, indent)
                if step.condition is not None:
                    self._w("    }")
            for member in members:
                for action in member.set_actions:
                    self._emit_action(action, "    ",
                                      context_var=member.name,
                                      context_param=f"raw_{member.name}",
                                      kind="var-set")
            self._w("}")
            self._w()

    def _compose_struct_write(self, register: ResolvedRegister,
                              members: list[ResolvedVariable]) -> str:
        member_names = {m.name for m in members}
        written_bits = 0
        parts = []
        for member in members:
            for chunk, value_lsb in member.chunks_of(register.name):
                chunk_mask = (1 << chunk.width) - 1
                written_bits |= chunk_mask << chunk.lsb
                parts.append(
                    f"(((raw_{member.name} >> {value_lsb}) & "
                    f"{self._hex(chunk_mask)}) << {chunk.lsb})")
        neutral_value = 0
        neutral_bits = 0
        for neighbour in self.device.variables_of_register(register.name):
            if neighbour.name in member_names:
                continue
            if neighbour.behaviors.write_triggers and \
                    neighbour.trigger_neutral_raw is not None:
                for chunk, value_lsb in neighbour.chunks_of(register.name):
                    chunk_mask = (1 << chunk.width) - 1
                    neutral_bits |= chunk_mask << chunk.lsb
                    field = (neighbour.trigger_neutral_raw >> value_lsb) \
                        & chunk_mask
                    neutral_value |= field << chunk.lsb
        keep = register.mask.variable_bits & ~written_bits & ~neutral_bits
        expr_parts = [f"(d->cache_{register.name} & {self._hex(keep)})"]
        expr_parts.extend(parts)
        if neutral_value:
            expr_parts.append(self._hex(neutral_value))
        return " | ".join(expr_parts)

    def _emit_member_getter(self, variable: ResolvedVariable) -> None:
        """Structure members read the register caches, never the device."""
        p = self.prefix
        name = variable.name
        if not self._readable(variable):
            return
        c_type = self._c_type(variable)
        self._w(f"static inline {c_type} {p}__get_{name}"
                f"({p}_state_t *d)")
        self._w("{")
        self._w("#ifdef DEVIL_DEBUG")
        self._w(f'    DEVIL_CHECK(d->fetched_{variable.structure}, '
                f'"read of {name} before {variable.structure} was '
                f'fetched");')
        self._w("#endif")
        raw = self._assemble_expr(variable, raw_prefix="d->cache_")
        self._w(f"    return {self._decode_expr(variable, raw)};")
        self._w("}")
        self._w()

    # -- block stubs -------------------------------------------------------

    def _emit_block_stubs(self, variable: ResolvedVariable) -> None:
        p = self.prefix
        name = variable.name
        register = self.device.registers[variable.chunks[0].register]
        if register.readable:
            self._w(f"static inline void {p}__read_{name}_block"
                    f"({p}_state_t *d, unsigned *buffer, "
                    f"unsigned long count)")
            self._w("{")
            for action in register.pre_actions:
                self._emit_action(action, "    ", kind="pre")
            self._w(f"    devil_in_rep({self._port_expr(register.read_port)},"
                    f" {self._port_width(register.read_port)}, count, "
                    f"buffer);")
            for action in register.post_actions:
                self._emit_action(action, "    ", kind="post")
            for action in register.set_actions:
                self._emit_action(action, "    ", kind="reg-set")
            self._w("}")
            self._w()
        if register.writable:
            self._w(f"static inline void {p}__write_{name}_block"
                    f"({p}_state_t *d, const unsigned *buffer, "
                    f"unsigned long count)")
            self._w("{")
            for action in register.pre_actions:
                self._emit_action(action, "    ", kind="pre")
            self._w(f"    devil_out_rep("
                    f"{self._port_expr(register.write_port)}, "
                    f"{self._port_width(register.write_port)}, count, "
                    f"buffer);")
            for action in register.post_actions:
                self._emit_action(action, "    ", kind="post")
            for action in register.set_actions:
                self._emit_action(action, "    ", kind="reg-set")
            self._w("}")
            self._w()

    # -- DEVIL_NO_REF -----------------------------------------------------

    def _emit_noref_macros(self) -> None:
        p = self.prefix
        self._w("#ifdef DEVIL_NO_REF")
        self._w(f"static {p}_state_t {p}_devil_state;")
        args = ", ".join(f"{name}_base" for name in self.device.params)
        self._w(f"#define {p}_init({args}) "
                f"{p}__init(&{p}_devil_state, {args})")
        for variable in self.device.variables.values():
            name = variable.name
            if variable.private:
                continue
            if self._readable(variable):
                self._w(f"#define {p}_get_{name}() "
                        f"{p}__get_{name}(&{p}_devil_state)")
            if self._writable(variable):
                self._w(f"#define {p}_set_{name}(v) "
                        f"{p}__set_{name}(&{p}_devil_state, v)")
            if variable.behaviors.block:
                register = self.device.registers[
                    variable.chunks[0].register]
                if register.readable:
                    self._w(f"#define {p}_read_{name}_block(buf, n) "
                            f"{p}__read_{name}_block(&{p}_devil_state, "
                            f"buf, n)")
                if register.writable:
                    self._w(f"#define {p}_write_{name}_block(buf, n) "
                            f"{p}__write_{name}_block(&{p}_devil_state, "
                            f"buf, n)")
        for structure_name, structure in self.device.structures.items():
            members = [self.device.variables[m] for m in structure.members]
            if all(self._readable(m) for m in members):
                self._w(f"#define {p}_get_{structure_name}() "
                        f"{p}__get_{structure_name}(&{p}_devil_state)")
            if all(self._writable(m) for m in members):
                params = ", ".join(m.name for m in members)
                self._w(f"#define {p}_set_{structure_name}({params}) "
                        f"{p}__set_{structure_name}(&{p}_devil_state, "
                        f"{params})")
        self._w("#endif /* DEVIL_NO_REF */")
        self._w()
