"""Static verification of Devil specifications (§3.1 of the paper).

The checker lowers a parsed :class:`~repro.devil.ast.DeviceDecl` into a
:class:`~repro.devil.model.ResolvedDevice` while enforcing the four
families of consistency rules the paper describes:

**Strong typing.**  Every use of a port, register, variable or type is
matched against its definition: port offsets must lie within the
declared range, register widths must match their ports' data widths,
masks must have exactly the register's width, bit ranges must fall
inside the register and on mask bits classified as variable bits,
variable types must have exactly the width of their bit chunks,
enumerated patterns must have the variable's width, and constant values
written by actions are range-checked at compile time.

**No omission.**  All declared entities must be used: every port
parameter and every offset of its declared range by some register,
every register by some variable, every named type by some variable,
every register constructor by some instantiation, and every mask bit
classified as a variable bit by exactly one variable.  Read mappings of
enumerated types on readable variables must be exhaustive.

**No double definition.**  One flat namespace covers port parameters,
registers, constructors, variables, structures and named types;
enumerated symbols must be unique within their type.

**No overlapping definitions.**  Two registers may share a port and
direction only if their masks are disjoint or their pre-actions differ
(index-based addressing); no register bit may belong to two variables.

Beyond §3.1's list the checker also enforces the behaviour rules of
§2.1: a write-trigger variable may share a register with other
variables only if it has a neutral value (``except``/``for``), and it
warns when volatile variables share a register across structure
boundaries (so reads cannot be made consistent).
"""

from __future__ import annotations

from . import ast
from .errors import DevilCheckError, DiagnosticSink, SourceLocation
from .mask import BitKind, Mask
from .model import (
    ParamRef,
    RegisterConstructor,
    ResolvedAction,
    ResolvedChunk,
    ResolvedDevice,
    ResolvedRegister,
    ResolvedStructure,
    ResolvedVariable,
    SerStep,
    VarRef,
    Wildcard,
)
from .types import (
    BoolType,
    DevilType,
    EnumDirection,
    EnumItem,
    EnumType,
    IntSetType,
    IntType,
)


def _index_values(param_type: DevilType):
    """Enumerable values of an integer constructor parameter."""
    if isinstance(param_type, IntSetType):
        return sorted(param_type.values)
    if isinstance(param_type, IntType) and not param_type.signed \
            and param_type.width <= 12:
        return range(param_type.maximum + 1)
    return None


def check(device: ast.DeviceDecl,
          sink: DiagnosticSink | None = None) -> ResolvedDevice:
    """Verify ``device`` and return its resolved model.

    Raises :class:`~repro.devil.errors.DevilCheckError` summarising every
    error found.  Pass a ``sink`` to also collect warnings.
    """
    checker = Checker(device, sink)
    return checker.run()


class Checker:
    """One verification run over one device declaration."""

    def __init__(self, device: ast.DeviceDecl,
                 sink: DiagnosticSink | None = None):
        self._ast = device
        self.sink = sink if sink is not None else DiagnosticSink()
        self.device = ResolvedDevice(device.name, location=device.location)
        # Flat namespace for the "no double definition" rule.
        self._namespace: dict[str, SourceLocation] = {}
        # Use tracking for the "no omission" rule.
        self._used_ports: set[tuple[str, int]] = set()
        self._used_registers: set[str] = set()
        self._used_types: set[str] = set()
        self._used_modes: set[str] = set()
        self._instantiated: set[str] = set()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self) -> ResolvedDevice:
        self._collect_params()
        self._collect_modes()
        self._collect_types()
        self._collect_registers()
        self._collect_variables_and_structures()
        self._validate_actions()
        self._check_bit_coverage()
        self._check_port_overlap()
        self._check_behaviour_rules()
        self._check_serializations()
        self._check_omissions()
        self.sink.raise_if_errors()
        # Attach the static access plan (register volatility
        # classification) to the verified model; all three execution
        # strategies read it from here, so elision decisions are made
        # once, at compile time.
        from .plan import compute_access_plan
        self.device.plan = compute_access_plan(self.device)
        return self.device

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------

    def _declare(self, name: str, location: SourceLocation,
                 what: str) -> bool:
        previous = self._namespace.get(name)
        if previous is not None:
            self.sink.error(
                f"{what} {name!r} is already declared at {previous}",
                location, rule="no-double-definition")
            return False
        self._namespace[name] = location
        return True

    # ------------------------------------------------------------------
    # Pass 1: port parameters
    # ------------------------------------------------------------------

    def _collect_params(self) -> None:
        for param in self._ast.params:
            if not self._declare(param.name, param.location,
                                 "port parameter"):
                continue
            if param.data_width <= 0:
                self.sink.error(
                    f"port parameter {param.name!r} has non-positive data "
                    f"width {param.data_width}", param.location,
                    rule="strong-typing")
                continue
            self.device.params[param.name] = param

    # ------------------------------------------------------------------
    # Pass 1b: operating modes (§2.2 conditional declarations)
    # ------------------------------------------------------------------

    def _collect_modes(self) -> None:
        declarations = self._ast.mode_decls()
        if not declarations:
            return
        if len(declarations) > 1:
            self.sink.error(
                "a device declares its modes at most once",
                declarations[1].location, rule="no-double-definition")
        names: list[str] = []
        for declaration in declarations:
            for name in declaration.names:
                if name in names:
                    self.sink.error(
                        f"mode {name!r} is declared twice",
                        declaration.location,
                        rule="no-double-definition")
                    continue
                names.append(name)
        if len(names) < 2:
            self.sink.error(
                "a mode declaration needs at least two modes",
                declarations[0].location, rule="strong-typing")
            return
        self.device.modes = tuple(names)
        # The current mode is exposed as an implicit memory variable so
        # that actions (`set {device_mode = operational}`) and the
        # generated interface (`set_device_mode`) use the ordinary
        # machinery.
        if not self._declare("device_mode", declarations[0].location,
                             "variable"):
            return
        width = max((len(names) - 1).bit_length(), 1)
        items = tuple(
            EnumItem(name, format(index, f"0{width}b"),
                     EnumDirection.BOTH)
            for index, name in enumerate(names))
        self.device.variables["device_mode"] = ResolvedVariable(
            name="device_mode", type=EnumType(items, name="device_mode"),
            private=False, memory=True,
            location=declarations[0].location)

    # ------------------------------------------------------------------
    # Pass 2: named types
    # ------------------------------------------------------------------

    def _collect_types(self) -> None:
        for decl in self._ast.type_decls():
            if not self._declare(decl.name, decl.location, "type"):
                continue
            resolved = self._resolve_type_expr(decl.type_expr,
                                               name=decl.name)
            if resolved is not None:
                self.device.types[decl.name] = resolved

    def _resolve_type_expr(self, expr: ast.TypeExpr,
                           name: str = "") -> DevilType | None:
        """Lower a syntactic type to a concrete DevilType (or None on
        error, which has already been reported)."""
        if isinstance(expr, ast.BoolTypeExpr):
            return BoolType()
        if isinstance(expr, ast.IntTypeExpr):
            if expr.width <= 0:
                self.sink.error(f"integer width must be positive, got "
                                f"{expr.width}", expr.location,
                                rule="strong-typing")
                return None
            return IntType(expr.width, expr.signed)
        if isinstance(expr, ast.IntSetTypeExpr):
            values = expr.values()
            if not values:
                self.sink.error("empty integer set type", expr.location,
                                rule="strong-typing")
                return None
            return IntSetType(values)
        if isinstance(expr, ast.EnumTypeExpr):
            return self._resolve_enum_type(expr, name)
        if isinstance(expr, ast.NamedTypeExpr):
            resolved = self.device.types.get(expr.name)
            if resolved is None:
                self.sink.error(f"unknown type {expr.name!r}",
                                expr.location, rule="strong-typing")
                return None
            self._used_types.add(expr.name)
            return resolved
        raise AssertionError(f"unhandled type expression {expr!r}")

    def _resolve_enum_type(self, expr: ast.EnumTypeExpr,
                           name: str) -> EnumType | None:
        items: list[EnumItem] = []
        seen_names: dict[str, SourceLocation] = {}
        widths: set[int] = set()
        for item in expr.items:
            if item.name in seen_names:
                self.sink.error(
                    f"enumerated symbol {item.name!r} is declared twice",
                    item.location, rule="no-double-definition")
                continue
            seen_names[item.name] = item.location
            if any(char not in "01" for char in item.pattern):
                self.sink.error(
                    f"enumerated value '{item.pattern}' must be a pure "
                    f"binary pattern", item.location, rule="strong-typing")
                continue
            widths.add(len(item.pattern))
            items.append(EnumItem(item.name, item.pattern,
                                  item.direction))
        if len(widths) > 1:
            self.sink.error(
                f"enumerated type mixes pattern widths {sorted(widths)}",
                expr.location, rule="strong-typing")
            return None
        if not items:
            self.sink.error("empty enumerated type", expr.location,
                            rule="strong-typing")
            return None
        self._check_enum_pattern_clashes(items, expr.location)
        return EnumType(tuple(items), name=name)

    def _check_enum_pattern_clashes(self, items: list[EnumItem],
                                    location: SourceLocation) -> None:
        readable: dict[int, str] = {}
        for item in items:
            if not item.direction.readable:
                continue
            other = readable.get(item.value)
            if other is not None:
                self.sink.error(
                    f"readable symbols {other!r} and {item.name!r} share "
                    f"the bit pattern '{item.pattern}' — reads would be "
                    f"ambiguous", location, rule="no-double-definition")
            readable[item.value] = item.name

    # ------------------------------------------------------------------
    # Pass 3: registers and register constructors
    # ------------------------------------------------------------------

    def _collect_registers(self) -> None:
        # Declarations are processed in order so that instantiations can
        # reference earlier constructors, as in the paper's CS4236B spec.
        for decl in self._ast.registers():
            if not self._declare(decl.name, decl.location, "register"):
                continue
            if decl.is_constructor:
                self._collect_constructor(decl)
            elif decl.base is not None:
                self._collect_instantiation(decl)
            else:
                register = self._resolve_plain_register(decl)
                if register is not None:
                    self.device.registers[decl.name] = register

    def _resolve_port(self, port: ast.PortExpr | None,
                      width: int | None,
                      offset_params: dict[str, DevilType] | None = None
                      ) -> tuple[str, int] | None:
        """Resolve a port clause.

        ``offset_params`` supplies the constructor parameters a
        parameterized offset (``base @ 1 + i``) may reference; outside
        a constructor, a parameterized offset is an error.  For
        parameterized offsets, every reachable offset is range-checked
        here and the returned tuple carries only the constant part —
        instantiation adds the bound parameter value.
        """
        if port is None:
            return None
        param = self.device.params.get(port.base)
        if param is None:
            self.sink.error(f"unknown port parameter {port.base!r}",
                            port.location, rule="strong-typing")
            return None
        if width is not None and width != param.data_width:
            self.sink.error(
                f"register width {width} does not match the {param.data_width}"
                f"-bit data width of port {port.base!r}", port.location,
                rule="strong-typing")
        if port.offset_param is not None:
            if not offset_params or port.offset_param not in offset_params:
                self.sink.error(
                    f"offset parameter {port.offset_param!r} is not a "
                    f"parameter of this register constructor",
                    port.location, rule="strong-typing")
                return None
            param_type = offset_params[port.offset_param]
            values = _index_values(param_type)
            if values is None:
                self.sink.error(
                    f"offset parameter {port.offset_param!r} must have "
                    f"an integer type", port.location,
                    rule="strong-typing")
                return None
            for value in values:
                if port.offset + value not in param.offset_values():
                    self.sink.error(
                        f"offset {port.offset}+{port.offset_param} = "
                        f"{port.offset + value} (for "
                        f"{port.offset_param}={value}) falls outside the "
                        f"declared range of port {port.base!r}",
                        port.location, rule="strong-typing")
                    return None
            return (port.base, port.offset)
        if port.offset not in param.offset_values():
            self.sink.error(
                f"offset {port.offset} outside the declared range of port "
                f"{port.base!r}", port.location, rule="strong-typing")
            return None
        self._used_ports.add((port.base, port.offset))
        return (port.base, port.offset)

    def _resolve_plain_register(
            self, decl: ast.RegisterDecl) -> ResolvedRegister | None:
        if decl.width is None:
            self.sink.error(
                f"register {decl.name!r} does not declare its size "
                f"(e.g. ': bit[8]')", decl.location, rule="strong-typing")
            return None
        read_port = self._resolve_port(decl.read_port, decl.width)
        write_port = self._resolve_port(decl.write_port, decl.width)
        if read_port is None and write_port is None:
            self.sink.error(
                f"register {decl.name!r} has neither a read nor a write "
                f"port", decl.location, rule="strong-typing")
            return None
        mask = self._resolve_mask(decl.mask_pattern, decl.width,
                                  decl.location)
        if write_port is None and mask.forced_bits:
            self.sink.error(
                f"mask of read-only register {decl.name!r} forces bit "
                f"values, but forced bits are write constraints",
                decl.location, rule="strong-typing")
        return ResolvedRegister(
            name=decl.name,
            width=decl.width,
            mask=mask,
            read_port=read_port,
            write_port=write_port,
            pre_actions=self._lower_actions(decl.pre_actions, ()),
            post_actions=self._lower_actions(decl.post_actions, ()),
            set_actions=self._lower_actions(decl.set_actions, ()),
            mode=self._resolve_mode(decl),
            location=decl.location,
        )

    def _resolve_mode(self, decl: ast.RegisterDecl) -> str | None:
        if decl.mode is None:
            return None
        if decl.mode not in self.device.modes:
            self.sink.error(
                f"register {decl.name!r} names unknown mode "
                f"{decl.mode!r}", decl.location, rule="strong-typing")
            return None
        self._used_modes.add(decl.mode)
        return decl.mode

    def _resolve_mask(self, pattern: str | None, width: int,
                      location: SourceLocation) -> Mask:
        if pattern is None:
            return Mask.all_variable(width)
        try:
            return Mask.parse(pattern, width, location)
        except DevilCheckError as error:
            self.sink.error(error.message, error.location,
                            rule="strong-typing")
            return Mask.all_variable(width)

    def _collect_constructor(self, decl: ast.RegisterDecl) -> None:
        param_names: list[str] = []
        param_types: list[DevilType] = []
        for param in decl.params:
            if param.name in param_names:
                self.sink.error(
                    f"register parameter {param.name!r} declared twice",
                    param.location, rule="no-double-definition")
                continue
            resolved = self._resolve_type_expr(param.type_expr)
            if resolved is None:
                return
            param_names.append(param.name)
            param_types.append(resolved)
        if decl.base is not None:
            self.sink.error(
                f"register constructor {decl.name!r} cannot itself be an "
                f"instantiation", decl.location, rule="strong-typing")
            return
        offset_params = dict(zip(param_names, param_types))
        template = self._resolve_template(decl, tuple(param_names),
                                          offset_params)
        if template is None:
            return
        self.device.constructors[decl.name] = RegisterConstructor(
            decl.name, tuple(param_names), tuple(param_types), template,
            read_offset_param=(decl.read_port.offset_param
                               if decl.read_port else None),
            write_offset_param=(decl.write_port.offset_param
                                if decl.write_port else None),
            location=decl.location)

    def _resolve_template(self, decl: ast.RegisterDecl,
                          param_names: tuple[str, ...],
                          offset_params: dict[str, DevilType]
                          ) -> ResolvedRegister | None:
        if decl.width is None:
            self.sink.error(
                f"register constructor {decl.name!r} does not declare its "
                f"size", decl.location, rule="strong-typing")
            return None
        read_port = self._resolve_port(decl.read_port, decl.width,
                                       offset_params)
        write_port = self._resolve_port(decl.write_port, decl.width,
                                        offset_params)
        if read_port is None and write_port is None:
            self.sink.error(
                f"register constructor {decl.name!r} has no port",
                decl.location, rule="strong-typing")
            return None
        mask = self._resolve_mask(decl.mask_pattern, decl.width,
                                  decl.location)
        return ResolvedRegister(
            name=decl.name,
            width=decl.width,
            mask=mask,
            read_port=read_port,
            write_port=write_port,
            pre_actions=self._lower_actions(decl.pre_actions, param_names),
            post_actions=self._lower_actions(decl.post_actions, param_names),
            set_actions=self._lower_actions(decl.set_actions, param_names),
            mode=self._resolve_mode(decl),
            location=decl.location,
        )

    def _collect_instantiation(self, decl: ast.RegisterDecl) -> None:
        assert decl.base is not None
        constructor = self.device.constructors.get(decl.base.constructor)
        if constructor is None:
            self.sink.error(
                f"unknown register constructor {decl.base.constructor!r}",
                decl.base.location, rule="strong-typing")
            return
        arguments = tuple(decl.base.arguments)
        if len(arguments) != len(constructor.param_names):
            self.sink.error(
                f"constructor {constructor.name!r} takes "
                f"{len(constructor.param_names)} argument(s), got "
                f"{len(arguments)}", decl.base.location,
                rule="strong-typing")
            return
        for value, param_type, param_name in zip(
                arguments, constructor.param_types,
                constructor.param_names):
            if not param_type.contains(value):
                self.sink.error(
                    f"argument {value} for parameter {param_name!r} is "
                    f"outside {param_type}", decl.base.location,
                    rule="strong-typing")
                return
        self._instantiated.add(constructor.name)
        register = constructor.instantiate(decl.name, arguments)
        register.location = decl.location
        for concrete_port in (register.read_port, register.write_port):
            if concrete_port is not None:
                self._used_ports.add(concrete_port)
        if decl.width is not None and decl.width != register.width:
            self.sink.error(
                f"instance width {decl.width} differs from constructor "
                f"width {register.width}", decl.location,
                rule="strong-typing")
        if decl.mask_pattern is not None:
            extra = self._resolve_mask(decl.mask_pattern, register.width,
                                       decl.location)
            try:
                register.mask = register.mask.refine(extra, decl.location)
            except DevilCheckError as error:
                self.sink.error(error.message, error.location,
                                rule="strong-typing")
        if register.write_port is None and register.mask.forced_bits:
            self.sink.error(
                f"mask of read-only register {decl.name!r} forces bit "
                f"values, but forced bits are write constraints",
                decl.location, rule="strong-typing")
        if decl.mode is not None:
            register.mode = self._resolve_mode(decl)
        register.pre_actions.extend(self._lower_actions(decl.pre_actions, ()))
        register.post_actions.extend(
            self._lower_actions(decl.post_actions, ()))
        register.set_actions.extend(self._lower_actions(decl.set_actions, ()))
        self.device.registers[decl.name] = register

    # ------------------------------------------------------------------
    # Action lowering (validation happens later, once variables exist)
    # ------------------------------------------------------------------

    def _lower_actions(self, actions: list[ast.Action],
                       param_names: tuple[str, ...]) -> list[ResolvedAction]:
        return [ResolvedAction(
            action.target, "unresolved",
            self._lower_value(action.value, param_names), action.location)
            for action in actions]

    def _lower_value(self, value: ast.ActionValue,
                     param_names: tuple[str, ...]):
        if isinstance(value, ast.IntValue):
            return value.value
        if isinstance(value, ast.BoolValue):
            return value.value
        if isinstance(value, ast.WildcardValue):
            return Wildcard()
        if isinstance(value, ast.SymbolValue):
            if value.name in param_names:
                return ParamRef(value.name)
            # Enum symbol or variable reference — decided during
            # validation, once the target's type is known.
            return VarRef(value.name)
        if isinstance(value, ast.StructValue):
            return {name: self._lower_value(inner, param_names)
                    for name, inner in value.fields}
        raise AssertionError(f"unhandled action value {value!r}")

    # ------------------------------------------------------------------
    # Pass 4: variables and structures
    # ------------------------------------------------------------------

    def _collect_variables_and_structures(self) -> None:
        for decl in self._ast.declarations:
            if isinstance(decl, ast.VariableDecl):
                self._collect_variable(decl, structure=None)
            elif isinstance(decl, ast.StructureDecl):
                self._collect_structure(decl)

    def _collect_structure(self, decl: ast.StructureDecl) -> None:
        if not self._declare(decl.name, decl.location, "structure"):
            return
        structure = ResolvedStructure(decl.name, location=decl.location)
        for member in decl.members:
            variable = self._collect_variable(member, structure=decl.name)
            if variable is not None:
                structure.members.append(variable.name)
        if decl.serialization is not None:
            structure.serialization = self._lower_ser_block(
                decl.serialization)
        if not structure.members:
            self.sink.error(f"structure {decl.name!r} has no members",
                            decl.location, rule="no-omission")
            return
        self.device.structures[decl.name] = structure

    def _lower_ser_block(self, block: list[ast.SerStmt]) -> list[SerStep]:
        steps: list[SerStep] = []
        for stmt in block:
            condition = None
            while isinstance(stmt, ast.SerIf):
                if condition is not None:
                    self.sink.error(
                        "nested serialization conditions are not supported",
                        stmt.location, rule="strong-typing")
                condition = (stmt.variable, self._lower_value(stmt.value, ()))
                stmt = stmt.body
            assert isinstance(stmt, ast.SerWrite)
            steps.append(SerStep(stmt.register, condition, stmt.location))
        return steps

    def _collect_variable(self, decl: ast.VariableDecl,
                          structure: str | None) -> ResolvedVariable | None:
        if not self._declare(decl.name, decl.location, "variable"):
            return None
        if decl.chunks is None:
            return self._collect_memory_variable(decl, structure)

        chunks: list[ResolvedChunk] = []
        for chunk in decl.chunks:
            resolved = self._resolve_chunk(chunk)
            if resolved is None:
                return None
            chunks.extend(resolved)
        width = sum(chunk.width for chunk in chunks)

        var_type = self._variable_type(decl, width)
        if var_type is None:
            return None
        if var_type.width != width:
            self.sink.error(
                f"variable {decl.name!r} is {width} bit(s) wide but its "
                f"type {var_type} is {var_type.width} bit(s)",
                decl.location, rule="strong-typing")
            return None

        variable = ResolvedVariable(
            name=decl.name,
            type=var_type,
            private=decl.private,
            chunks=chunks,
            behaviors=decl.behaviors,
            set_actions=self._lower_actions(decl.set_actions, ()),
            structure=structure,
            location=decl.location,
        )
        self._resolve_trigger(decl, variable)
        if decl.serialization is not None:
            variable.serialization = self._lower_variable_serialization(
                decl, variable)
        self._check_variable_directions(decl, variable)
        self.device.variables[decl.name] = variable
        return variable

    def _collect_memory_variable(self, decl: ast.VariableDecl,
                                 structure: str | None
                                 ) -> ResolvedVariable | None:
        if decl.type_expr is None:
            self.sink.error(
                f"memory variable {decl.name!r} needs an explicit type",
                decl.location, rule="strong-typing")
            return None
        var_type = self._resolve_type_expr(decl.type_expr)
        if var_type is None:
            return None
        if not decl.private:
            self.sink.error(
                f"memory variable {decl.name!r} must be private — it is "
                f"not mapped to any register", decl.location,
                rule="strong-typing")
        if decl.behaviors.volatile or decl.behaviors.block \
                or decl.behaviors.trigger is not None:
            self.sink.error(
                f"memory variable {decl.name!r} cannot carry behaviour "
                f"qualifiers", decl.location, rule="strong-typing")
        variable = ResolvedVariable(
            name=decl.name, type=var_type, private=True, memory=True,
            set_actions=self._lower_actions(decl.set_actions, ()),
            structure=structure, location=decl.location)
        self.device.variables[decl.name] = variable
        return variable

    def _resolve_chunk(self, chunk: ast.Chunk
                       ) -> list[ResolvedChunk] | None:
        register = self.device.registers.get(chunk.register)
        if register is None:
            what = ("register constructor — instantiate it first"
                    if chunk.register in self.device.constructors
                    else "register")
            self.sink.error(
                f"unknown {what} {chunk.register!r}", chunk.location,
                rule="strong-typing")
            return None
        self._used_registers.add(chunk.register)
        if chunk.ranges is None:
            return [ResolvedChunk(register.name, register.width - 1, 0)]
        resolved = []
        for bit_range in chunk.ranges:
            if bit_range.msb >= register.width:
                self.sink.error(
                    f"bit {bit_range.msb} outside the {register.width}-bit "
                    f"register {register.name!r}", bit_range.location,
                    rule="strong-typing")
                return None
            for bit in range(bit_range.lsb, bit_range.msb + 1):
                kind = register.mask.kinds[bit]
                if kind is not BitKind.VARIABLE:
                    self.sink.error(
                        f"bit {bit} of register {register.name!r} is "
                        f"marked {kind.value!r} by its mask and cannot "
                        f"belong to a variable", bit_range.location,
                        rule="strong-typing")
                    return None
            resolved.append(ResolvedChunk(register.name, bit_range.msb,
                                          bit_range.lsb))
        return resolved

    def _variable_type(self, decl: ast.VariableDecl,
                       width: int) -> DevilType | None:
        if decl.type_expr is None:
            # The paper's NE2000 fragment omits types whose enums are
            # "not shown"; an untyped variable defaults to an unsigned
            # integer of its natural width.
            return IntType(width)
        return self._resolve_type_expr(decl.type_expr)

    def _resolve_trigger(self, decl: ast.VariableDecl,
                         variable: ResolvedVariable) -> None:
        trigger = decl.behaviors.trigger
        if trigger is None:
            return
        if trigger.except_symbol is not None:
            var_type = variable.type
            if not isinstance(var_type, EnumType):
                self.sink.error(
                    f"'except {trigger.except_symbol}' on variable "
                    f"{variable.name!r} requires an enumerated type",
                    trigger.location, rule="strong-typing")
                return
            item = var_type.item(trigger.except_symbol)
            if item is None:
                self.sink.error(
                    f"neutral symbol {trigger.except_symbol!r} is not an "
                    f"element of {var_type}", trigger.location,
                    rule="strong-typing")
                return
            if not item.direction.writable:
                self.sink.error(
                    f"neutral symbol {trigger.except_symbol!r} must be "
                    f"writable", trigger.location, rule="strong-typing")
                return
            variable.trigger_neutral_raw = item.value
        elif trigger.for_value is not None:
            raw = self._encode_static(
                self._lower_value(trigger.for_value, ()), variable.type,
                trigger.location)
            if raw is None:
                return
            variable.trigger_for_raw = raw
            # Any value other than the trigger value is neutral; stubs
            # use the complement of its lowest bit within the width.
            limit = (1 << variable.type.width) - 1
            variable.trigger_neutral_raw = (raw ^ 1) & limit

    def _lower_variable_serialization(
            self, decl: ast.VariableDecl,
            variable: ResolvedVariable) -> list[str] | None:
        assert decl.serialization is not None
        order: list[str] = []
        for stmt in decl.serialization:
            if isinstance(stmt, ast.SerIf):
                self.sink.error(
                    "conditional serialization is only allowed on "
                    "structures", stmt.location, rule="strong-typing")
                return None
            assert isinstance(stmt, ast.SerWrite)
            order.append(stmt.register)
        expected = {chunk.register for chunk in variable.chunks}
        if set(order) != expected or len(order) != len(set(order)):
            self.sink.error(
                f"serialization of variable {variable.name!r} must list "
                f"each of its registers exactly once "
                f"({sorted(expected)})", decl.location,
                rule="strong-typing")
            return None
        return order

    def _check_variable_directions(self, decl: ast.VariableDecl,
                                   variable: ResolvedVariable) -> None:
        registers = [self.device.registers[c.register]
                     for c in variable.chunks]
        readable = all(r.readable for r in registers)
        writable = all(r.writable for r in registers)
        partially_readable = any(r.readable for r in registers)
        partially_writable = any(r.writable for r in registers)
        if readable != partially_readable:
            self.sink.error(
                f"variable {variable.name!r} spans registers with mixed "
                f"read capability", decl.location, rule="strong-typing")
        if writable != partially_writable:
            self.sink.error(
                f"variable {variable.name!r} spans registers with mixed "
                f"write capability", decl.location, rule="strong-typing")
        if not readable and not writable:
            self.sink.error(
                f"variable {variable.name!r} is neither readable nor "
                f"writable", decl.location, rule="strong-typing")
            return

        var_type = variable.type
        if readable and not var_type.can_decode():
            self.sink.error(
                f"variable {variable.name!r} is readable but its type "
                f"{var_type} has no read mapping", decl.location,
                rule="no-omission")
        if writable and not var_type.can_encode():
            self.sink.error(
                f"variable {variable.name!r} is writable but its type "
                f"{var_type} has no write mapping", decl.location,
                rule="no-omission")
        if isinstance(var_type, EnumType):
            if not readable and var_type.readable_items:
                self.sink.error(
                    f"type of variable {variable.name!r} has read "
                    f"mappings but the variable is write-only",
                    decl.location, rule="no-omission")
            if not writable and var_type.writable_items:
                self.sink.error(
                    f"type of variable {variable.name!r} has write "
                    f"mappings but the variable is read-only",
                    decl.location, rule="no-omission")
            if readable and not var_type.decode_is_exhaustive():
                self.sink.error(
                    f"read mapping of variable {variable.name!r} is not "
                    f"exhaustive: a {var_type.width}-bit read may deliver "
                    f"a value with no symbol", decl.location,
                    rule="no-omission")
        elif readable and not var_type.decode_is_exhaustive():
            self.sink.warning(
                f"reads of variable {variable.name!r} may deliver values "
                f"outside {var_type}; debug builds check this at run time",
                decl.location, rule="no-omission")

    # ------------------------------------------------------------------
    # Pass 5: action validation
    # ------------------------------------------------------------------

    def _validate_actions(self) -> None:
        for register in self.device.registers.values():
            for action in (register.pre_actions + register.post_actions
                           + register.set_actions):
                self._validate_action(action, allow_params=False)
        for constructor in self.device.constructors.values():
            template = constructor.template
            params = dict(zip(constructor.param_names,
                              constructor.param_types))
            for action in (template.pre_actions + template.post_actions
                           + template.set_actions):
                self._validate_action(action, allow_params=True,
                                      params=params)
        for variable in self.device.variables.values():
            for action in variable.set_actions:
                self._validate_action(action, allow_params=False)

    def _validate_action(self, action: ResolvedAction,
                         allow_params: bool = False,
                         params: dict[str, DevilType] | None = None) -> None:
        structure = self.device.structures.get(action.target)
        if structure is not None:
            action.target_kind = "structure"
            self._validate_structure_value(action, structure,
                                           allow_params, params or {})
            return
        variable = self.device.variables.get(action.target)
        if variable is None:
            self.sink.error(
                f"action targets unknown variable {action.target!r}",
                action.location, rule="strong-typing")
            return
        action.target_kind = "variable"
        if not variable.memory:
            for register_name in variable.registers():
                register = self.device.registers.get(register_name)
                if register is not None and not register.writable:
                    self.sink.error(
                        f"action writes variable {variable.name!r} whose "
                        f"register {register_name!r} is read-only",
                        action.location, rule="strong-typing")
        action.value = self._validate_value(
            action.value, variable.type, action.location,
            allow_params, params or {})

    def _validate_structure_value(self, action: ResolvedAction,
                                  structure: ResolvedStructure,
                                  allow_params: bool,
                                  params: dict[str, DevilType]) -> None:
        value = action.value
        if not isinstance(value, dict):
            self.sink.error(
                f"writing structure {structure.name!r} requires a "
                f"{{field => value; ...}} initializer", action.location,
                rule="strong-typing")
            return
        member_names = set(structure.members)
        for field_name in value:
            if field_name not in member_names:
                self.sink.error(
                    f"{field_name!r} is not a member of structure "
                    f"{structure.name!r}", action.location,
                    rule="strong-typing")
                return
        missing = member_names - set(value)
        if missing:
            self.sink.error(
                f"structure write of {structure.name!r} must initialise "
                f"every member (missing: {sorted(missing)})",
                action.location, rule="no-omission")
            return
        validated = {}
        for field_name, field_value in value.items():
            member = self.device.variables[field_name]
            validated[field_name] = self._validate_value(
                field_value, member.type, action.location,
                allow_params, params)
        action.value = validated

    def _validate_value(self, value, target_type: DevilType,
                        location: SourceLocation, allow_params: bool,
                        params: dict[str, DevilType]):
        """Check one action value against the target's type.

        Returns the (possibly rewritten) value: ``VarRef`` placeholders
        resolve either to an enum symbol of the target type or to a
        reference to another variable.
        """
        if isinstance(value, Wildcard):
            return value
        if isinstance(value, ParamRef):
            if not allow_params or value.name not in params:
                self.sink.error(
                    f"parameter {value.name!r} is not in scope",
                    location, rule="strong-typing")
                return value
            param_type = params[value.name]
            if param_type.width > target_type.width:
                self.sink.error(
                    f"parameter {value.name!r} ({param_type}) is wider "
                    f"than the target's type {target_type}", location,
                    rule="strong-typing")
            return value
        if isinstance(value, VarRef):
            if isinstance(target_type, EnumType):
                item = target_type.item(value.name)
                if item is not None:
                    if not item.direction.writable:
                        self.sink.error(
                            f"symbol {value.name!r} is read-only",
                            location, rule="strong-typing")
                    return value.name  # resolved to an enum symbol
            source = self.device.variables.get(value.name)
            if source is None:
                self.sink.error(
                    f"{value.name!r} is neither a symbol of "
                    f"{target_type} nor a variable", location,
                    rule="strong-typing")
                return value
            if source.type.width != target_type.width:
                self.sink.error(
                    f"variable {value.name!r} ({source.type}) does not "
                    f"fit the target's type {target_type}", location,
                    rule="strong-typing")
            return value
        if isinstance(value, dict):
            self.sink.error(
                "structure initializer used where a scalar value is "
                "expected", location, rule="strong-typing")
            return value
        # Literal int / bool: the compile-time range check of §3.2.
        raw = self._encode_static(value, target_type, location)
        return value if raw is not None else value

    def _encode_static(self, value, target_type: DevilType,
                       location: SourceLocation) -> int | None:
        """Statically encode a literal; report a check error on failure."""
        if isinstance(value, VarRef):
            if isinstance(target_type, EnumType):
                item = target_type.item(value.name)
                if item is not None:
                    return item.value
            self.sink.error(
                f"{value.name!r} is not a symbol of {target_type}",
                location, rule="strong-typing")
            return None
        if isinstance(value, (Wildcard, ParamRef, dict)):
            self.sink.error(
                f"expected a literal value, got {value}", location,
                rule="strong-typing")
            return None
        if isinstance(value, str):
            if isinstance(target_type, EnumType):
                item = target_type.item(value)
                if item is not None:
                    return item.value
            self.sink.error(f"{value!r} is not a symbol of {target_type}",
                            location, rule="strong-typing")
            return None
        if not target_type.contains(value):
            self.sink.error(
                f"constant {value!r} is outside {target_type}", location,
                rule="strong-typing")
            return None
        if isinstance(value, bool):
            return 1 if value else 0
        assert isinstance(value, int)
        return target_type.encode(value)

    # ------------------------------------------------------------------
    # Pass 6: bit coverage (no omission / no overlap at the bit level)
    # ------------------------------------------------------------------

    def _check_bit_coverage(self) -> None:
        owners: dict[str, dict[int, str]] = {
            name: {} for name in self.device.registers}
        for variable in self.device.variables.values():
            for chunk in variable.chunks:
                register_owners = owners[chunk.register]
                for bit in range(chunk.lsb, chunk.msb + 1):
                    other = register_owners.get(bit)
                    if other is not None:
                        self.sink.error(
                            f"bit {bit} of register {chunk.register!r} "
                            f"belongs to both {other!r} and "
                            f"{variable.name!r}", variable.location,
                            rule="no-overlap")
                    register_owners[bit] = variable.name
        for name, register in self.device.registers.items():
            covered = owners[name]
            for bit in range(register.width):
                kind = register.mask.kinds[bit]
                if kind is BitKind.VARIABLE and bit not in covered:
                    self.sink.error(
                        f"bit {bit} of register {name!r} is not covered "
                        f"by any variable (mark it irrelevant in the mask "
                        f"if it carries no information)",
                        register.location, rule="no-omission")

    # ------------------------------------------------------------------
    # Pass 7: port overlap
    # ------------------------------------------------------------------

    @staticmethod
    def _actions_key(actions: list[ResolvedAction]) -> tuple:
        return tuple((a.target, repr(a.value)) for a in actions)

    def _serialization_groups(self) -> dict[str, str]:
        """Map each register to the serialization group that writes it.

        Registers written only as ordered steps of the same variable or
        structure serialization are disambiguated by control flow — the
        paper's 8259A example maps icw2/icw3/icw4 to one port and
        addresses them "implicitly ... by previously written
        configuration values".
        """
        groups: dict[str, str] = {}
        for variable in self.device.variables.values():
            if variable.serialization is not None:
                for register in variable.serialization:
                    groups[register] = f"variable:{variable.name}"
        for structure in self.device.structures.values():
            if structure.serialization is not None:
                for step in structure.serialization:
                    groups[step.register] = f"structure:{structure.name}"
        return groups

    def _check_port_overlap(self) -> None:
        groups = self._serialization_groups()
        for direction in ("read", "write"):
            by_port: dict[tuple[str, int], list[ResolvedRegister]] = {}
            for register in self.device.registers.values():
                port = (register.read_port if direction == "read"
                        else register.write_port)
                if port is not None:
                    by_port.setdefault(port, []).append(register)
            for port, registers in by_port.items():
                for i, first in enumerate(registers):
                    for second in registers[i + 1:]:
                        self._check_register_pair(port, direction,
                                                  first, second, groups)

    def _check_register_pair(self, port: tuple[str, int], direction: str,
                             first: ResolvedRegister,
                             second: ResolvedRegister,
                             groups: dict[str, str]) -> None:
        if first.mode is not None and second.mode is not None and \
                first.mode != second.mode:
            # Conditional declarations: the two registers can never be
            # addressed in the same device mode.
            return
        if first.mask.disjoint_with(second.mask):
            return
        if direction == "write" and \
                first.mask.write_discriminated_from(second.mask):
            return
        if self._actions_key(first.pre_actions) != \
                self._actions_key(second.pre_actions):
            return
        first_group = groups.get(first.name)
        second_group = groups.get(second.name)
        if first_group is not None and first_group == second_group:
            # Ordered steps of one serialization: control-flow based
            # addressing (the 8259A initialization sequence).
            return
        if first_group != second_group:
            # One register belongs to an init-style serialization, the
            # other to normal operation: distinguishable only by device
            # mode.  Devil's conditional declarations would express this
            # precisely; we accept it with a warning.
            self.sink.warning(
                f"registers {first.name!r} and {second.name!r} share "
                f"{direction} port {port[0]}@{port[1]} and are "
                f"distinguished only by device mode", second.location,
                rule="no-overlap")
            return
        self.sink.error(
            f"registers {first.name!r} and {second.name!r} overlap on "
            f"{direction} port {port[0]}@{port[1]} without disjoint masks "
            f"or distinguishing pre-actions", second.location,
            rule="no-overlap")

    # ------------------------------------------------------------------
    # Pass 8: behaviour rules (§2.1 caching and synchronization)
    # ------------------------------------------------------------------

    def _check_behaviour_rules(self) -> None:
        for name, register in self.device.registers.items():
            variables = self.device.variables_of_register(name)
            if len(variables) < 2:
                continue
            for variable in variables:
                if variable.behaviors.write_triggers and \
                        variable.trigger_neutral_raw is None:
                    self.sink.error(
                        f"write-trigger variable {variable.name!r} shares "
                        f"register {name!r} with other variables but has "
                        f"no neutral value ('except SYMBOL' or "
                        f"'for VALUE')", variable.location,
                        rule="behaviour")
            structures = {v.structure for v in variables
                          if v.behaviors.volatile}
            if structures and (len(structures) > 1 or None in structures):
                volatile_names = [v.name for v in variables
                                  if v.behaviors.volatile]
                self.sink.warning(
                    f"volatile variable(s) {volatile_names} share register "
                    f"{name!r} across structure boundaries; grouped reads "
                    f"cannot be made consistent", register.location,
                    rule="behaviour")

    # ------------------------------------------------------------------
    # Pass 9: serialization validation
    # ------------------------------------------------------------------

    def _check_serializations(self) -> None:
        for structure in self.device.structures.values():
            if structure.serialization is None:
                continue
            member_registers: set[str] = set()
            for member_name in structure.members:
                member = self.device.variables[member_name]
                member_registers.update(c.register for c in member.chunks)
            listed: set[str] = set()
            for step in structure.serialization:
                if step.register not in self.device.registers:
                    self.sink.error(
                        f"serialization of {structure.name!r} lists "
                        f"unknown register {step.register!r}",
                        step.location, rule="strong-typing")
                    continue
                if step.register not in member_registers:
                    self.sink.error(
                        f"serialization of {structure.name!r} lists "
                        f"register {step.register!r} that no member uses",
                        step.location, rule="strong-typing")
                listed.add(step.register)
                if step.condition is not None:
                    self._check_ser_condition(structure, step)
            missing = member_registers - listed
            if missing:
                self.sink.error(
                    f"serialization of {structure.name!r} never writes "
                    f"register(s) {sorted(missing)}", structure.location,
                    rule="no-omission")

    def _check_ser_condition(self, structure: ResolvedStructure,
                             step: SerStep) -> None:
        assert step.condition is not None
        variable_name, value = step.condition
        if variable_name not in structure.members:
            self.sink.error(
                f"serialization condition references {variable_name!r}, "
                f"which is not a member of {structure.name!r}",
                step.location, rule="strong-typing")
            return
        member = self.device.variables[variable_name]
        raw = self._encode_static(value, member.type, step.location)
        if raw is not None:
            step.condition = (variable_name, raw)

    # ------------------------------------------------------------------
    # Pass 10: omission checks (unused entities)
    # ------------------------------------------------------------------

    def _check_omissions(self) -> None:
        for param in self.device.params.values():
            used_offsets = {offset for (base, offset) in self._used_ports
                            if base == param.name}
            if not used_offsets:
                self.sink.error(
                    f"port parameter {param.name!r} is never used",
                    param.location, rule="no-omission")
                continue
            unused = param.offset_values() - used_offsets
            if unused:
                self.sink.error(
                    f"offset(s) {sorted(unused)} of port {param.name!r} "
                    f"are declared but never used", param.location,
                    rule="no-omission")
        for name, register in self.device.registers.items():
            if name not in self._used_registers:
                self.sink.error(
                    f"register {name!r} is never used by any variable",
                    register.location, rule="no-omission")
        for name, constructor in self.device.constructors.items():
            if name not in self._instantiated:
                self.sink.error(
                    f"register constructor {name!r} is never instantiated",
                    constructor.location, rule="no-omission")
        for mode in self.device.modes:
            if mode not in self._used_modes:
                self.sink.error(
                    f"mode {mode!r} is declared but no register is "
                    f"restricted to it", self.device.location,
                    rule="no-omission")
        for name in self.device.types:
            if name not in self._used_types:
                self.sink.error(
                    f"type {name!r} is never used",
                    self._namespace.get(name, self.device.location),
                    rule="no-omission")
