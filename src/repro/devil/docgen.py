"""Datasheet generator: render a checked specification as Markdown.

§4.1 of the paper: "The Devil specification is so close to a device
description that it can be used for documentation purposes."  This
backend takes that literally: from the resolved model it produces a
device datasheet — port map, register map with bit layouts, the
functional interface with types and behaviours, structures, modes —
the page a driver writer would otherwise dig out of a vendor PDF.

Exposed as ``devilc doc SPEC.devil``.
"""

from __future__ import annotations

from .mask import BitKind
from .model import (
    ResolvedDevice,
    ResolvedRegister,
    ResolvedVariable,
)
from .types import EnumType


def generate_markdown(device: ResolvedDevice) -> str:
    """Render the datasheet for ``device``."""
    writer = _DocWriter(device)
    return writer.emit()


class _DocWriter:
    def __init__(self, device: ResolvedDevice):
        self.device = device
        self.lines: list[str] = []

    def _w(self, text: str = "") -> None:
        self.lines.append(text)

    def emit(self) -> str:
        device = self.device
        self._w(f"# Device `{device.name}`")
        self._w()
        self._w(f"Generated from the Devil specification; "
                f"{len(device.registers)} register(s), "
                f"{len(device.public_variables())} public variable(s).")
        self._w()
        self._emit_ports()
        if device.modes:
            self._emit_modes()
        self._emit_registers()
        self._emit_interface()
        self._emit_structures()
        return "\n".join(self.lines) + "\n"

    # ------------------------------------------------------------------

    def _emit_ports(self) -> None:
        self._w("## Ports")
        self._w()
        self._w("| port | data width | valid offsets |")
        self._w("|---|---|---|")
        for name, param in self.device.params.items():
            offsets = ", ".join(
                str(low) if low == high else f"{low}–{high}"
                for low, high in param.offsets)
            self._w(f"| `{name}` | {param.data_width} bits | {offsets} |")
        self._w()

    def _emit_modes(self) -> None:
        self._w("## Operating modes")
        self._w()
        names = ", ".join(f"`{mode}`" for mode in self.device.modes)
        self._w(f"{names} — reset state `{self.device.modes[0]}`; "
                f"switch with `set_device_mode(...)`.")
        self._w()

    # ------------------------------------------------------------------

    def _bit_layout(self, register: ResolvedRegister) -> str:
        """One cell per bit, MSB first, naming the owning variable."""
        owners: dict[int, str] = {}
        for variable in self.device.variables_of_register(register.name):
            for chunk in variable.chunks:
                if chunk.register != register.name:
                    continue
                for bit in range(chunk.lsb, chunk.msb + 1):
                    owners[bit] = variable.name
        cells = []
        for bit in range(register.width - 1, -1, -1):
            kind = register.mask.kinds[bit]
            if kind is BitKind.VARIABLE:
                cells.append(owners.get(bit, "?"))
            elif kind in (BitKind.FORCE0, BitKind.FORCE1):
                cells.append(kind.value)
            else:
                cells.append("–")
        return " \\| ".join(cells)

    def _register_access(self, register: ResolvedRegister) -> str:
        if register.readable and register.writable:
            return "R/W"
        return "R" if register.readable else "W"

    def _emit_registers(self) -> None:
        self._w("## Register map")
        self._w()
        self._w("| register | port | access | mode | bits "
                "(msb → lsb) |")
        self._w("|---|---|---|---|---|")
        for name, register in self.device.registers.items():
            port = register.read_port or register.write_port
            assert port is not None
            port_text = f"`{port[0]}`+{port[1]}"
            if register.read_port and register.write_port and \
                    register.read_port != register.write_port:
                port_text = (f"r `{register.read_port[0]}`+"
                             f"{register.read_port[1]} / w "
                             f"`{register.write_port[0]}`+"
                             f"{register.write_port[1]}")
            mode = register.mode or "—"
            self._w(f"| `{name}` | {port_text} | "
                    f"{self._register_access(register)} | {mode} | "
                    f"{self._bit_layout(register)} |")
        self._w()
        notes = []
        for name, register in self.device.registers.items():
            for label, actions in (("pre", register.pre_actions),
                                   ("post", register.post_actions),
                                   ("set", register.set_actions)):
                for action in actions:
                    notes.append(
                        f"* `{name}` {label}-action: "
                        f"`{action.target} = {action.value}`")
        if notes:
            self._w("Access actions:")
            self._w()
            for note in notes:
                self._w(note)
            self._w()

    # ------------------------------------------------------------------

    def _behaviours(self, variable: ResolvedVariable) -> str:
        flags = []
        if variable.behaviors.volatile:
            flags.append("volatile")
        if variable.behaviors.trigger is not None:
            text = "trigger"
            if variable.trigger_neutral_raw is not None and \
                    variable.trigger_for_raw is None:
                text += f" (neutral {variable.trigger_neutral_raw:#x})"
            if variable.trigger_for_raw is not None:
                text += f" (for {variable.trigger_for_raw:#x})"
            flags.append(text)
        if variable.behaviors.block:
            flags.append("block")
        return ", ".join(flags) if flags else "idempotent"

    def _layout(self, variable: ResolvedVariable) -> str:
        if variable.memory:
            return "memory cell"
        return " # ".join(f"`{c.register}`[{c.msb}..{c.lsb}]"
                          for c in variable.chunks)

    def _emit_interface(self) -> None:
        self._w("## Functional interface (device variables)")
        self._w()
        self._w("| variable | type | layout | behaviour | stubs |")
        self._w("|---|---|---|---|---|")
        for variable in self.device.variables.values():
            if variable.private:
                continue
            stubs = []
            readable = variable.memory or all(
                self.device.registers[c.register].readable
                for c in variable.chunks)
            writable = variable.memory or all(
                self.device.registers[c.register].writable
                for c in variable.chunks)
            if readable:
                stubs.append(f"`get_{variable.name}`")
            if writable:
                stubs.append(f"`set_{variable.name}`")
            if variable.behaviors.block:
                stubs.append(f"`*_{variable.name}_block`")
            self._w(f"| `{variable.name}` | {variable.type} | "
                    f"{self._layout(variable)} | "
                    f"{self._behaviours(variable)} | "
                    f"{', '.join(stubs)} |")
        self._w()
        self._emit_enums()
        private_names = [v.name for v in self.device.variables.values()
                         if v.private]
        if private_names:
            self._w(f"Private (hidden from the interface): "
                    + ", ".join(f"`{name}`" for name in private_names)
                    + ".")
            self._w()

    def _emit_enums(self) -> None:
        emitted = False
        for variable in self.device.variables.values():
            if variable.private or not isinstance(variable.type, EnumType):
                continue
            if not emitted:
                self._w("Enumerated values:")
                self._w()
                emitted = True
            items = ", ".join(
                f"`{item.name}` {item.direction.value} "
                f"'{item.pattern}'" for item in variable.type.items)
            self._w(f"* `{variable.name}`: {items}")
        if emitted:
            self._w()

    def _emit_structures(self) -> None:
        if not self.device.structures:
            return
        self._w("## Structures (grouped access)")
        self._w()
        for name, structure in self.device.structures.items():
            members = ", ".join(f"`{m}`" for m in structure.members)
            self._w(f"* `{name}`: {members}")
            if structure.serialization is not None:
                steps = []
                for step in structure.serialization:
                    text = f"`{step.register}`"
                    if step.condition is not None:
                        variable, raw = step.condition
                        text += f" (if `{variable}` == {raw:#x})"
                    steps.append(text)
                self._w(f"  — written in order: {' → '.join(steps)}")
        self._w()
