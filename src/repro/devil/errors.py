"""Diagnostics for the Devil toolchain.

Every stage of the pipeline (lexing, parsing, static checking, code
generation, and the generated-stub runtime) reports problems through the
exception hierarchy defined here.  Errors carry a source location so that
a specification author gets ``file:line:column`` style messages, exactly
like the compiler described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A position inside a Devil source text.

    ``line`` and ``column`` are 1-based, matching conventional compiler
    diagnostics.  ``filename`` defaults to ``<devil>`` for specifications
    compiled from strings.
    """

    line: int = 1
    column: int = 1
    filename: str = "<devil>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


#: Location used when no better position is available.
UNKNOWN_LOCATION = SourceLocation(0, 0, "<unknown>")


class DevilError(Exception):
    """Base class of every error raised by the Devil toolchain."""

    def __init__(self, message: str, location: SourceLocation = UNKNOWN_LOCATION):
        self.message = message
        self.location = location
        super().__init__(f"{location}: {message}")


class DevilLexError(DevilError):
    """Raised when the source text cannot be tokenized."""


class DevilParseError(DevilError):
    """Raised when the token stream does not form a valid specification."""


class DevilCheckError(DevilError):
    """Raised when static verification rejects a specification.

    The static rules implemented are the ones of section 3.1 of the
    paper: strong typing, no omission, no double definition, and no
    overlapping definitions (plus behaviour-qualifier consistency).
    """


class DevilCodegenError(DevilError):
    """Raised when a checked specification cannot be lowered to stubs."""


class DevilRuntimeError(DevilError):
    """Raised by generated stubs when a dynamic (debug-mode) check fails.

    This corresponds to the optional run-time checks of section 3.2:
    out-of-range writes, invalid enumerated values read back from the
    device, and misuse of trigger/volatile access protocols.
    """


@dataclass
class Diagnostic:
    """One checker finding; ``severity`` is ``"error"`` or ``"warning"``."""

    severity: str
    message: str
    location: SourceLocation = UNKNOWN_LOCATION
    rule: str = ""

    def __str__(self) -> str:
        tag = f" [{self.rule}]" if self.rule else ""
        return f"{self.location}: {self.severity}: {self.message}{tag}"


@dataclass
class DiagnosticSink:
    """Accumulates checker findings so that one run reports *all* problems.

    The paper's checker validates a whole specification; stopping at the
    first inconsistency would make re-engineering drivers painful, so the
    checker gathers every finding and raises once at the end.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def error(self, message: str, location: SourceLocation = UNKNOWN_LOCATION,
              rule: str = "") -> None:
        self.diagnostics.append(Diagnostic("error", message, location, rule))

    def warning(self, message: str, location: SourceLocation = UNKNOWN_LOCATION,
                rule: str = "") -> None:
        self.diagnostics.append(Diagnostic("warning", message, location, rule))

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def raise_if_errors(self) -> None:
        """Raise a :class:`DevilCheckError` summarising all errors, if any."""
        errors = self.errors
        if not errors:
            return
        summary = "\n".join(str(d) for d in errors)
        raise DevilCheckError(
            f"{len(errors)} error(s) in specification:\n{summary}",
            errors[0].location,
        )
