"""The Devil language toolchain.

Pipeline: source text -> :mod:`~repro.devil.lexer` ->
:mod:`~repro.devil.parser` (AST in :mod:`~repro.devil.ast`) ->
:mod:`~repro.devil.checker` (the §3.1 verification rules, producing the
resolved :mod:`~repro.devil.model`) -> backends
(:mod:`~repro.devil.codegen.c_backend`,
:mod:`~repro.devil.codegen.py_backend`) or the interpreting stub
runtime (:mod:`~repro.devil.runtime`).
"""

from .compiler import CompiledSpec, compile_file, compile_spec
from .errors import (
    DevilCheckError,
    DevilCodegenError,
    DevilError,
    DevilLexError,
    DevilParseError,
    DevilRuntimeError,
)

__all__ = [
    "CompiledSpec",
    "DevilCheckError",
    "DevilCodegenError",
    "DevilError",
    "DevilLexError",
    "DevilParseError",
    "DevilRuntimeError",
    "compile_file",
    "compile_spec",
]
