"""Bind-time stub specialization: straight-line closures per variable.

The paper's headline performance claim (§4.3) is that Devil stubs have
no execution overhead because the compiler folds masks, shifts and
addresses into straight-line code.  :mod:`repro.devil.runtime`
re-interprets the resolved model on every call; this module is the
in-process analogue of :mod:`repro.devil.codegen.py_backend`: at
``bind(strategy="specialize")`` time it partially evaluates the
:class:`~repro.devil.model.ResolvedDevice` against the concrete base
addresses and emits one Python closure per stub, with

* register masks (AND/OR constants),
* chunk shifts and widths,
* *absolute* port addresses (base + offset folded to one literal),
* enum encode/decode tables, trigger-neutral values, and
* the debug/release check variants

all resolved to literals in generated source that is ``exec``-ed once
and cached per ``(model, bases, debug, composition)``.

The specialized closures share the :class:`DeviceInstance`'s mutable
state (register/structure caches, memory variables, ``_last_written``,
transactions), so mixing specialized stubs with the generic
:meth:`DeviceInstance.get`/:meth:`~DeviceInstance.set` API — or with
:meth:`~DeviceInstance.transaction` blocks — behaves exactly like the
interpreter.  Semantics parity is bit-exact: identical bus traces,
identical :class:`~repro.bus.IoAccounting` counters, and identical
:class:`~repro.devil.errors.DevilRuntimeError` messages.  The fast
path is inlined; every rarely-taken path (illegal values, unusual
types, open transactions) delegates back to the interpreter so the two
execution strategies cannot drift apart.
"""

from __future__ import annotations

import threading

from .errors import DevilRuntimeError, SourceLocation
from .plan import access_plan
from .model import (
    ParamRef,
    ResolvedAction,
    ResolvedDevice,
    ResolvedRegister,
    ResolvedValue,
    ResolvedVariable,
    SerStep,
    VarRef,
    Wildcard,
)
from .types import BoolType, EnumType, IntSetType, IntType

#: Sentinel distinguishing "absent" from any legal table value.
_MISSING = object()


def _struct_args_error(name: str, members, values, location) -> None:
    """Raise the interpreter's structure-argument errors verbatim."""
    missing = set(members) - set(values)
    if missing:
        raise DevilRuntimeError(
            f"structure write of {name!r} must provide every member "
            f"(missing: {sorted(missing)})", location)
    unknown = set(values) - set(members)
    raise DevilRuntimeError(
        f"unknown member(s) {sorted(unknown)} in structure write "
        f"of {name!r}", location)


def _raise_param(name: str, location) -> None:
    raise DevilRuntimeError(
        f"unsubstituted constructor parameter {name!r}", location)


class _Specializer:
    """Generates the ``_factory(_I)`` source for one specialization key.

    The factory takes a bound :class:`DeviceInstance`, captures its hot
    state (bus methods, caches) in closure cells, defines one function
    per stub and returns the dict of public stubs.  Compilation happens
    once per key; running the factory per instance is cheap.
    """

    def __init__(self, model: ResolvedDevice, bases: dict[str, int],
                 debug: bool, composition: str,
                 instrumented: bool = False,
                 shadow_cache: bool = False):
        self.model = model
        self.bases = dict(bases)
        self.debug = debug
        self.composition = composition
        #: When True, getters of fully-cacheable variables test the
        #: instance's shadow-validity set and serve reads straight from
        #: the register cache; register accesses maintain the set per
        #: the static access plan.  Off, no shadow code is emitted at
        #: all — the source is byte-identical to the pre-shadow output.
        self.shadow_cache = shadow_cache
        self.plan = access_plan(model)
        #: When True (telemetry enabled at bind time), every action
        #: site additionally emits an ``_obs_act(kind, target)`` probe
        #: mirroring the interpreter's ``_run_actions`` recording, so
        #: span action streams are identical across strategies.  The
        #: uninstrumented source is byte-identical to a telemetry-free
        #: build.
        self.instrumented = instrumented
        self.lines: list[str] = []
        self._indent = 0
        #: Objects injected into the exec globals (tables, locations...).
        self.namespace: dict[str, object] = {
            "_DRE": DevilRuntimeError,
            "_MISS": _MISSING,
            "_vars": model.variables,
            "_struct_args_error": _struct_args_error,
            "_raise_param": _raise_param,
        }
        self._locs: dict[SourceLocation, int] = {}
        self._loc_list: list[SourceLocation] = []
        self.namespace["_locs"] = self._loc_list
        #: Stub names the runtime attaches publicly (same rule as
        #: DeviceInstance._attach_stubs).
        self.stub_names: list[str] = []

    # -- low-level emission -------------------------------------------

    def _w(self, text: str = "") -> None:
        prefix = "    " * self._indent if text else ""
        self.lines.append(prefix + text)

    def _push(self) -> None:
        self._indent += 1

    def _pop(self) -> None:
        self._indent -= 1

    def _loc(self, location: SourceLocation) -> str:
        index = self._locs.get(location)
        if index is None:
            index = len(self._loc_list)
            self._locs[location] = index
            self._loc_list.append(location)
        return f"_locs[{index}]"

    # -- shared predicates (mirror DeviceInstance) --------------------

    def _readable(self, variable: ResolvedVariable) -> bool:
        return variable.memory or all(
            self.model.registers[c.register].readable
            for c in variable.chunks)

    def _writable(self, variable: ResolvedVariable) -> bool:
        return variable.memory or all(
            self.model.registers[c.register].writable
            for c in variable.chunks)

    def _structure_readable(self, name: str) -> bool:
        structure = self.model.structures[name]
        return all(self._readable(self.model.variables[m])
                   for m in structure.members)

    def _structure_writable(self, name: str) -> bool:
        structure = self.model.structures[name]
        return all(self._writable(self.model.variables[m])
                   for m in structure.members)

    def _structure_registers(self, name: str) -> list[str]:
        structure = self.model.structures[name]
        ordered: list[str] = []
        for member_name in structure.members:
            for chunk in self.model.variables[member_name].chunks:
                if chunk.register not in ordered:
                    ordered.append(chunk.register)
        return ordered

    # -- port folding -------------------------------------------------

    def _address(self, port: tuple[str, int]) -> int:
        base, offset = port
        return self.bases[base] + offset

    def _port_width(self, port: tuple[str, int]) -> int:
        return self.model.params[port[0]].data_width

    # -- enum / set tables --------------------------------------------

    def _tables_for(self, variable: ResolvedVariable) -> None:
        var_type = variable.type
        name = variable.name
        if isinstance(var_type, EnumType):
            # First match wins, exactly like the interpreter's linear
            # scans (EnumType.item / EnumType.decode).  A name whose
            # first occurrence is read-only stays off the fast path so
            # the slow path can raise the interpreter's error.
            encode_table: dict[str, int] = {}
            seen_names = set()
            for item in var_type.items:
                if item.name in seen_names:
                    continue
                seen_names.add(item.name)
                if item.direction.writable:
                    encode_table[item.name] = item.value
            decode_table: dict[int, str] = {}
            for item in var_type.readable_items:
                if item.value not in decode_table:
                    decode_table[item.value] = item.name
            self.namespace.setdefault(f"_ENC_{name}", encode_table)
            self.namespace.setdefault(f"_DEC_{name}", decode_table)
        elif isinstance(var_type, IntSetType):
            self.namespace.setdefault(f"_SET_{name}",
                                      frozenset(var_type.values))

    # -- action lowering ----------------------------------------------

    def _value_expr(self, value: ResolvedValue, context: dict[str, str],
                    loc_expr: str) -> str:
        if isinstance(value, Wildcard):
            return "0"
        if isinstance(value, ParamRef):
            return f"_raise_param({value.name!r}, {loc_expr})"
        if isinstance(value, VarRef):
            if value.name in context:
                return context[value.name]
            return f"_lwget({value.name!r}, {loc_expr})"
        # bool before int: True is an int.
        if isinstance(value, (bool, int, str)):
            return repr(value)
        raise AssertionError(f"unexpected action value {value!r}")

    def _emit_action(self, action: ResolvedAction,
                     context: dict[str, str],
                     kind: str = "reg-set") -> None:
        loc_expr = self._loc(action.location)
        if self.instrumented:
            self._w(f"_obs_act({kind!r}, {action.target!r})")
        if action.target_kind == "structure":
            assert isinstance(action.value, dict)
            if action.target in self.model.structures and \
                    self._structure_writable(action.target):
                arguments = ", ".join(
                    f"{member}={self._value_expr(inner, context, loc_expr)}"
                    for member, inner in action.value.items())
                self._w(f"set_{action.target}({arguments})")
            else:
                # The interpreter calls set_structure without checking
                # writability; no specialized setter exists, so keep the
                # interpreted path (and its errors).
                items = ", ".join(
                    f"{member!r}: "
                    f"{self._value_expr(inner, context, loc_expr)}"
                    for member, inner in action.value.items())
                self._w(f"_I.set_structure({action.target!r}, "
                        f"{{{items}}})")
            return
        expr = self._value_expr(action.value, context, loc_expr)
        target = self.model.variables.get(action.target)
        if target is not None and (target.memory or self._writable(target)):
            self._w(f"set_{action.target}({expr})")
        else:
            # No specialized setter exists; the interpreter path raises
            # (or handles) exactly like an interpreted action would.
            self._w(f"_set({action.target!r}, {expr})")

    def _emit_actions(self, actions: list[ResolvedAction],
                      context: dict[str, str],
                      kind: str = "reg-set") -> None:
        for action in actions:
            self._emit_action(action, context, kind)

    # -- debug checks -------------------------------------------------

    def _emit_mode_check(self, register: ResolvedRegister) -> None:
        if not self.debug or register.mode is None:
            return
        message = (f"register {register.name!r} is only addressable in "
                   f"mode {register.mode!r}, but the device is in %r")
        self._w("_dm = _mem.get('device_mode')")
        self._w(f"if _dm != {register.mode!r}:")
        self._push()
        self._w(f"raise _DRE({message!r} % (_dm,), "
                f"{self._loc(register.location)})")
        self._pop()

    # -- raw register access ------------------------------------------

    def _emit_register_read(self, register: ResolvedRegister,
                            context: dict[str, str]) -> None:
        port = register.read_port
        assert port is not None
        self._emit_mode_check(register)
        self._emit_actions(register.pre_actions, context, "pre")
        self._w(f"raw_{register.name} = "
                f"_read({self._address(port):#x}, {self._port_width(port)})")
        self._emit_shadow_update(register, read=True)
        self._emit_actions(register.post_actions, context, "post")
        self._emit_actions(register.set_actions, context)
        # The interpreter caches the full raw value after the actions.
        self._w(f"_rc[{register.name!r}] = raw_{register.name}")

    def _emit_register_write(self, register: ResolvedRegister,
                             composed: str,
                             context: dict[str, str]) -> None:
        port = register.write_port
        assert port is not None
        name = register.name
        self._w(f"_w_{name} = {composed}")
        self._emit_mode_check(register)
        self._emit_actions(register.pre_actions, context, "pre")
        forced = register.mask.forced_value
        on_bus = f"_w_{name} | {forced:#x}" if forced else f"_w_{name}"
        self._w(f"_write({on_bus}, {self._address(port):#x}, "
                f"{self._port_width(port)})")
        self._emit_shadow_update(register, read=False)
        self._emit_actions(register.post_actions, context, "post")
        self._emit_actions(register.set_actions, context)
        self._w(f"_rc[{name!r}] = _w_{name}")

    def _emit_shadow_update(self, register: ResolvedRegister,
                            read: bool) -> None:
        """Shadow-validity maintenance after a bus access (plan-driven)."""
        if not self.shadow_cache:
            return
        plan = self.plan[register.name]
        barrier = plan.read_barrier if read else plan.write_barrier
        if barrier:
            self._w("_sv.clear()")
        elif plan.read_elidable:
            self._w(f"_sv.add({register.name!r})")

    def _emit_rmw_refresh(self, register: ResolvedRegister,
                          context: dict[str, str]) -> None:
        """Ablation strategy: refresh neighbour bits from the device."""
        if self.composition == "read-modify-write" and \
                register.readable and \
                len(self.model.variables_of_register(register.name)) > 1:
            self._emit_register_read(register, {})
        del context  # the interpreter's refresh read runs with {}

    # -- value (de)composition ----------------------------------------

    def _extract_expr(self, source: str, msb: int, lsb: int,
                      source_width: int) -> str:
        """Extract bits lsb..msb of ``source`` (a value < 2**source_width)."""
        width = msb - lsb + 1
        mask = (1 << width) - 1
        if lsb == 0 and width >= source_width:
            return source
        if lsb == 0:
            return f"({source} & {mask:#x})"
        if msb == source_width - 1:
            return f"({source} >> {lsb})"
        return f"(({source} >> {lsb}) & {mask:#x})"

    def _assemble_expr(self, variable: ResolvedVariable,
                       raw_of) -> str:
        """MSB-first chunk concatenation; ``raw_of(register)`` gives the
        raw-value expression of one register."""
        parts = []
        offset = variable.width
        for chunk in variable.chunks:
            offset -= chunk.width
            register = self.model.registers[chunk.register]
            extract = self._extract_expr(raw_of(chunk.register),
                                         chunk.msb, chunk.lsb,
                                         register.width)
            parts.append(f"({extract} << {offset})" if offset else extract)
        return " | ".join(parts) if parts else "0"

    def _compose_var_write(self, register: ResolvedRegister,
                           writing: ResolvedVariable,
                           raw_expr: str = "raw") -> str:
        self_bits = 0
        inserts = []
        for chunk, value_lsb in writing.chunks_of(register.name):
            chunk_mask = (1 << chunk.width) - 1
            self_bits |= chunk_mask << chunk.lsb
            extract = self._extract_expr(raw_expr,
                                         value_lsb + chunk.width - 1,
                                         value_lsb, writing.width)
            inserts.append(f"({extract} << {chunk.lsb})"
                           if chunk.lsb else extract)
        neutral_bits, neutral_value = self._neutral_of(
            register, {writing.name})
        keep = register.mask.variable_bits & ~self_bits & ~neutral_bits
        parts = []
        if keep:
            parts.append(f"(_rc.get({register.name!r}, 0) & {keep:#x})")
        parts.extend(inserts)
        if neutral_value:
            parts.append(f"{neutral_value:#x}")
        return " | ".join(parts) if parts else "0"

    def _compose_struct_write(self, register: ResolvedRegister,
                              members: list[ResolvedVariable]) -> str:
        member_names = {m.name for m in members}
        written = 0
        parts = []
        for member in members:
            for chunk, value_lsb in member.chunks_of(register.name):
                chunk_mask = (1 << chunk.width) - 1
                written |= chunk_mask << chunk.lsb
                extract = self._extract_expr(f"_u[{member.name!r}]",
                                             value_lsb + chunk.width - 1,
                                             value_lsb, member.width)
                parts.append(f"({extract} << {chunk.lsb})"
                             if chunk.lsb else extract)
        neutral_bits, neutral_value = self._neutral_of(
            register, member_names)
        keep = register.mask.variable_bits & ~written & ~neutral_bits
        expr = []
        if keep:
            expr.append(f"(_rc.get({register.name!r}, 0) & {keep:#x})")
        expr.extend(parts)
        if neutral_value:
            expr.append(f"{neutral_value:#x}")
        return " | ".join(expr) if expr else "0"

    def _neutral_of(self, register: ResolvedRegister,
                    excluded: set[str]) -> tuple[int, int]:
        """Folded trigger-neutral bits of the register's neighbours."""
        neutral_bits = 0
        neutral_value = 0
        for neighbour in self.model.variables_of_register(register.name):
            if neighbour.name in excluded:
                continue
            if neighbour.behaviors.write_triggers and \
                    neighbour.trigger_neutral_raw is not None:
                for chunk, value_lsb in neighbour.chunks_of(register.name):
                    chunk_mask = (1 << chunk.width) - 1
                    neutral_bits |= chunk_mask << chunk.lsb
                    field = (neighbour.trigger_neutral_raw >> value_lsb) \
                        & chunk_mask
                    neutral_value |= field << chunk.lsb
        return neutral_bits, neutral_value

    # -- encode / decode ----------------------------------------------

    def _emit_encode(self, variable: ResolvedVariable,
                     value_expr: str = "value",
                     target: str = "raw") -> None:
        """``target = encode(value_expr)``.

        The fast path covers exactly the values on which debug and
        release encoding agree and succeed; everything else delegates to
        ``DeviceInstance._encode`` for identical results and errors.
        """
        var_type = variable.type
        name = variable.name
        self._tables_for(variable)
        if isinstance(var_type, BoolType):
            self._w(f"if isinstance({value_expr}, bool) "
                    f"or {value_expr} == 0 or {value_expr} == 1:")
            self._push()
            self._w(f"{target} = 1 if {value_expr} else 0")
            self._pop()
            self._w("else:")
            self._push()
            self._w(f"{target} = _enc({name!r}, {value_expr})")
            self._pop()
        elif isinstance(var_type, EnumType):
            self._w(f"{target} = _ENC_{name}.get({value_expr}, _MISS) "
                    f"if type({value_expr}) is str else _MISS")
            self._w(f"if {target} is _MISS:")
            self._push()
            self._w(f"{target} = _enc({name!r}, {value_expr})")
            self._pop()
        elif isinstance(var_type, IntSetType):
            self._w(f"if type({value_expr}) is int "
                    f"and {value_expr} in _SET_{name}:")
            self._push()
            self._w(f"{target} = {value_expr}")
            self._pop()
            self._w("else:")
            self._push()
            self._w(f"{target} = _enc({name!r}, {value_expr})")
            self._pop()
        elif isinstance(var_type, IntType):
            self._w(f"if type({value_expr}) is int and "
                    f"{var_type.minimum} <= {value_expr} "
                    f"<= {var_type.maximum}:")
            self._push()
            if var_type.signed:
                mask = (1 << var_type.width) - 1
                self._w(f"{target} = {value_expr} & {mask:#x}")
            else:
                self._w(f"{target} = {value_expr}")
            self._pop()
            self._w("else:")
            self._push()
            self._w(f"{target} = _enc({name!r}, {value_expr})")
            self._pop()
        else:
            # Unknown type: interpret.
            self._w(f"{target} = _enc({name!r}, {value_expr})")

    def _emit_decode(self, variable: ResolvedVariable, raw_expr: str,
                     target: str) -> None:
        """``target = decode(raw_expr)`` (raw_expr < 2**width)."""
        var_type = variable.type
        name = variable.name
        self._tables_for(variable)
        if isinstance(var_type, BoolType):
            self._w(f"{target} = bool({raw_expr})")
        elif isinstance(var_type, EnumType):
            if raw_expr != target and not raw_expr.isidentifier():
                self._w(f"_r = {raw_expr}")
                raw_expr = "_r"
            self._w(f"{target} = _DEC_{name}.get({raw_expr}, _MISS)")
            self._w(f"if {target} is _MISS:")
            self._push()
            self._w(f"{target} = _dec({name!r}, {raw_expr})")
            self._pop()
        elif isinstance(var_type, IntSetType):
            self._w(f"{target} = {raw_expr}")
            self._w(f"if {target} not in _SET_{name}:")
            self._push()
            self._w(f"{target} = _dec({name!r}, {target})")
            self._pop()
        elif isinstance(var_type, IntType) and var_type.signed:
            half = 1 << (var_type.width - 1)
            full = 1 << var_type.width
            self._w(f"{target} = {raw_expr}")
            self._w(f"if {target} >= {half:#x}:")
            self._push()
            self._w(f"{target} = {target} - {full:#x}")
            self._pop()
        elif isinstance(var_type, IntType):
            self._w(f"{target} = {raw_expr}")
        else:
            self._w(f"{target} = _dec({name!r}, {raw_expr})")

    # -- stub emitters ------------------------------------------------

    def _emit_memory_accessors(self, variable: ResolvedVariable) -> None:
        name = variable.name
        message = f"memory variable {name!r} read before initialisation"
        self._w(f"def get_{name}():")
        self._push()
        self._w("if _I._txn is not None:")
        self._push()
        self._w("_flush()")
        self._pop()
        self._w(f"if {name!r} in _mem:")
        self._push()
        self._w(f"return _mem[{name!r}]")
        self._pop()
        self._w(f"raise _DRE({message!r}, {self._loc(variable.location)})")
        self._pop()
        self._w()
        self._w(f"def set_{name}(value):")
        self._push()
        # The interpreter encodes (and so validates) memory writes, then
        # stores the abstract value without running set-actions.
        self._emit_encode(variable)
        self._w(f"_mem[{name!r}] = value")
        self._w(f"_lw[{name!r}] = value")
        self._pop()
        self._w()

    def _emit_getter(self, variable: ResolvedVariable) -> None:
        name = variable.name
        self._w(f"def get_{name}():")
        self._push()
        self._w("if _I._txn is not None:")
        self._push()
        self._w("_flush()")
        self._pop()
        if self.shadow_cache and self.plan.variable_elidable(variable):
            self._emit_elided_branch(variable)
        for register_name in variable.registers():
            self._emit_register_read(self.model.registers[register_name], {})
        raw = self._assemble_expr(variable, lambda reg: f"raw_{reg}")
        self._emit_decode(variable, raw, "_v")
        self._w("return _v")
        self._pop()
        self._w()

    def _emit_elided_branch(self, variable: ResolvedVariable) -> None:
        """Serve the read from the shadow cache when it is valid."""
        registers = variable.registers()
        condition = " and ".join(f"{reg!r} in _sv" for reg in registers)
        self._w(f"if {condition}:")
        self._push()
        for register_name in registers:
            register = self.model.registers[register_name]
            self._emit_mode_check(register)
            self._w(f"_raw_{register_name} = "
                    f"_rc.get({register_name!r}, 0)")
            if self.instrumented:
                port = register.read_port
                assert port is not None
                vb = register.mask.variable_bits
                self._w(f"_obs_elide({self._address(port):#x}, "
                        f"_raw_{register_name} & {vb:#x}, "
                        f"{self._port_width(port)})")
        self._w(f"_note_elided({len(registers)})")
        raw = self._assemble_expr(variable, lambda reg: f"_raw_{reg}")
        self._emit_decode(variable, raw, "_v")
        self._w("return _v")
        self._pop()

    def _emit_member_getter(self, variable: ResolvedVariable) -> None:
        name = variable.name
        structure = variable.structure
        assert structure is not None
        self._w(f"def get_{name}():")
        self._push()
        self._w("if _I._txn is not None:")
        self._push()
        self._w("_flush()")
        self._pop()
        self._w(f"_snap = _sc.get({structure!r})")
        raw = self._assemble_expr(variable,
                                  lambda reg: f"_snap[{reg!r}]")
        if self.debug:
            message = (f"variable {name!r} read before its structure "
                       f"{structure!r} was fetched — call "
                       f"get_{structure}() first")
            self._w("if _snap is None:")
            self._push()
            self._w(f"raise _DRE({message!r}, "
                    f"{self._loc(variable.location)})")
            self._pop()
            self._w(f"_raw = {raw}")
        else:
            self._w("if _snap is None:")
            self._push()
            self._w("_raw = 0")
            self._pop()
            self._w("else:")
            self._push()
            self._w(f"_raw = {raw}")
            self._pop()
        self._emit_decode(variable, "_raw", "_v")
        self._w("return _v")
        self._pop()
        self._w()

    def _emit_setter(self, variable: ResolvedVariable) -> None:
        name = variable.name
        context = {name: "value"}
        self._w(f"def set_{name}(value):")
        self._push()
        # Open transactions defer writes: encode on the inlined fast
        # path, then record the raw value in the transaction.  Single-
        # register variables get the deferral inlined (the common case
        # — one dict probe, one barrier test); multi-register and
        # serialized variables go through the shared interpreter
        # deferral so the ordering logic cannot drift.
        registers = variable.registers()
        self._w("if _I._txn is not None:")
        self._push()
        self._emit_encode(variable)
        if len(registers) == 1 and variable.serialization is None:
            register_name = registers[0]
            self._w("_t = _I._txn")
            self._w("_tr = _t['registers']")
            self._w(f"_p = _tr.get({register_name!r})")
            if variable.behaviors.write_triggers:
                # Trigger barrier: a repeated write to a write-trigger
                # variable must reach the device twice.
                self._w(f"if _p is not None and {name!r} in _p:")
                self._push()
                self._w("_flush()")
                self._w("_t = _I._txn")
                self._w("_tr = _t['registers']")
                self._w("_p = None")
                self._pop()
            self._w("if _p is None:")
            self._push()
            self._w(f"_tr[{register_name!r}] = _p = {{}}")
            self._w(f"_t['order'].append({register_name!r})")
            self._pop()
            self._w(f"_p[{name!r}] = raw")
            self._w(f"_t['variables'][{name!r}] = value")
            self._w("_t['deferred'] += 1")
            self._w(f"_lw[{name!r}] = value")
            if self.instrumented:
                self._w("_c = _bus.collector")
                self._w("if _c is not None:")
                self._push()
                self._w("_c.mark_coalesced()")
                self._pop()
        else:
            self._w(f"_defer(_vars[{name!r}], value, raw)")
        self._w("return")
        self._pop()
        self._emit_encode(variable)
        for register_name in variable.registers():
            register = self.model.registers[register_name]
            self._emit_rmw_refresh(register, context)
            composed = self._compose_var_write(register, variable)
            self._emit_register_write(register, composed, context)
        self._w(f"_lw[{name!r}] = value")
        self._emit_actions(variable.set_actions, context, "var-set")
        self._pop()
        self._w()

    def _emit_struct_getter(self, structure_name: str) -> None:
        structure = self.model.structures[structure_name]
        register_names = self._structure_registers(structure_name)
        self._w(f"def get_{structure_name}():")
        self._push()
        self._w("if _I._txn is not None:")
        self._push()
        self._w("_flush()")
        self._pop()
        for register_name in register_names:
            self._emit_register_read(self.model.registers[register_name], {})
        snapshot = ", ".join(f"{reg!r}: raw_{reg}"
                             for reg in register_names)
        self._w(f"_sc[{structure_name!r}] = {{{snapshot}}}")
        for member_name in structure.members:
            member = self.model.variables[member_name]
            raw = self._assemble_expr(member, lambda reg: f"raw_{reg}")
            self._emit_decode(member, raw, f"_v_{member_name}")
        items = ", ".join(f"{m!r}: _v_{m}" for m in structure.members)
        self._w(f"return {{{items}}}")
        self._pop()
        self._w()

    def _emit_struct_setter(self, structure_name: str) -> None:
        structure = self.model.structures[structure_name]
        members = [self.model.variables[m] for m in structure.members]
        context = {m.name: f"values[{m.name!r}]" for m in members}
        loc_expr = self._loc(structure.location)
        members_set = f"_M_{structure_name}"
        self.namespace[members_set] = frozenset(structure.members)

        # Per-member encoders (runtime iteration preserves the
        # interpreter's values-order encoding and error order).
        for member in members:
            self._w(f"def _e_{structure_name}_{member.name}(value):")
            self._push()
            self._emit_encode(member)
            self._w("return raw")
            self._pop()
            self._w()
        encoders = ", ".join(
            f"{m.name!r}: _e_{structure_name}_{m.name}" for m in members)
        self._w(f"_E_{structure_name} = {{{encoders}}}")
        self._w()

        # Per-member set-action runners (only members that have any).
        post_members = [m for m in members if m.set_actions]
        for member in post_members:
            self._w(f"def _p_{structure_name}_{member.name}(values):")
            self._push()
            self._emit_actions(member.set_actions, context, "var-set")
            self._pop()
            self._w()
        posts = ", ".join(f"{m.name!r}: _p_{structure_name}_{m.name}"
                          for m in post_members)
        self._w(f"_P_{structure_name} = {{{posts}}}")
        self._w()

        self._w(f"def set_{structure_name}(**values):")
        self._push()
        self._w("if _I._txn is not None:")
        self._push()
        self._w("_flush()")
        self._pop()
        self._w(f"if {members_set}.symmetric_difference(values):")
        self._push()
        self._w(f"_struct_args_error({structure_name!r}, {members_set}, "
                f"values, {loc_expr})")
        self._pop()
        self._w("_u = {}")
        self._w("for _k, _v in values.items():")
        self._push()
        self._w(f"_u[_k] = _E_{structure_name}[_k](_v)")
        self._pop()
        steps = structure.serialization
        if steps is None:
            steps = [SerStep(reg)
                     for reg in self._structure_registers(structure_name)]
        for step in steps:
            register = self.model.registers[step.register]
            if step.condition is not None:
                cond_var, expected = step.condition
                if isinstance(expected, (bool, int, str)):
                    expected_expr = repr(expected)
                else:
                    # Non-literal condition values compare by identity
                    # semantics the interpreter would apply; inject the
                    # object itself.
                    expected_expr = f"_COND_{structure_name}_{len(self.namespace)}"
                    self.namespace[expected_expr] = expected
                self._w(f"if _u.get({cond_var!r}) == {expected_expr}:")
                self._push()
                self._emit_struct_step(register, members, context)
                self._pop()
            else:
                self._emit_struct_step(register, members, context)
        self._w("for _k, _v in values.items():")
        self._push()
        self._w("_lw[_k] = _v")
        self._w(f"_r = _P_{structure_name}.get(_k)")
        self._w("if _r is not None:")
        self._push()
        self._w("_r(values)")
        self._pop()
        self._pop()
        self._pop()
        self._w()

    def _emit_struct_step(self, register: ResolvedRegister,
                          members: list[ResolvedVariable],
                          context: dict[str, str]) -> None:
        self._emit_rmw_refresh(register, context)
        composed = self._compose_struct_write(register, members)
        self._emit_register_write(register, composed, context)

    def _block_shape_ok(self, variable: ResolvedVariable) -> bool:
        if len(variable.chunks) != 1:
            return False
        chunk = variable.chunks[0]
        register = self.model.registers[chunk.register]
        return chunk.width == register.width and chunk.lsb == 0

    def _emit_block_stubs(self, variable: ResolvedVariable) -> None:
        name = variable.name
        shape_ok = self._block_shape_ok(variable)
        register = self.model.registers[variable.chunks[0].register] \
            if variable.chunks else None
        if self._readable(variable):
            self._w(f"def read_{name}_block(count):")
            self._push()
            self._w("if _I._txn is not None:")
            self._push()
            self._w("_flush()")
            self._pop()
            if shape_ok and register is not None and register.readable:
                port = register.read_port
                self._emit_actions(register.pre_actions, {}, "pre")
                self._w(f"_vals = _block_read({self._address(port):#x}, "
                        f"count, {self._port_width(port)})")
                if self.shadow_cache:
                    self._w("_sv.clear()")
                self._emit_actions(register.post_actions, {}, "post")
                self._emit_actions(register.set_actions, {})
                self._w("return _vals")
            else:
                # Malformed block variables raise at call time exactly
                # like the interpreter.
                self._w(f"return _I.read_block({name!r}, count)")
            self._pop()
            self._w()
        if self._writable(variable):
            self._w(f"def write_{name}_block(values):")
            self._push()
            self._w("if _I._txn is not None:")
            self._push()
            self._w("_flush()")
            self._pop()
            if shape_ok and register is not None and register.writable:
                port = register.write_port
                self._emit_actions(register.pre_actions, {}, "pre")
                self._w(f"_n = _block_write({self._address(port):#x}, "
                        f"values, {self._port_width(port)})")
                if self.shadow_cache:
                    self._w("_sv.clear()")
                self._emit_actions(register.post_actions, {}, "post")
                self._emit_actions(register.set_actions, {})
                self._w("return _n")
            else:
                self._w(f"return _I.write_block({name!r}, values)")
            self._pop()
            self._w()

    # -- driver -------------------------------------------------------

    # -- specialized transaction flush writers ------------------------

    def _txn_writer_registers(self) -> list:
        """Registers whose transaction flush can run straight-line.

        A register qualifies when composing it needs no model walk at
        flush time: ``cache`` composition, a write port, no register
        actions (actions may consult the deferred-values context, which
        the interpreter's generic flush provides).  Registers that do
        not qualify simply fall back to the interpreter's
        ``_compose_register_write`` path — semantics are identical
        either way, only the dispatch cost differs.
        """
        if self.composition != "cache":
            return []
        result = []
        for register in self.model.registers.values():
            if register.write_port is None:
                continue
            if register.pre_actions or register.post_actions or \
                    register.set_actions:
                continue
            owners = self.model.variables_of_register(register.name)
            if not any(self._writable(owner) and not owner.memory and
                       owner.structure is None for owner in owners):
                continue
            result.append(register)
        return result

    def _emit_txn_writer(self, register: ResolvedRegister) -> None:
        """``_txn_write_<reg>(updates)``: the specialized equivalent of
        ``_compose_register_write`` + ``write_register`` for one
        register, with masks, neutral values and the port address
        folded in.  Must compose exactly what the interpreter would:
        updated owners contribute their new bits, write-trigger
        neighbours their neutral value, everyone else their cached
        bits."""
        name = register.name
        width_mask = (1 << register.width) - 1
        self._w(f"def _txn_write_{name}(_u):")
        self._push()
        self._w(f"_x = _rc.get({name!r}, 0) & "
                f"{register.mask.variable_bits:#x}")
        for owner in self.model.variables_of_register(name):
            bits = 0
            inserts = []
            for chunk, value_lsb in owner.chunks_of(name):
                chunk_mask = (1 << chunk.width) - 1
                bits |= chunk_mask << chunk.lsb
                extract = self._extract_expr(
                    "_v", value_lsb + chunk.width - 1, value_lsb,
                    owner.width)
                inserts.append(f"({extract} << {chunk.lsb})"
                               if chunk.lsb else extract)
            keep = ~bits & width_mask
            neutral = None
            if owner.behaviors.write_triggers and \
                    owner.trigger_neutral_raw is not None:
                neutral = 0
                for chunk, value_lsb in owner.chunks_of(name):
                    chunk_mask = (1 << chunk.width) - 1
                    field = (owner.trigger_neutral_raw >> value_lsb) \
                        & chunk_mask
                    neutral |= field << chunk.lsb
            deferrable = self._writable(owner) and not owner.memory \
                and owner.structure is None
            if deferrable:
                self._w(f"_v = _u.get({owner.name!r})")
                self._w("if _v is not None:")
                self._push()
                self._w(f"_x = (_x & {keep:#x}) | "
                        f"{' | '.join(inserts)}")
                self._pop()
                if neutral is not None:
                    self._w("else:")
                    self._push()
                    self._w(f"_x = (_x & {keep:#x}) | {neutral:#x}")
                    self._pop()
            elif neutral is not None:
                self._w(f"_x = (_x & {keep:#x}) | {neutral:#x}")
        self._emit_register_write(register, "_x", {})
        self._pop()
        self._w()

    def generate(self) -> str:
        model = self.model
        self._w(f"# Specialized stubs for {model.name!r} "
                f"(debug={self.debug}, composition={self.composition!r}, "
                f"instrumented={self.instrumented}, "
                f"shadow_cache={self.shadow_cache}).")
        self._w("# Generated by repro.devil.specialize; do not edit.")
        self._w()
        self._w("def _factory(_I):")
        self._push()
        self._w("_bus = _I.bus")
        self._w("_read = _bus.read")
        self._w("_write = _bus.write")
        self._w("_block_read = _bus.block_read")
        self._w("_block_write = _bus.block_write")
        self._w("_rc = _I._register_cache")
        self._w("_sc = _I._structure_cache")
        self._w("_mem = _I._memory")
        self._w("_lw = _I._last_written")
        self._w("_encode = _I._encode")
        self._w("_decode = _I._decode")
        self._w("_set = _I.set")
        self._w("_flush = _I._flush_pending")
        self._w("_defer = _I._defer_write")
        if self.shadow_cache:
            self._w("_sv = _I._shadow_valid")
            self._w("_note_elided = _bus.note_elided")
        self._w()
        self._w("def _enc(name, value):")
        self._push()
        self._w("return _encode(_vars[name], value)")
        self._pop()
        self._w()
        self._w("def _dec(name, raw):")
        self._push()
        self._w("return _decode(_vars[name], raw)")
        self._pop()
        self._w()
        self._w("def _lwget(name, loc):")
        self._push()
        self._w("if name in _lw:")
        self._push()
        self._w("return _lw[name]")
        self._pop()
        self._w("raise _DRE('action reads variable %r before any value "
                "was written to it' % (name,), loc)")
        self._pop()
        self._w()
        if self.instrumented:
            self._w("def _obs_act(kind, target):")
            self._push()
            self._w("_c = _bus.collector")
            self._w("if _c is not None:")
            self._push()
            self._w("_c.record_action(kind, target)")
            self._pop()
            self._pop()
            self._w()
        if self.instrumented and self.shadow_cache:
            self._w("def _obs_elide(port, value, width):")
            self._push()
            self._w("_c = _bus.collector")
            self._w("if _c is not None and _bus.tracing:")
            self._push()
            self._w("_c.io_event('r', port, value, width, 1, True)")
            self._pop()
            self._pop()
            self._w()

        public: list[tuple[str, str]] = []  # (attach name, function name)
        for variable in model.variables.values():
            readable = self._readable(variable)
            writable = self._writable(variable)
            if variable.memory:
                self._emit_memory_accessors(variable)
            else:
                if readable:
                    if variable.structure is not None:
                        self._emit_member_getter(variable)
                    else:
                        self._emit_getter(variable)
                if writable:
                    self._emit_setter(variable)
            if not variable.private:
                if readable:
                    public.append((f"get_{variable.name}",) * 2)
                if writable:
                    public.append((f"set_{variable.name}",) * 2)
            if variable.behaviors.block:
                self._emit_block_stubs(variable)
                if not variable.private:
                    if readable:
                        public.append((f"read_{variable.name}_block",) * 2)
                    if writable:
                        public.append((f"write_{variable.name}_block",) * 2)
        for structure in model.structures.values():
            if self._structure_readable(structure.name):
                self._emit_struct_getter(structure.name)
                public.append((f"get_{structure.name}",) * 2)
            if self._structure_writable(structure.name):
                self._emit_struct_setter(structure.name)
                public.append((f"set_{structure.name}",) * 2)

        writer_registers = self._txn_writer_registers()
        for register in writer_registers:
            self._emit_txn_writer(register)
        if writer_registers:
            writer_entries = ", ".join(
                f"{register.name!r}: _txn_write_{register.name}"
                for register in writer_registers)
            self._w(f"_I._txn_writers = {{{writer_entries}}}")
        else:
            self._w("_I._txn_writers = None")

        entries = ", ".join(f"{attach!r}: {func}"
                            for attach, func in public)
        self._w(f"return {{{entries}}}")
        self._pop()
        self.stub_names = [attach for attach, _ in public]
        return "\n".join(self.lines) + "\n"


# ---------------------------------------------------------------------------
# Factory cache and instance attachment
# ---------------------------------------------------------------------------

#: ``id(model) -> (model, {(bases, debug, composition): entry})``.  The
#: model reference pins the id so keys can never alias; the number of
#: distinct specialized models per process is small (shipped specs are
#: memoized by ``specs.compile_shipped``).
_FACTORY_CACHE: dict[int, tuple[ResolvedDevice, dict]] = {}

#: Serializes cache *misses* only (generation + ``exec`` of one
#: specialization).  Hits never touch it: a published entry is complete
#: (the per-model dict assignment is atomic), so concurrent binds of an
#: already-specialized key stay lock-free.
_FACTORY_LOCK = threading.Lock()


def specialized_factory(model: ResolvedDevice, bases: dict[str, int],
                        debug: bool, composition: str,
                        instrumented: bool = False,
                        shadow_cache: bool = False):
    """Return ``(factory, source, stub_names)`` for one specialization key.

    Generation, ``compile`` and ``exec`` run once per key; rebinding the
    same specification at the same addresses only re-runs the factory.
    ``instrumented`` selects the telemetry variant (action probes
    emitted inline); it is part of the key, so enabling
    :mod:`repro.obs` never mutates sources served to uninstrumented
    bindings.  Thread-safe: two threads binding the same spec
    concurrently specialize it exactly once (double-checked under
    :data:`_FACTORY_LOCK`) and both receive the same entry.
    """
    key = (tuple(sorted(bases.items())), debug, composition, instrumented,
           shadow_cache)
    _, per_model = _FACTORY_CACHE.setdefault(id(model), (model, {}))
    entry = per_model.get(key)
    if entry is None:
        with _FACTORY_LOCK:
            entry = per_model.get(key)
            if entry is None:
                specializer = _Specializer(model, bases, debug,
                                           composition, instrumented,
                                           shadow_cache)
                source = specializer.generate()
                code = compile(source,
                               f"<devil-specialize:{model.name}>",
                               "exec")
                namespace = specializer.namespace
                exec(code, namespace)
                entry = (namespace["_factory"], source,
                         tuple(specializer.stub_names))
                per_model[key] = entry
    return entry


def generate_specialized_source(model: ResolvedDevice,
                                bases: dict[str, int],
                                debug: bool = True,
                                composition: str = "cache",
                                instrumented: bool = False,
                                shadow_cache: bool = False) -> str:
    """The generated factory source (for inspection and tests)."""
    return _Specializer(model, bases, debug, composition,
                        instrumented, shadow_cache).generate()


def specialize_instance(instance) -> None:
    """Replace ``instance``'s interpreted stubs with specialized closures.

    Only the stub attributes the interpreter attached are overwritten,
    so the public surface of the instance is identical in both
    strategies; the generic ``get``/``set``/``transaction`` API keeps
    using the interpreter against the same shared state.
    """
    factory, source, stub_names = specialized_factory(
        instance.model, instance.bases, instance.debug,
        instance.composition,
        instrumented=getattr(instance, "_instrumented", False),
        shadow_cache=getattr(instance, "shadow_cache", False))
    stubs = factory(instance)
    instance._specialized_source = source
    instance._specialized_stubs = stubs
    for name in stub_names:
        setattr(instance, name, stubs[name])
