"""Tokenizer for the Devil specification language.

The concrete syntax follows the figures of the OSDI 2000 paper: C-style
comments, single-quoted bit patterns such as ``'1001000.'``, the ``@``
port constructor, ``#`` register concatenation, ``..`` ranges, and the
enumerated-type arrows ``=>``, ``<=`` and ``<=>``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from .errors import DevilLexError, SourceLocation


class TokenKind(enum.Enum):
    """Lexical categories of the Devil language."""

    IDENT = "identifier"
    KEYWORD = "keyword"
    INT = "integer"
    BITPATTERN = "bit pattern"

    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    AT = "@"
    COLON = ":"
    SEMICOLON = ";"
    COMMA = ","
    HASH = "#"
    STAR = "*"
    DOTDOT = ".."
    PLUS = "+"
    ASSIGN = "="
    EQ = "=="
    ARROW_WRITE = "=>"
    ARROW_READ = "<="
    ARROW_BOTH = "<=>"

    EOF = "end of input"


#: Reserved words.  ``int``, ``bool``, ``signed``, ``bit`` and ``port`` are
#: keywords because they begin type expressions; the behaviour qualifiers
#: and action introducers are keywords because they follow commas where an
#: identifier would be ambiguous.
KEYWORDS = frozenset({
    "device", "register", "variable", "structure", "type", "private",
    "read", "write", "mask", "pre", "post", "set",
    "trigger", "volatile", "block", "except", "for",
    "serialized", "as", "if",
    "int", "signed", "bool", "bit", "port",
    "true", "false",
})

#: Characters allowed inside a quoted bit pattern.  ``.`` marks a bit
#: defined by a device variable, ``*`` and ``-`` mark irrelevant bits, and
#: ``0``/``1`` mark bits forced to a fixed value when written.  (The
#: paper's prose and its figures swap the roles of ``*`` and ``.``; we
#: follow the figures, which are self-consistent across all five example
#: devices — see ``repro.devil.mask``.)
BITPATTERN_CHARS = frozenset("01.*-")

_PUNCTUATION_3 = {"<=>": TokenKind.ARROW_BOTH}
_PUNCTUATION_2 = {
    "..": TokenKind.DOTDOT,
    "==": TokenKind.EQ,
    "=>": TokenKind.ARROW_WRITE,
    "<=": TokenKind.ARROW_READ,
}
_PUNCTUATION_1 = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "@": TokenKind.AT,
    ":": TokenKind.COLON,
    ";": TokenKind.SEMICOLON,
    ",": TokenKind.COMMA,
    "#": TokenKind.HASH,
    "*": TokenKind.STAR,
    "+": TokenKind.PLUS,
    "=": TokenKind.ASSIGN,
}


@dataclass(frozen=True)
class Token:
    """One lexical unit, with its source text and location."""

    kind: TokenKind
    text: str
    location: SourceLocation
    value: int | None = None  # decoded value for INT tokens

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __str__(self) -> str:
        if self.kind in (TokenKind.IDENT, TokenKind.KEYWORD, TokenKind.INT):
            return f"{self.kind.value} '{self.text}'"
        if self.kind is TokenKind.BITPATTERN:
            return f"bit pattern '{self.text}'"
        return f"'{self.kind.value}'"


class Lexer:
    """Hand-written scanner producing :class:`Token` objects.

    The scanner is deliberately simple and fully deterministic: the only
    context sensitivity in Devil's lexical grammar is the single-quoted
    bit pattern, which is recognised as one token.
    """

    def __init__(self, source: str, filename: str = "<devil>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._column = 1

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._column, self._filename)

    def _peek(self, ahead: int = 0) -> str:
        index = self._pos + ahead
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and both comment styles."""
        while self._pos < len(self._source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while self._pos < len(self._source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise DevilLexError("unterminated block comment", start)
            else:
                return

    def _lex_bit_pattern(self) -> Token:
        start = self._location()
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            char = self._peek()
            if char == "'":
                self._advance()
                break
            if char == "" or char == "\n":
                raise DevilLexError("unterminated bit pattern", start)
            if char not in BITPATTERN_CHARS:
                raise DevilLexError(
                    f"invalid character {char!r} in bit pattern "
                    f"(allowed: 0 1 . * -)", self._location())
            chars.append(char)
            self._advance()
        if not chars:
            raise DevilLexError("empty bit pattern", start)
        return Token(TokenKind.BITPATTERN, "".join(chars), start)

    def _lex_number(self) -> Token:
        start = self._location()
        begin = self._pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            if not self._peek().isalnum():
                raise DevilLexError("incomplete hexadecimal literal", start)
            while self._peek().isalnum():
                self._advance()
            text = self._source[begin:self._pos]
            try:
                value = int(text, 16)
            except ValueError:
                raise DevilLexError(f"invalid hexadecimal literal {text!r}",
                                    start) from None
        elif self._peek() == "0" and self._peek(1) in "bB":
            self._advance(2)
            while self._peek().isalnum():
                self._advance()
            text = self._source[begin:self._pos]
            try:
                value = int(text, 2)
            except ValueError:
                raise DevilLexError(f"invalid binary literal {text!r}",
                                    start) from None
        else:
            while self._peek().isdigit():
                self._advance()
            text = self._source[begin:self._pos]
            value = int(text, 10)
            if self._peek().isalpha() or self._peek() == "_":
                raise DevilLexError(
                    f"identifier may not start with a digit near {text!r}",
                    start)
        return Token(TokenKind.INT, text, start, value=value)

    def _lex_word(self) -> Token:
        start = self._location()
        begin = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[begin:self._pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, start)

    def next_token(self) -> Token:
        """Return the next token (``EOF`` forever once input is spent)."""
        self._skip_trivia()
        start = self._location()
        char = self._peek()
        if char == "":
            return Token(TokenKind.EOF, "", start)
        if char == "'":
            return self._lex_bit_pattern()
        if char.isdigit():
            return self._lex_number()
        if char.isalpha() or char == "_":
            return self._lex_word()

        three = self._source[self._pos:self._pos + 3]
        if three in _PUNCTUATION_3:
            self._advance(3)
            return Token(_PUNCTUATION_3[three], three, start)
        two = self._source[self._pos:self._pos + 2]
        if two in _PUNCTUATION_2:
            self._advance(2)
            return Token(_PUNCTUATION_2[two], two, start)
        if char in _PUNCTUATION_1:
            self._advance()
            return Token(_PUNCTUATION_1[char], char, start)
        raise DevilLexError(f"unexpected character {char!r}", start)

    def tokens(self) -> Iterator[Token]:
        """Yield every token, ending with a single ``EOF`` token."""
        while True:
            token = self.next_token()
            yield token
            if token.kind is TokenKind.EOF:
                return


def tokenize(source: str, filename: str = "<devil>") -> list[Token]:
    """Tokenize ``source`` completely; convenience wrapper over Lexer."""
    return list(Lexer(source, filename).tokens())
