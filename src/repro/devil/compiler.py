"""Pipeline driver: the public entry point of the Devil compiler.

Mirrors the paper's toolchain: source → parse → static verification →
backends.  :func:`compile_spec` runs the front end and returns a
:class:`CompiledSpec` from which callers can

* bind executable Python stubs to a simulated bus (:meth:`CompiledSpec.bind`),
* emit the C stub header (:meth:`CompiledSpec.emit_c`), or
* emit a standalone Python stub module (:meth:`CompiledSpec.emit_python`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bus import Bus
from . import ast
from .checker import check
from .errors import Diagnostic, DiagnosticSink
from .model import ResolvedDevice
from .parser import parse
from .runtime import DeviceInstance


@dataclass
class CompiledSpec:
    """A successfully verified specification and its artifacts."""

    source: str
    filename: str
    syntax: ast.DeviceDecl
    model: ResolvedDevice
    warnings: list[Diagnostic] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.model.name

    def bind(self, bus: Bus, bases: dict[str, int],
             debug: bool = True,
             composition: str = "cache",
             strategy: str = "interpret",
             shadow_cache: bool = False) -> DeviceInstance:
        """Instantiate executable stubs on ``bus`` at ``bases``.

        ``debug=True`` enables the run-time checks of §3.2, the
        equivalent of compiling with ``DEVIL_DEBUG`` defined.
        ``composition`` selects the shared-register write strategy
        (``"cache"``, Devil's; ``"read-modify-write"`` for the
        ablation benchmark).  ``strategy`` selects how the stubs
        execute: ``"interpret"`` (walk the resolved model per call),
        ``"specialize"`` (partial evaluation into straight-line
        closures at bind time — same semantics, faster calls; see
        :mod:`repro.devil.specialize`), ``"native"`` (compile the
        generated C stubs into a per-spec shared library and dispatch
        through it; see :mod:`repro.devil.native`; raises
        :class:`~repro.devil.native.NativeBuildError` if no C compiler
        is installed), or ``"auto"`` (``native`` when a C compiler is
        available, else ``specialize``).  ``shadow_cache=True``
        enables the volatility-aware register shadow cache: reads of
        registers whose last raw value is still authoritative are
        served without port I/O (see :mod:`repro.devil.plan`).
        """
        if strategy == "auto":
            from .native import native_available
            strategy = ("native" if native_available()
                        and composition == "cache" and not shadow_cache
                        else "specialize")
        if strategy == "native":
            from .native import bind_native
            return bind_native(self.model, bus, bases, debug=debug,
                               composition=composition,
                               shadow_cache=shadow_cache)
        return DeviceInstance(self.model, bus, bases, debug=debug,
                              composition=composition,
                              strategy=strategy,
                              shadow_cache=shadow_cache)

    def emit_c(self, prefix: str | None = None, debug: bool = False) -> str:
        """Generate the C stub header (Figure 3c's artifact)."""
        from .codegen.c_backend import generate_c_header
        return generate_c_header(self.model, prefix=prefix, debug=debug)

    def emit_python(self, observe: bool = False) -> str:
        """Generate a standalone Python stub module.

        ``observe=True`` emits :mod:`repro.obs` telemetry hooks (span
        decorators on public stubs, action-record probes); the default
        module has no hooks and no overhead.
        """
        from .codegen.py_backend import generate_python_module
        return generate_python_module(self.model, observe=observe)

    def emit_doc(self) -> str:
        """Generate the Markdown datasheet (§4.1: specs double as
        documentation)."""
        from .docgen import generate_markdown
        return generate_markdown(self.model)


def compile_spec(source: str, filename: str = "<devil>") -> CompiledSpec:
    """Compile one Devil specification from source text.

    Raises :class:`~repro.devil.errors.DevilParseError` or
    :class:`~repro.devil.errors.DevilCheckError` on invalid input.
    """
    syntax = parse(source, filename)
    sink = DiagnosticSink()
    model = check(syntax, sink)
    return CompiledSpec(source, filename, syntax, model,
                        warnings=list(sink.warnings))


def compile_file(path: str) -> CompiledSpec:
    """Compile a ``.devil`` file from disk."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return compile_spec(source, filename=path)
