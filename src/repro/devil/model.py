"""Resolved (checked) model of a Devil specification.

The static checker (:mod:`repro.devil.checker`) lowers the syntactic AST
into the value objects defined here.  This resolved model is what the
code generators consume: every name is resolved, every type concrete,
every register's mask explicit, and every action reduced to a small
command the stub runtime can interpret.

The model corresponds to the paper's compiled form of a specification:
it contains exactly the information needed to emit the get/set stubs of
Figure 3c, plus the metadata for the optional run-time checks of §3.2.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .ast import Behaviors, PortParam
from .errors import SourceLocation, UNKNOWN_LOCATION
from .mask import Mask
from .types import DevilType

#: Guards *population* of the lazy derivation caches below
#: (``ResolvedVariable.width``/``registers``/``chunks_of``,
#: ``ResolvedDevice.variables_of_register``).  The hot path — a cache
#: hit — stays a plain ``__dict__`` probe with no lock: publication is
#: a single atomic dict assignment of a fully built value, so readers
#: either see nothing (and take the lock to build) or a complete
#: cache.  The lock only serializes concurrent *misses*, preventing
#: two threads from interleaving partial population (one shared lock
#: is enough: misses happen once per model per process).  It is an
#: RLock because the derivations nest — ``chunks_of`` consults
#: ``width`` while holding the lock, and both may be cold.
_MEMO_LOCK = threading.RLock()


# ---------------------------------------------------------------------------
# Resolved action values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Wildcard:
    """A ``*`` action value: any value is acceptable (stubs write 0)."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class ParamRef:
    """Reference to a register-constructor parameter inside its actions."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VarRef:
    """Reference to the just-written value of another variable.

    Used by ``set`` actions such as ``set {xm = XRAE}``: after writing
    XRAE, the memory variable ``xm`` takes the written value.
    """

    name: str

    def __str__(self) -> str:
        return self.name


#: A fully resolved action value.  ``int``/``bool``/``str`` are literal
#: values (``str`` being an enum symbol); dict maps structure member
#: names to nested values.
ResolvedValue = (
    int | bool | str | Wildcard | ParamRef | VarRef | dict
)


@dataclass
class ResolvedAction:
    """``target = value`` where target is a variable or structure."""

    target: str
    target_kind: str  # "variable" or "structure"
    value: ResolvedValue
    location: SourceLocation = UNKNOWN_LOCATION

    def substitute(self, bindings: dict[str, int]) -> "ResolvedAction":
        """Replace constructor-parameter references with concrete ints."""
        return ResolvedAction(
            self.target, self.target_kind,
            _substitute_value(self.value, bindings), self.location)


def _substitute_value(value: ResolvedValue,
                      bindings: dict[str, int]) -> ResolvedValue:
    if isinstance(value, ParamRef) and value.name in bindings:
        return bindings[value.name]
    if isinstance(value, dict):
        return {name: _substitute_value(inner, bindings)
                for name, inner in value.items()}
    return value


# ---------------------------------------------------------------------------
# Registers
# ---------------------------------------------------------------------------


@dataclass
class ResolvedRegister:
    """A concrete register (constructors appear only after instantiation).

    ``read_port``/``write_port`` are ``(param_name, offset)`` pairs; at
    least one is set.  ``mask`` is always explicit (the implicit mask of
    an unmasked register is all-variable).
    """

    name: str
    width: int
    mask: Mask
    read_port: tuple[str, int] | None = None
    write_port: tuple[str, int] | None = None
    pre_actions: list[ResolvedAction] = field(default_factory=list)
    post_actions: list[ResolvedAction] = field(default_factory=list)
    set_actions: list[ResolvedAction] = field(default_factory=list)
    #: Name of the constructor this register was instantiated from.
    constructor: str | None = None
    constructor_args: tuple[int, ...] = ()
    #: Operating mode this register is valid in, or None (all modes).
    mode: str | None = None
    location: SourceLocation = UNKNOWN_LOCATION

    @property
    def readable(self) -> bool:
        return self.read_port is not None

    @property
    def writable(self) -> bool:
        return self.write_port is not None


@dataclass
class RegisterConstructor:
    """An indexed register family, e.g. ``register I(i : int{0..31})``.

    Instantiation substitutes the parameter bindings into the pre/post/
    set actions of the ``template`` register and into parameterized
    port offsets (``base @ 1 + i``, the register-array feature).
    """

    name: str
    param_names: tuple[str, ...]
    param_types: tuple[DevilType, ...]
    template: ResolvedRegister = None  # type: ignore[assignment]
    #: Constructor parameter added to the read/write port offset, if any.
    read_offset_param: str | None = None
    write_offset_param: str | None = None
    location: SourceLocation = UNKNOWN_LOCATION

    def instantiate(self, instance_name: str,
                    arguments: tuple[int, ...]) -> ResolvedRegister:
        bindings = dict(zip(self.param_names, arguments))
        template = self.template
        read_port = template.read_port
        if read_port is not None and self.read_offset_param is not None:
            read_port = (read_port[0], read_port[1]
                         + bindings[self.read_offset_param])
        write_port = template.write_port
        if write_port is not None and self.write_offset_param is not None:
            write_port = (write_port[0], write_port[1]
                          + bindings[self.write_offset_param])
        return ResolvedRegister(
            name=instance_name,
            width=template.width,
            mask=template.mask,
            read_port=read_port,
            write_port=write_port,
            pre_actions=[a.substitute(bindings)
                         for a in template.pre_actions],
            post_actions=[a.substitute(bindings)
                          for a in template.post_actions],
            set_actions=[a.substitute(bindings)
                         for a in template.set_actions],
            constructor=self.name,
            constructor_args=arguments,
            mode=template.mode,
            location=template.location,
        )


# ---------------------------------------------------------------------------
# Variables and structures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedChunk:
    """One bit range of one register; chunks are listed MSB-first."""

    register: str
    msb: int
    lsb: int

    @property
    def width(self) -> int:
        return self.msb - self.lsb + 1


@dataclass
class ResolvedVariable:
    """A fully checked device variable.

    ``memory`` variables have no chunks: they are the private state
    cells of §2.2 used to model addressing automata (e.g. ``xm`` of the
    CS4236B).  ``serialization`` lists the registers of a multi-register
    variable in the order their I/O must happen.
    """

    name: str
    type: DevilType
    private: bool = False
    memory: bool = False
    chunks: list[ResolvedChunk] = field(default_factory=list)
    behaviors: Behaviors = field(default_factory=Behaviors)
    #: Raw value that does *not* trigger (from ``except SYMBOL``).
    trigger_neutral_raw: int | None = None
    #: Raw value that is the only one to trigger (from ``for VALUE``).
    trigger_for_raw: int | None = None
    set_actions: list[ResolvedAction] = field(default_factory=list)
    serialization: list[str] | None = None
    #: Enclosing structure name, or None for top-level variables.
    structure: str | None = None
    location: SourceLocation = UNKNOWN_LOCATION

    @property
    def width(self) -> int:
        cache = self.__dict__.get("_width_cache")
        if cache is None or cache[0] != len(self.chunks):
            with _MEMO_LOCK:
                cache = self.__dict__.get("_width_cache")
                if cache is None or cache[0] != len(self.chunks):
                    cache = (len(self.chunks),
                             sum(chunk.width for chunk in self.chunks))
                    self.__dict__["_width_cache"] = cache
        return cache[1]

    def registers(self) -> list[str]:
        """Register names in I/O order (serialization if given)."""
        if self.serialization is not None:
            return list(self.serialization)
        cache = self.__dict__.get("_registers_cache")
        if cache is None or cache[0] != len(self.chunks):
            with _MEMO_LOCK:
                cache = self.__dict__.get("_registers_cache")
                if cache is None or cache[0] != len(self.chunks):
                    seen: list[str] = []
                    for chunk in self.chunks:
                        if chunk.register not in seen:
                            seen.append(chunk.register)
                    cache = (len(self.chunks), seen)
                    self.__dict__["_registers_cache"] = cache
        return list(cache[1])

    def chunks_of(self, register: str) -> list[tuple[ResolvedChunk, int]]:
        """Chunks living in ``register`` with their LSB offset in the
        variable's value (chunk 0 is the most significant).

        Memoized per register (callers iterate, never mutate): the
        interpreter walks this on every composed write and transaction
        defer.  Caches invalidate if chunks are still being populated;
        misses populate under :data:`_MEMO_LOCK` (double-checked) so
        concurrent first calls cannot interleave.
        """
        cache = self.__dict__.get("_chunks_of_cache")
        result = None if cache is None or cache[0] != len(self.chunks) \
            else cache[1].get(register)
        if result is None:
            with _MEMO_LOCK:
                cache = self.__dict__.get("_chunks_of_cache")
                if cache is None or cache[0] != len(self.chunks):
                    cache = (len(self.chunks), {})
                    self.__dict__["_chunks_of_cache"] = cache
                result = cache[1].get(register)
                if result is None:
                    result = []
                    offset = self.width
                    for chunk in self.chunks:
                        offset -= chunk.width
                        if chunk.register == register:
                            result.append((chunk, offset))
                    cache[1][register] = result
        return result


@dataclass
class SerStep:
    """One step of a structure serialization: write ``register`` if the
    optional condition ``(variable, value)`` holds."""

    register: str
    condition: tuple[str, ResolvedValue] | None = None
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class ResolvedStructure:
    """A structure grouping variables for consistent (cached) access."""

    name: str
    members: list[str] = field(default_factory=list)
    serialization: list[SerStep] | None = None
    location: SourceLocation = UNKNOWN_LOCATION


# ---------------------------------------------------------------------------
# Device
# ---------------------------------------------------------------------------


@dataclass
class ResolvedDevice:
    """The checked specification; input of both code generators."""

    name: str
    params: dict[str, PortParam] = field(default_factory=dict)
    #: Declared operating modes, in order; the first is the reset mode.
    modes: tuple[str, ...] = ()
    types: dict[str, DevilType] = field(default_factory=dict)
    registers: dict[str, ResolvedRegister] = field(default_factory=dict)
    constructors: dict[str, RegisterConstructor] = field(default_factory=dict)
    variables: dict[str, ResolvedVariable] = field(default_factory=dict)
    structures: dict[str, ResolvedStructure] = field(default_factory=dict)
    #: Static access plan (:class:`repro.devil.plan.AccessPlan`),
    #: attached by the checker; :func:`repro.devil.plan.access_plan`
    #: computes it lazily for hand-built models.
    plan: object | None = None
    location: SourceLocation = UNKNOWN_LOCATION

    def public_variables(self) -> list[ResolvedVariable]:
        """The functional interface: everything not ``private``."""
        return [v for v in self.variables.values() if not v.private]

    def variables_of_register(self, register: str) -> list[ResolvedVariable]:
        """Every variable owning at least one bit of ``register``.

        Memoized: the interpreter consults this on every composed
        register write and the specializer in every compose-emission
        loop, so the linear scan over all variables is built once per
        variable-set generation (keyed by the variable count, which only
        grows while the checker is still populating the model).  Misses
        rebuild under :data:`_MEMO_LOCK` and publish the finished map
        with one atomic assignment, so concurrent threads compiling or
        binding the same model never observe a half-built owners table.
        """
        cached = self.__dict__.get("_owners_cache")
        if cached is None or cached[0] != len(self.variables):
            with _MEMO_LOCK:
                cached = self.__dict__.get("_owners_cache")
                if cached is None or cached[0] != len(self.variables):
                    owners: dict[str, list[ResolvedVariable]] = {}
                    for variable in self.variables.values():
                        seen: set[str] = set()
                        for chunk in variable.chunks:
                            if chunk.register not in seen:
                                seen.add(chunk.register)
                                owners.setdefault(chunk.register,
                                                  []).append(variable)
                    cached = (len(self.variables), owners)
                    self.__dict__["_owners_cache"] = cached
        return cached[1].get(register, [])

    def port_of(self, port: tuple[str, int]) -> int:
        """Flat index of a concrete port within the device's port list.

        Used by code generators to compute addresses: the device is
        instantiated at run time with one base address per port
        parameter, and ``offset`` is added to it.
        """
        param_name, offset = port
        if param_name not in self.params:
            raise KeyError(f"unknown port parameter {param_name!r}")
        return offset
