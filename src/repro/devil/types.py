"""The Devil type system.

Device variables are strongly typed (§2.1): booleans, signed or unsigned
integers of explicit bit width, integer ranges/sets such as ``int{0..31}``
or ``int{0..17,25}``, and enumerated types mapping symbolic names to bit
patterns with read (``<=``), write (``=>``) or read-write (``<=>``)
constraints.

Each type knows its bit width, whether it can encode values for writing
and decode values read from the device, and how to perform both
conversions.  The static checker uses widths for the size checks of
§3.1; the generated stubs use ``encode``/``decode`` and, in debug mode,
``contains`` for the run-time checks of §3.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import DevilRuntimeError, SourceLocation, UNKNOWN_LOCATION
from .mask import pattern_value


class EnumDirection(enum.Enum):
    """Access constraint of one enumerated-type element."""

    READ = "<="
    WRITE = "=>"
    BOTH = "<=>"

    @property
    def readable(self) -> bool:
        return self in (EnumDirection.READ, EnumDirection.BOTH)

    @property
    def writable(self) -> bool:
        return self in (EnumDirection.WRITE, EnumDirection.BOTH)


class DevilType:
    """Base class for every Devil type.  Subclasses are value objects."""

    #: Bit width of the concrete representation.
    width: int

    def can_decode(self) -> bool:
        """True if values read from the device can be interpreted."""
        raise NotImplementedError

    def can_encode(self) -> bool:
        """True if abstract values can be converted for writing."""
        raise NotImplementedError

    def contains(self, value: object) -> bool:
        """True if ``value`` is a legal abstract value of this type."""
        raise NotImplementedError

    def encode(self, value: object,
               location: SourceLocation = UNKNOWN_LOCATION) -> int:
        """Convert an abstract value to raw bits (for a device write)."""
        raise NotImplementedError

    def decode(self, raw: int,
               location: SourceLocation = UNKNOWN_LOCATION) -> object:
        """Convert raw bits (from a device read) to an abstract value."""
        raise NotImplementedError

    def decode_is_exhaustive(self) -> bool:
        """True if every raw bit pattern decodes to a legal value.

        The "no omission" rule of §3.1 requires read mappings of
        enumerated types to be exhaustive; plain integer types always
        are, integer sets and non-exhaustive enums are not.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class BoolType(DevilType):
    """The ``bool`` type: one bit, ``False``/``True``."""

    width: int = field(default=1, init=False)

    def can_decode(self) -> bool:
        return True

    def can_encode(self) -> bool:
        return True

    def contains(self, value: object) -> bool:
        return isinstance(value, bool) or value in (0, 1)

    def encode(self, value: object,
               location: SourceLocation = UNKNOWN_LOCATION) -> int:
        if not self.contains(value):
            raise DevilRuntimeError(
                f"value {value!r} is not a boolean", location)
        return 1 if value else 0

    def decode(self, raw: int,
               location: SourceLocation = UNKNOWN_LOCATION) -> bool:
        return bool(raw & 1)

    def decode_is_exhaustive(self) -> bool:
        return True

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class IntType(DevilType):
    """``int(n)`` or ``signed int(n)``: an n-bit two's-complement field."""

    width: int
    signed: bool = False

    @property
    def minimum(self) -> int:
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def maximum(self) -> int:
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def can_decode(self) -> bool:
        return True

    def can_encode(self) -> bool:
        return True

    def contains(self, value: object) -> bool:
        return (isinstance(value, int) and not isinstance(value, bool)
                and self.minimum <= value <= self.maximum)

    def encode(self, value: object,
               location: SourceLocation = UNKNOWN_LOCATION) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise DevilRuntimeError(
                f"value {value!r} is not an integer", location)
        if not self.contains(value):
            raise DevilRuntimeError(
                f"value {value} outside range [{self.minimum}, "
                f"{self.maximum}] of {self}", location)
        return value & ((1 << self.width) - 1)

    def decode(self, raw: int,
               location: SourceLocation = UNKNOWN_LOCATION) -> int:
        raw &= (1 << self.width) - 1
        if self.signed and raw >= (1 << (self.width - 1)):
            return raw - (1 << self.width)
        return raw

    def decode_is_exhaustive(self) -> bool:
        return True

    def __str__(self) -> str:
        prefix = "signed " if self.signed else ""
        return f"{prefix}int({self.width})"


@dataclass(frozen=True)
class IntSetType(DevilType):
    """``int{0..31}`` / ``int{0..17,25}``: an explicit set of legal values.

    The width is the number of bits needed for the largest member, so
    ``int{0..31}`` is a 5-bit field.  Negative members are not allowed
    (the paper only uses such types for register indices).
    """

    values: frozenset[int]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("empty integer set type")
        if min(self.values) < 0:
            raise ValueError("integer set types must be non-negative")

    @property
    def width(self) -> int:  # type: ignore[override]
        return max(max(self.values).bit_length(), 1)

    def can_decode(self) -> bool:
        return True

    def can_encode(self) -> bool:
        return True

    def contains(self, value: object) -> bool:
        return (isinstance(value, int) and not isinstance(value, bool)
                and value in self.values)

    def encode(self, value: object,
               location: SourceLocation = UNKNOWN_LOCATION) -> int:
        if not self.contains(value):
            raise DevilRuntimeError(
                f"value {value!r} is not a member of {self}", location)
        assert isinstance(value, int)
        return value

    def decode(self, raw: int,
               location: SourceLocation = UNKNOWN_LOCATION) -> int:
        raw &= (1 << self.width) - 1
        if raw not in self.values:
            raise DevilRuntimeError(
                f"device delivered {raw}, which is not a member of {self}",
                location)
        return raw

    def decode_is_exhaustive(self) -> bool:
        return self.values == frozenset(range(1 << self.width))

    def __str__(self) -> str:
        return "int{" + _render_int_set(self.values) + "}"


def _render_int_set(values: frozenset[int]) -> str:
    """Render as compact ranges, e.g. ``0..17,25``."""
    ordered = sorted(values)
    parts: list[str] = []
    start = prev = ordered[0]
    for value in ordered[1:] + [None]:  # type: ignore[list-item]
        if value is not None and value == prev + 1:
            prev = value
            continue
        parts.append(str(start) if start == prev else f"{start}..{prev}")
        if value is not None:
            start = prev = value
    return ",".join(parts)


@dataclass(frozen=True)
class EnumItem:
    """One element of an enumerated type: symbol, bits, direction."""

    name: str
    pattern: str
    direction: EnumDirection

    @property
    def value(self) -> int:
        return pattern_value(self.pattern)

    @property
    def width(self) -> int:
        return len(self.pattern)


@dataclass(frozen=True)
class EnumType(DevilType):
    """An enumerated type, e.g. ``{ ENABLE => '0', DISABLE => '1' }``.

    Reading decodes raw bits to the symbol name (a ``str``); writing
    encodes a symbol name to its pattern.  Direction arrows restrict
    which side each element participates in.
    """

    items: tuple[EnumItem, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.items:
            raise ValueError("empty enumerated type")
        widths = {item.width for item in self.items}
        if len(widths) != 1:
            raise ValueError(
                f"enumerated type mixes pattern widths {sorted(widths)}")

    @property
    def width(self) -> int:  # type: ignore[override]
        return self.items[0].width

    def item(self, name: str) -> EnumItem | None:
        for candidate in self.items:
            if candidate.name == name:
                return candidate
        return None

    @property
    def readable_items(self) -> tuple[EnumItem, ...]:
        return tuple(i for i in self.items if i.direction.readable)

    @property
    def writable_items(self) -> tuple[EnumItem, ...]:
        return tuple(i for i in self.items if i.direction.writable)

    def can_decode(self) -> bool:
        return bool(self.readable_items)

    def can_encode(self) -> bool:
        return bool(self.writable_items)

    def contains(self, value: object) -> bool:
        return isinstance(value, str) and self.item(value) is not None

    def encode(self, value: object,
               location: SourceLocation = UNKNOWN_LOCATION) -> int:
        if not isinstance(value, str):
            raise DevilRuntimeError(
                f"enumerated value must be a symbol name, got {value!r}",
                location)
        item = self.item(value)
        if item is None:
            raise DevilRuntimeError(
                f"{value!r} is not a symbol of {self}", location)
        if not item.direction.writable:
            raise DevilRuntimeError(
                f"symbol {value!r} of {self} is read-only", location)
        return item.value

    def decode(self, raw: int,
               location: SourceLocation = UNKNOWN_LOCATION) -> str:
        raw &= (1 << self.width) - 1
        for item in self.readable_items:
            if item.value == raw:
                return item.name
        raise DevilRuntimeError(
            f"device delivered {raw:#x}, which matches no readable symbol "
            f"of {self}", location)

    def decode_is_exhaustive(self) -> bool:
        covered = {item.value for item in self.readable_items}
        return covered == set(range(1 << self.width))

    def __str__(self) -> str:
        if self.name:
            return f"enum {self.name}"
        body = ", ".join(
            f"{i.name} {i.direction.value} '{i.pattern}'" for i in self.items)
        return "{ " + body + " }"
