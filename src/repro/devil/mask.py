"""Bit-mask algebra for Devil register masks.

A register declaration may carry a mask such as ``'1..00000'`` that
classifies every bit of the register.  The paper's figures use four
classes of bit (written MSB first):

``.``
    a *variable* bit: defined by (exactly one) device variable, read and
    written through that variable.
``*`` and ``-``
    an *irrelevant* bit: never carries information.  ``*`` bits read as
    undefined garbage; neither may be used by a variable.
``0`` / ``1``
    a *forced* bit: irrelevant when read, but forced to the given value
    whenever the register is written.

(The paper's prose description of §2.1 swaps the roles of ``*`` and
``.``, but every mask in its figures — ``'1..00000'`` for the busmouse
index register whose relevant bits 6..5 are ``.``, ``'****....'`` for
the nibble counters whose used bits 3..0 are ``.``, ``'......0.'`` for
the CS4236B I23 register — follows the convention above, so we implement
the figures' convention.)

Masks are value objects; the checker uses them for the "no overlapping
definitions" rule and the code generators use them to compute the AND/OR
constants of the emitted stubs, exactly like Figure 3c of the paper.

Thread-safety: a :class:`Mask` is frozen and every derived bit-set view
(``variable_bits``, ``forced_value``, ...) is precomputed eagerly in
``__post_init__`` — there is deliberately *no* lazy memoization here,
so masks may be shared freely across fleet worker threads without
locking (unlike the lazily-derived caches in :mod:`repro.devil.model`,
which publish under a lock).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import DevilCheckError, SourceLocation, UNKNOWN_LOCATION


class BitKind(enum.Enum):
    """Classification of a single register bit."""

    VARIABLE = "."
    IRRELEVANT = "*"
    RESERVED = "-"
    FORCE0 = "0"
    FORCE1 = "1"


_CHAR_TO_KIND = {kind.value: kind for kind in BitKind}


@dataclass(frozen=True)
class Mask:
    """An immutable per-bit classification of a register of ``width`` bits.

    ``kinds[i]`` classifies bit ``i`` with bit 0 the least significant,
    i.e. the *last* character of the source pattern.
    """

    width: int
    kinds: tuple[BitKind, ...]

    def __post_init__(self) -> None:
        if len(self.kinds) != self.width:
            raise ValueError(
                f"mask has {len(self.kinds)} bit kinds for width {self.width}")
        # Precompute the four bit-set views in one pass.  Every bind of
        # every variable consults these (the specializer folds them into
        # literals per chunk), so deriving them per property access put
        # an O(width) loop on the hot bind path.  The extra attributes
        # are set via object.__setattr__ because the dataclass is
        # frozen; they are derived data and do not participate in
        # equality or hashing.
        variable = irrelevant = forced = forced_one = 0
        for i, kind in enumerate(self.kinds):
            bit = 1 << i
            if kind is BitKind.VARIABLE:
                variable |= bit
            elif kind is BitKind.FORCE1:
                forced |= bit
                forced_one |= bit
            elif kind is BitKind.FORCE0:
                forced |= bit
            else:  # IRRELEVANT or RESERVED
                irrelevant |= bit
        object.__setattr__(self, "_variable_bits", variable)
        object.__setattr__(self, "_irrelevant_bits", irrelevant)
        object.__setattr__(self, "_forced_bits", forced)
        object.__setattr__(self, "_forced_value", forced_one)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, pattern: str, width: int | None = None,
              location: SourceLocation = UNKNOWN_LOCATION) -> "Mask":
        """Parse an MSB-first pattern string such as ``'1..00000'``.

        If ``width`` is given the pattern length must match it; this is
        one of the "size of bit masks" strong-typing checks of §3.1.
        """
        if width is not None and len(pattern) != width:
            raise DevilCheckError(
                f"mask '{pattern}' has {len(pattern)} bits but the register "
                f"is {width} bits wide", location)
        kinds = []
        for char in reversed(pattern):  # reversed: LSB-first internally
            kind = _CHAR_TO_KIND.get(char)
            if kind is None:
                raise DevilCheckError(
                    f"invalid mask character {char!r}", location)
            kinds.append(kind)
        return cls(len(pattern), tuple(kinds))

    @classmethod
    def all_variable(cls, width: int) -> "Mask":
        """The implicit mask of a register declared without one."""
        return cls(width, (BitKind.VARIABLE,) * width)

    # ------------------------------------------------------------------
    # Bit-set views (integers with one bit per register bit)
    # ------------------------------------------------------------------

    @property
    def variable_bits(self) -> int:
        """Bits that must be covered by device variables."""
        return self._variable_bits

    @property
    def irrelevant_bits(self) -> int:
        """Bits carrying no information (``*`` or ``-``)."""
        return self._irrelevant_bits

    @property
    def forced_bits(self) -> int:
        """Bits whose written value is fixed by the mask."""
        return self._forced_bits

    @property
    def forced_value(self) -> int:
        """The value OR-ed into every write (``1`` bits of the mask)."""
        return self._forced_value

    @property
    def writable_variable_bits(self) -> int:
        """Alias of :attr:`variable_bits`; kept for codegen readability."""
        return self.variable_bits

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def disjoint_with(self, other: "Mask") -> bool:
        """True if the two masks' variable bits do not intersect.

        Two registers mapped to the same port are acceptable (rule "no
        overlapping definitions") when their masks are disjoint in this
        sense: they expose different bits of the same physical location.
        """
        if self.width != other.width:
            return True
        return (self.variable_bits & other.variable_bits) == 0

    def write_discriminated_from(self, other: "Mask") -> bool:
        """True if some bit is forced to 0 by one mask and 1 by the other.

        Any value written through one register then provably differs at
        that bit from any value written through the other, so the device
        can discriminate the two write views of a shared port.  This is
        how the 8259A distinguishes ICW1 (bit 4 forced to 1) from OCW2
        (bit 4 forced to 0) on the same port.
        """
        if self.width != other.width:
            return False
        conflict = (self.forced_value & other.forced_bits
                    & ~other.forced_value)
        conflict |= (other.forced_value & self.forced_bits
                     & ~self.forced_value)
        return conflict != 0

    def refine(self, extra: "Mask",
               location: SourceLocation = UNKNOWN_LOCATION) -> "Mask":
        """Combine this mask with a narrowing one.

        Used by register instantiation (``register I23 = I(23), mask
        '......0.'``): the instance mask may turn variable bits of the
        constructor's mask into forced or irrelevant bits, but may not
        resurrect bits the constructor already fixed.
        """
        if extra.width != self.width:
            raise DevilCheckError(
                f"refining mask is {extra.width} bits wide, register is "
                f"{self.width}", location)
        kinds = []
        for i, (base, new) in enumerate(zip(self.kinds, extra.kinds)):
            if base is BitKind.VARIABLE:
                kinds.append(new)
            elif new is BitKind.VARIABLE or new == base:
                kinds.append(base)
            else:
                raise DevilCheckError(
                    f"bit {i}: mask refinement changes already-constrained "
                    f"bit ({base.value!r} -> {new.value!r})", location)
        return Mask(self.width, tuple(kinds))

    def apply_write(self, raw: int) -> int:
        """Transform a raw value into what is actually put on the bus.

        Variable bits pass through; forced bits take their fixed value;
        irrelevant bits are cleared.  This is the masking "performed as
        part of the stubs generated by the Devil compiler" (§2.1).
        """
        return (raw & self.variable_bits) | self.forced_value

    def pattern(self) -> str:
        """Render back to MSB-first source syntax."""
        return "".join(kind.value for kind in reversed(self.kinds))

    def __str__(self) -> str:
        return f"'{self.pattern()}'"


def bits_of_range(msb: int, lsb: int) -> int:
    """Integer with bits ``lsb..msb`` (inclusive) set."""
    if msb < lsb:
        raise ValueError(f"bit range {msb}..{lsb} is reversed")
    return ((1 << (msb - lsb + 1)) - 1) << lsb


def extract_bits(value: int, msb: int, lsb: int) -> int:
    """Extract bits ``lsb..msb`` of ``value``, right-aligned."""
    return (value >> lsb) & ((1 << (msb - lsb + 1)) - 1)


def insert_bits(target: int, msb: int, lsb: int, field: int) -> int:
    """Return ``target`` with bits ``lsb..msb`` replaced by ``field``."""
    width_mask = (1 << (msb - lsb + 1)) - 1
    return (target & ~(width_mask << lsb)) | ((field & width_mask) << lsb)


def pattern_value(pattern: str) -> int:
    """Decode a pure ``0``/``1`` pattern (an enum value) to an integer."""
    if any(char not in "01" for char in pattern):
        raise ValueError(
            f"pattern '{pattern}' is not a pure binary value")
    return int(pattern, 2)
