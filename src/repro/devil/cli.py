"""``devilc`` — the Devil compiler command-line front end.

Usage::

    devilc check  SPEC.devil             verify only, report diagnostics
    devilc c      SPEC.devil [-o OUT]    emit the C stub header
    devilc python SPEC.devil [-o OUT]    emit the Python stub module
    devilc compile SPEC.devil --backend c --debug -o FILE
                                         emit any backend to disk
                                         (--shim adds the native
                                         runtime shim, for kernel-style
                                         out-of-tree builds)
    devilc dump   SPEC.devil             print the resolved model
    devilc trace  NAME [--format=...]    replay a shipped driver
                                         workload with telemetry
    devilc fleet  [--devices ide:4 ...]  drive a concurrent device
                                         fleet, report throughput
    devilc top    [--devices ide:4 ...]  live per-worker dashboard of
                                         a running fleet (health,
                                         throughput, latency)
    devilc campaign [--specs ... --backend process]
                                         fleet-scheduled mutation
                                         campaign over the shipped
                                         specs, with cached verdicts
                                         and the Table 1 projection

(``devil`` is installed as an alias of ``devilc``; ``devil trace
busmouse --format=chrome`` is the quick-start of docs/LANGUAGE.md.)

Exit status is 0 on success, 1 when the specification is rejected —
suitable for driver build systems, which is how the paper envisioned
the compiler being used.
"""

from __future__ import annotations

import argparse
import sys

from .compiler import compile_file
from .errors import DevilError
from .model import ResolvedDevice


def _dump_model(model: ResolvedDevice) -> str:
    lines = [f"device {model.name}"]
    for name, param in model.params.items():
        offsets = sorted(param.offset_values())
        lines.append(f"  port {name}: bit[{param.data_width}] @ {offsets}")
    for name, register in model.registers.items():
        direction = "".join((
            "r" if register.readable else "-",
            "w" if register.writable else "-"))
        origin = f" (from {register.constructor}"\
            f"{register.constructor_args})" if register.constructor else ""
        lines.append(f"  register {name}: {register.width} bits, "
                     f"{direction}, mask {register.mask}{origin}")
    for name, variable in model.variables.items():
        flags = []
        if variable.private:
            flags.append("private")
        if variable.memory:
            flags.append("memory")
        if variable.behaviors.volatile:
            flags.append("volatile")
        if variable.behaviors.trigger is not None:
            flags.append("trigger")
        if variable.behaviors.block:
            flags.append("block")
        chunks = " # ".join(
            f"{c.register}[{c.msb}..{c.lsb}]" for c in variable.chunks)
        suffix = f" = {chunks}" if chunks else ""
        flag_text = f" ({', '.join(flags)})" if flags else ""
        lines.append(f"  variable {name}: {variable.type}{flag_text}"
                     f"{suffix}")
    for name, structure in model.structures.items():
        lines.append(f"  structure {name}: {', '.join(structure.members)}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="devilc",
        description="Devil IDL compiler (OSDI 2000 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
            ("check", "verify a specification"),
            ("c", "emit the C stub header"),
            ("python", "emit the Python stub module"),
            ("doc", "emit a Markdown datasheet"),
            ("dump", "print the resolved model")):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("spec", help="path to the .devil source")
        if name in ("c", "python", "doc"):
            sub.add_argument("-o", "--output",
                             help="output file (default: stdout)")
        if name == "c":
            sub.add_argument("--prefix",
                             help="stub name prefix (default: device "
                                  "name)")
            sub.add_argument("--debug", action="store_true",
                             help="force DEVIL_DEBUG on")

    compile_cmd = commands.add_parser(
        "compile",
        help="emit a code-generation backend, selected by --backend")
    compile_cmd.add_argument("spec", help="path to the .devil source")
    compile_cmd.add_argument("--backend", default="c",
                             choices=("c", "python", "doc", "pyi"),
                             help="artifact to emit: C stub header "
                                  "(default), Python stub module, "
                                  "Markdown datasheet, or .pyi typing "
                                  "stubs for bound device APIs")
    compile_cmd.add_argument("-o", "--output",
                             help="output file (default: stdout)")
    compile_cmd.add_argument("--prefix",
                             help="C backend: stub name prefix "
                                  "(default: device name)")
    compile_cmd.add_argument("--debug", action="store_true",
                             help="C backend: force DEVIL_DEBUG on")
    compile_cmd.add_argument("--shim", metavar="FILE",
                             help="C backend: also write the native "
                                  "runtime shim (port-table dispatch, "
                                  "accounting, trace ring) to FILE; "
                                  "compile it with the header on its "
                                  "include path to get the "
                                  "strategy='native' library")

    trace = commands.add_parser(
        "trace",
        help="replay a shipped driver workload with telemetry on")
    trace.add_argument("spec", metavar="NAME",
                       help="shipped spec name (e.g. busmouse, ide)")
    trace.add_argument("--strategy", default="interpret",
                       choices=("interpret", "specialize", "generated",
                                "native", "all"),
                       help="execution strategy to trace (default: "
                            "interpret; 'native' needs a C compiler; "
                            "'all' runs every strategy back-to-back)")
    trace.add_argument("--format", default="chrome",
                       choices=("jsonl", "chrome", "report", "summary"),
                       help="chrome: Perfetto-loadable trace_event "
                            "JSON (default); jsonl: one span per "
                            "line; report: hot-variables profile; "
                            "summary: one line per strategy")
    trace.add_argument("-o", "--output",
                       help="output file (default: stdout)")
    trace.add_argument("--variable",
                       help="keep only spans of this device variable")
    trace.add_argument("--trace-limit", type=int, default=None,
                       help="bound the bus trace to N entries (ring "
                            "buffer; drops are counted)")
    trace.add_argument("--debug", action="store_true",
                       help="bind the stubs in debug mode")

    fleet = commands.add_parser(
        "fleet",
        help="run a concurrent device fleet and report throughput")
    fleet.add_argument("--devices", nargs="+", default=["ide:2",
                                                        "permedia2:2",
                                                        "ne2000:2"],
                       metavar="SPEC[:COUNT]",
                       help="fleet composition (default: ide:2 "
                            "permedia2:2 ne2000:2); every spec needs "
                            "a shipped workload")
    fleet.add_argument("--backend", default="thread",
                       choices=("thread", "process", "auto"),
                       help="execution substrate: worker threads on "
                            "one shared bus, worker processes each "
                            "owning a shard of the fleet, or 'auto' "
                            "to calibrate the request mix and pick "
                            "(default: thread)")
    fleet.add_argument("--workers", type=int, default=4,
                       help="worker threads or processes (default: 4)")
    fleet.add_argument("--batch-size", default=None,
                       metavar="N|auto",
                       help="process backend: group N consecutive "
                            "placements per worker into one IPC "
                            "message ('auto' picks a default; "
                            "default: 1, no batching)")
    fleet.add_argument("--requests", type=int, default=32,
                       help="requests per device spec (default: 32)")
    fleet.add_argument("--policy", default="round-robin",
                       choices=("round-robin", "weighted-round-robin",
                                "least-loaded"),
                       help="dispatch policy (default: round-robin; "
                            "the process backend needs a "
                            "deterministic one)")
    fleet.add_argument("--strategy", default="specialize",
                       choices=("interpret", "specialize", "generated",
                                "native", "auto"),
                       help="execution strategy (default: specialize; "
                            "'native' needs a C compiler, 'auto' "
                            "falls back to specialize without one)")
    fleet.add_argument("--latency-us", type=float, default=20.0,
                       help="sleeping port latency charged per bus op "
                            "(default: 20.0; 0 disables)")
    fleet.add_argument("--word-latency-us", type=float, default=0.2,
                       help="extra latency per block word "
                            "(default: 0.2)")
    fleet.add_argument("--shadow-cache", action="store_true",
                       help="enable the register shadow cache")
    fleet.add_argument("--telemetry", action="store_true",
                       help="attach the live telemetry plane "
                            "(heartbeats, flight recorder, latency "
                            "histograms) and print a health summary")
    fleet.add_argument("--health-log", metavar="PATH",
                       help="write periodic heartbeat/health JSONL "
                            "records to PATH while the fleet runs "
                            "(implies --telemetry)")

    top = commands.add_parser(
        "top",
        help="live per-worker dashboard of a running fleet")
    top.add_argument("--devices", nargs="+", default=["ide:2",
                                                      "permedia2:2",
                                                      "ne2000:2"],
                     metavar="SPEC[:COUNT]",
                     help="fleet composition (default: ide:2 "
                          "permedia2:2 ne2000:2)")
    top.add_argument("--backend", default="thread",
                     choices=("thread", "process"),
                     help="execution substrate (default: thread)")
    top.add_argument("--workers", type=int, default=4,
                     help="worker threads or processes (default: 4)")
    top.add_argument("--requests", type=int, default=16,
                     help="requests per spec per feeder round "
                          "(default: 16)")
    top.add_argument("--policy", default="round-robin",
                     choices=("round-robin", "weighted-round-robin",
                              "least-loaded"),
                     help="dispatch policy (default: round-robin)")
    top.add_argument("--strategy", default="specialize",
                     choices=("interpret", "specialize", "generated",
                              "native", "auto"),
                     help="execution strategy (default: specialize)")
    top.add_argument("--latency-us", type=float, default=20.0,
                     help="sleeping port latency per bus op "
                          "(default: 20.0)")
    top.add_argument("--interval", type=float, default=0.5,
                     help="refresh interval in seconds (default: 0.5)")
    top.add_argument("--duration", type=float, default=10.0,
                     help="run for this many seconds (default: 10)")
    top.add_argument("--once", action="store_true",
                     help="drive one feeder round, render a single "
                          "frame and exit (CI smoke mode)")

    campaign = commands.add_parser(
        "campaign",
        help="run a fleet-scheduled mutation campaign (Table 1 at "
             "scale) with cached verdicts")
    campaign.add_argument("--specs", nargs="+", default=None,
                          metavar="NAME",
                          help="spec subset (default: all 8 shipped "
                               "specs)")
    campaign.add_argument("--styles", nargs="+", default=None,
                          choices=("c", "devil", "cdevil"),
                          help="driver styles to mutate (default: all "
                               "three; c/cdevil exist only for the "
                               "paper's three corpus devices)")
    campaign.add_argument("--budget", type=int, default=8,
                          help="uniform per-kind mutant budget per "
                               "site (default: 8)")
    campaign.add_argument("--full", action="store_true",
                          help="use the full Table 1 budget instead "
                               "(enumerate numbers/operators/bit "
                               "patterns exhaustively, cap "
                               "identifiers)")
    campaign.add_argument("--max-sites", type=int, default=None,
                          metavar="N",
                          help="only the first N sites per target "
                               "(deterministic; disables the exact "
                               "Table 1 projection)")
    campaign.add_argument("--backend", default="serial",
                          choices=("serial", "thread", "process"),
                          help="execution substrate (default: serial; "
                               "'process' is what scales this "
                               "CPU-bound workload)")
    campaign.add_argument("--workers", type=int, default=4,
                          help="fleet workers (default: 4)")
    campaign.add_argument("--batch-size", default=None,
                          metavar="N|auto",
                          help="process backend: IPC batching "
                               "(default: auto)")
    campaign.add_argument("--cache-dir", metavar="PATH",
                          help="verdict cache directory (default: "
                               "$DEVIL_CAMPAIGN_CACHE or "
                               "~/.cache/devil-campaign); re-running "
                               "against a warm cache resumes")
    campaign.add_argument("--no-cache", action="store_true",
                          help="cold run: use a private cache "
                               "discarded on exit")
    campaign.add_argument("--report", default="table",
                          choices=("table", "json", "rows"),
                          help="report rendering: human table "
                               "(default), the full JSON report, or "
                               "just the Table 1 projection rows")
    campaign.add_argument("-o", "--output",
                          help="write the report here (default: "
                               "stdout)")
    campaign.add_argument("--telemetry", action="store_true",
                          help="attach the live telemetry plane to "
                               "fleet backends and print a health "
                               "summary")
    campaign.add_argument("--health-log", metavar="PATH",
                          help="write periodic heartbeat/health JSONL "
                               "records to PATH while the campaign "
                               "runs (implies --telemetry)")
    campaign.add_argument("--quiet", action="store_true",
                          help="suppress progress narration on stderr")
    return parser


def main(argv: list[str] | None = None) -> int:
    try:
        return _run(build_parser().parse_args(argv))
    except BrokenPipeError:
        return 0  # e.g. `devilc dump spec | head`


def _run(arguments) -> int:
    if arguments.command == "trace":
        return _run_trace(arguments)
    if arguments.command == "fleet":
        return _run_fleet(arguments)
    if arguments.command == "top":
        return _run_top(arguments)
    if arguments.command == "campaign":
        return _run_campaign(arguments)
    try:
        spec = compile_file(arguments.spec)
    except DevilError as error:
        print(error, file=sys.stderr)
        return 1
    for warning in spec.warnings:
        print(warning, file=sys.stderr)

    if arguments.command == "check":
        print(f"{arguments.spec}: specification "
              f"{spec.name!r} is consistent "
              f"({len(spec.model.registers)} registers, "
              f"{len(spec.model.variables)} variables, "
              f"{len(spec.warnings)} warning(s))")
        return 0
    if arguments.command == "dump":
        print(_dump_model(spec.model))
        return 0

    if arguments.command == "compile":
        backend = arguments.backend
        if backend == "c":
            text = spec.emit_c(prefix=arguments.prefix,
                               debug=arguments.debug)
        elif backend == "python":
            text = spec.emit_python()
        elif backend == "pyi":
            from .codegen.pyi_backend import generate_pyi
            text = generate_pyi(spec.model)
        else:
            text = spec.emit_doc()
        if arguments.shim:
            if backend != "c":
                print("--shim only applies to --backend c",
                      file=sys.stderr)
                return 1
            from .native import generate_shim
            header_name = (arguments.output
                           and arguments.output.rsplit("/", 1)[-1]) \
                or f"{spec.name}.dil.h"
            with open(arguments.shim, "w", encoding="utf-8") as handle:
                handle.write(generate_shim(spec.model,
                                           prefix=arguments.prefix,
                                           header_name=header_name))
    elif arguments.command == "c":
        text = spec.emit_c(prefix=arguments.prefix,
                           debug=arguments.debug)
    elif arguments.command == "doc":
        text = spec.emit_doc()
    else:
        text = spec.emit_python()
    if getattr(arguments, "output", None):
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0


def _run_trace(arguments) -> int:
    """Replay one shipped driver workload with telemetry attached."""
    import json

    from .. import obs
    from ..obs.workloads import (
        STRATEGIES,
        WORKLOADS,
        bind_stubs,
        build_machine,
    )
    from ..specs import SPEC_NAMES

    name = arguments.spec
    if name not in SPEC_NAMES:
        print(f"unknown shipped spec {name!r}; choose from: "
              f"{', '.join(SPEC_NAMES)}", file=sys.stderr)
        return 1
    strategies = STRATEGIES if arguments.strategy == "all" \
        else (arguments.strategy,)

    collector = obs.Collector()
    for strategy in strategies:
        bus, aux, bases = build_machine(
            name, trace_limit=arguments.trace_limit)
        with obs.observe(bus, collector=collector):
            stubs = bind_stubs(name, strategy, bus, bases,
                               debug=arguments.debug)
            collector.register_ports(name,
                                     getattr(stubs, "_obs_ports", {}))
            WORKLOADS[name](stubs, aux)

    spans = collector.spans
    if arguments.variable:
        spans = [span for span in spans
                 if span.variable == arguments.variable]

    if arguments.format == "jsonl":
        import io
        buffer = io.StringIO()
        obs.to_jsonl(spans, buffer)
        text = buffer.getvalue()
    elif arguments.format == "chrome":
        text = json.dumps(obs.to_chrome_trace(spans), indent=2) + "\n"
    elif arguments.format == "report":
        text = obs.hot_report(spans, collector.metrics) + "\n"
    else:  # summary
        lines = [f"{name}: {len(spans)} spans"]
        for strategy in strategies:
            group = [span for span in spans
                     if span.strategy == strategy]
            io_ops = sum(span.io_ops for span in group)
            words = sum(span.io_words for span in group)
            lines.append(f"  {strategy:<11} {len(group):>4} spans  "
                         f"{io_ops:>5} I/O ops  {words:>6} words")
        dropped = collector.metrics.value("bus.trace_dropped")
        if dropped:
            lines.append(f"  bus trace entries dropped: {dropped}")
        text = "\n".join(lines) + "\n"

    if getattr(arguments, "output", None):
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0


def _parse_devices(items) -> list[str] | None:
    """``["ide:2", ...] -> ["ide", "ide", ...]``; None on a bad item."""
    from ..specs import SPEC_NAMES

    devices: list[str] = []
    for item in items:
        spec, _, count_text = item.partition(":")
        if spec not in SPEC_NAMES:
            print(f"unknown shipped spec {spec!r}; choose from: "
                  f"{', '.join(SPEC_NAMES)}", file=sys.stderr)
            return None
        try:
            count = int(count_text) if count_text else 1
        except ValueError:
            print(f"bad device count in {item!r}", file=sys.stderr)
            return None
        devices.extend([spec] * count)
    return devices


def _run_fleet(arguments) -> int:
    """Drive a concurrent fleet of shipped devices; print throughput."""
    import time

    from ..engine import MIXED_REQUESTS, Fleet, ProcessFleet
    from ..obs.workloads import WORKLOADS

    devices = _parse_devices(arguments.devices)
    if devices is None:
        return 1

    specs = sorted(set(devices))
    requests = {spec: MIXED_REQUESTS.get(spec, WORKLOADS[spec])
                for spec in specs}
    schedule = [(spec, requests[spec])
                for _ in range(arguments.requests) for spec in specs]

    batch_size = arguments.batch_size
    if batch_size is not None and batch_size != "auto":
        try:
            batch_size = int(batch_size)
        except ValueError:
            print(f"bad --batch-size {batch_size!r} "
                  f"(want an integer or 'auto')", file=sys.stderr)
            return 1
    telemetry = arguments.telemetry or bool(arguments.health_log)
    common = dict(strategy=arguments.strategy,
                  policy=arguments.policy,
                  workers=arguments.workers,
                  shadow_cache=arguments.shadow_cache,
                  op_latency_us=arguments.latency_us,
                  word_latency_us=arguments.word_latency_us,
                  telemetry=telemetry or None)
    try:
        if arguments.backend == "auto":
            fleet = Fleet.auto(devices, schedule, **common)
            choice = fleet.choice
            batch_note = f", batch={choice.batch_size}" \
                if choice.backend == "process" else ""
            print(f"auto: picked the {choice.backend} backend"
                  f"{batch_note} — {choice.reason}")
        elif arguments.backend == "process":
            fleet = ProcessFleet(
                devices, batch_size=batch_size or 1, **common)
        else:
            if batch_size not in (None, 1):
                print("--batch-size only applies to the process "
                      "backend", file=sys.stderr)
                return 1
            fleet = Fleet(devices, **common)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 1
    monitor = None
    if arguments.health_log:
        from ..obs.live import LiveMonitor
        monitor = LiveMonitor(fleet, interval=0.25,
                              log_path=arguments.health_log)
    with fleet:
        if monitor is not None:
            monitor.start()
        try:
            start = time.perf_counter()
            for spec, request in schedule:
                fleet.submit(spec, request)
            fleet.drain()
            elapsed = time.perf_counter() - start
        finally:
            if monitor is not None:
                monitor.stop()
        total = fleet.completed()
        accounting = fleet.accounting
        # fleet.strategy is the *resolved* strategy: "auto" settles to
        # native or specialize at bind time, and that is what ran.
        print(f"fleet: {len(devices)} devices "
              f"({', '.join(arguments.devices)}), "
              f"{arguments.workers} {fleet.backend} workers, "
              f"{arguments.policy}, {fleet.strategy}")
        print(f"  {total} requests in {elapsed * 1e3:.1f} ms "
              f"({total / elapsed:.0f} req/s)")
        print(f"  port ops: total={accounting.total_ops} "
              f"reads={accounting.reads} writes={accounting.writes} "
              f"block_ops={accounting.block_ops} "
              f"block_words={accounting.block_words}")
        for session in fleet.sessions:
            print(f"  {session.label:<12} {session.completed:>6} "
                  f"requests")
        if fleet.telemetry is not None:
            rows = fleet.health_view().check()
            statuses = ", ".join(f"{row.worker}={row.status}"
                                 for row in rows)
            dropped = fleet.telemetry.metrics.value("bus.trace_dropped")
            print(f"  health: {statuses}")
            if dropped:
                print(f"  bus trace entries dropped: {dropped}")
            if arguments.health_log:
                print(f"  health log: {arguments.health_log}")
    return 0


def _run_campaign(arguments) -> int:
    """Run a mutation campaign; report to stdout, narration to stderr."""
    import json

    from ..mutation import CampaignConfig, MutantCaps, VerdictCache, \
        run_campaign
    from ..mutation.registry import STYLES
    from ..mutation.vcache import default_cache_dir
    from ..specs import SPEC_NAMES

    batch_size = arguments.batch_size
    if batch_size is None:
        batch_size = "auto"
    elif batch_size != "auto":
        try:
            batch_size = int(batch_size)
        except ValueError:
            print(f"bad --batch-size {batch_size!r} "
                  f"(want an integer or 'auto')", file=sys.stderr)
            return 1
    caps = MutantCaps() if arguments.full \
        else MutantCaps.quick(arguments.budget)
    try:
        config = CampaignConfig(
            specs=tuple(arguments.specs or SPEC_NAMES),
            styles=tuple(arguments.styles or STYLES),
            caps=caps, max_sites=arguments.max_sites,
            backend=arguments.backend, workers=arguments.workers,
            batch_size=batch_size)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 1

    cache = None
    if not arguments.no_cache:
        root = arguments.cache_dir or default_cache_dir()
        cache = VerdictCache(root)
        if not arguments.quiet:
            print(f"verdict cache: {cache.root}", file=sys.stderr)
    progress = None if arguments.quiet else \
        (lambda message: print(message, file=sys.stderr))
    telemetry = (arguments.telemetry or bool(arguments.health_log)) \
        or None
    try:
        result = run_campaign(config, cache=cache, telemetry=telemetry,
                              health_log=arguments.health_log,
                              progress=progress)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 1

    if arguments.report == "json":
        text = result.report.to_json()
    elif arguments.report == "rows":
        text = json.dumps(result.report.table1_rows(), indent=2,
                          sort_keys=True) + "\n"
    else:
        text = result.report.format() + "\n"
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)

    stats = result.stats()
    if not arguments.quiet:
        print(f"campaign: {stats['units']} units, "
              f"{stats['cache_hits']} cache hits, "
              f"{stats['evaluated']} evaluated"
              + (f", {stats['corrupt_recovered']} corrupt recovered"
                 if stats["corrupt_recovered"] else "")
              + (f", {stats['salvaged']} salvaged"
                 if stats["salvaged"] else "")
              + f" in {stats['elapsed_s']:.2f}s "
              f"({stats['backend']}, {stats['workers']} workers)",
              file=sys.stderr)
        if result.placement:
            placed = ", ".join(f"{label}={count}" for label, count
                               in sorted(result.placement.items()))
            print(f"placement: {placed}", file=sys.stderr)
        if arguments.health_log:
            print(f"health log: {arguments.health_log}",
                  file=sys.stderr)
    return 0


def _top_frame(fleet, health, previous, now) -> str:
    """Render one dashboard frame from a health check.

    ``previous`` maps worker -> (completed, timestamp) from the last
    frame and is updated in place; the delta gives per-worker req/s.
    """
    rows = health.check()
    telemetry = fleet.telemetry
    lines = [
        f"devil top — {fleet.backend} backend "
        f"({fleet.strategy}), {len(rows)} workers, "
        f"stall window {health.stall_window():.2f}s",
        f"{'WORKER':<12} {'HEALTH':<8} {'DONE':>8} {'REQ/S':>7} "
        f"{'QUEUE':>5} {'BATCH':>5} {'P50us':>8} {'P95us':>8}  INFLIGHT",
    ]
    total_done = 0
    total_rate = 0.0
    for row in rows:
        total_done += row.completed
        prior = previous.get(row.worker)
        if prior is None or now <= prior[1]:
            rate_text = "-"
        else:
            rate = (row.completed - prior[0]) / (now - prior[1])
            total_rate += max(rate, 0.0)
            rate_text = f"{rate:.0f}"
        previous[row.worker] = (row.completed, now)

        def cell(value, fmt="{:.0f}"):
            return "-" if value is None else fmt.format(value)

        inflight = row.inflight or ""
        if row.inflight_age_s is not None:
            inflight += f" ({row.inflight_age_s:.1f}s)"
        lines.append(
            f"{row.worker:<12} {row.status:<8} {row.completed:>8} "
            f"{rate_text:>7} {cell(row.queue_depth):>5} "
            f"{cell(row.batch_occupancy):>5} "
            f"{cell(row.latency_p50_us):>8} "
            f"{cell(row.latency_p95_us):>8}  {inflight[:30]}")
    dropped = telemetry.metrics.value("bus.trace_dropped")
    recorder = telemetry.recorder
    lines.append(
        f"total: {total_done} done, {total_rate:.0f} req/s | "
        f"trace dropped: {dropped} | flight events: "
        f"{len(recorder.events())}"
        + (f" (+{recorder.dropped} evicted)" if recorder.dropped else ""))
    return "\n".join(lines) + "\n"


def _run_top(arguments) -> int:
    """Live per-worker dashboard over the fleet telemetry plane."""
    import threading
    import time

    from ..engine import MIXED_REQUESTS, Fleet, ProcessFleet
    from ..obs.workloads import WORKLOADS

    devices = _parse_devices(arguments.devices)
    if devices is None:
        return 1
    specs = sorted(set(devices))
    requests = {spec: MIXED_REQUESTS.get(spec, WORKLOADS[spec])
                for spec in specs}
    schedule = [(spec, requests[spec])
                for _ in range(arguments.requests) for spec in specs]

    fleet_cls = ProcessFleet if arguments.backend == "process" else Fleet
    try:
        fleet = fleet_cls(devices, strategy=arguments.strategy,
                          policy=arguments.policy,
                          workers=arguments.workers,
                          op_latency_us=arguments.latency_us,
                          telemetry=True)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 1

    with fleet:
        health = fleet.health_view()
        previous: dict = {}
        if arguments.once:
            fleet.run(schedule)
            sys.stdout.write(
                _top_frame(fleet, health, previous, time.monotonic()))
            return 0

        stop = threading.Event()
        feeder_errors: list[BaseException] = []

        def feed() -> None:
            # Feed round by round: fleet.run() drains between rounds,
            # which bounds outstanding work on both backends.
            while not stop.is_set():
                try:
                    fleet.run(schedule)
                except BaseException as error:  # surface in the footer
                    feeder_errors.append(error)
                    return

        feeder = threading.Thread(target=feed, name="top-feeder",
                                  daemon=True)
        feeder.start()
        interactive = sys.stdout.isatty()
        deadline = time.monotonic() + arguments.duration
        try:
            while time.monotonic() < deadline and not feeder_errors:
                frame = _top_frame(fleet, health, previous,
                                   time.monotonic())
                if interactive:
                    sys.stdout.write("\x1b[2J\x1b[H" + frame)
                else:
                    sys.stdout.write(frame + "\n")
                sys.stdout.flush()
                time.sleep(arguments.interval)
        except KeyboardInterrupt:
            pass
        finally:
            stop.set()
            feeder.join(timeout=max(arguments.duration, 30.0))
        if feeder_errors:
            print(f"feeder failed: {feeder_errors[0]}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
