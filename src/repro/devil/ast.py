"""Abstract syntax tree of the Devil language.

The nodes mirror the concrete syntax of the paper's figures: a device
declaration parameterized by ranged ports, containing register,
variable, structure and type declarations, with masks, pre/post/set
actions, behaviour qualifiers, serialization clauses, register
concatenation and indexed register constructors.

All nodes are plain frozen-ish dataclasses with source locations; name
resolution and semantic validation live in :mod:`repro.devil.checker`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import SourceLocation, UNKNOWN_LOCATION
from .types import EnumDirection

# ---------------------------------------------------------------------------
# Type expressions (syntactic; resolved to repro.devil.types values later)
# ---------------------------------------------------------------------------


class TypeExpr:
    """Base class of syntactic type expressions."""

    location: SourceLocation


@dataclass
class BoolTypeExpr(TypeExpr):
    """``bool``"""

    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class IntTypeExpr(TypeExpr):
    """``int(8)`` or ``signed int(8)``"""

    width: int
    signed: bool = False
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class IntSetTypeExpr(TypeExpr):
    """``int{0..31}`` or ``int{0..17,25}`` — inclusive ranges."""

    ranges: list[tuple[int, int]]
    location: SourceLocation = UNKNOWN_LOCATION

    def values(self) -> frozenset[int]:
        members: set[int] = set()
        for low, high in self.ranges:
            members.update(range(low, high + 1))
        return frozenset(members)


@dataclass
class EnumItemExpr:
    """``NAME => '1'`` with one of the three arrows."""

    name: str
    pattern: str
    direction: EnumDirection
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class EnumTypeExpr(TypeExpr):
    """``{ A => '1', B => '0' }``"""

    items: list[EnumItemExpr]
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class NamedTypeExpr(TypeExpr):
    """A reference to a ``type`` declaration."""

    name: str
    location: SourceLocation = UNKNOWN_LOCATION


# ---------------------------------------------------------------------------
# Ports, bit ranges, chunks
# ---------------------------------------------------------------------------


@dataclass
class PortParam:
    """One device parameter: ``base : bit[8] port @ {0..3}``."""

    name: str
    data_width: int
    offsets: list[tuple[int, int]]  # inclusive ranges
    location: SourceLocation = UNKNOWN_LOCATION

    def offset_values(self) -> frozenset[int]:
        members: set[int] = set()
        for low, high in self.offsets:
            members.update(range(low, high + 1))
        return frozenset(members)


@dataclass
class PortExpr:
    """``base @ 1``, ``base @ i`` or ``base @ 1 + i``.

    ``offset`` is the constant part; ``offset_param`` names a register
    constructor parameter added to it (the paper's register-array
    feature: ``register par(i : int{0..5}) = base @ 1 + i ...``).
    The offset defaults to 0 when ``@`` is absent.
    """

    base: str
    offset: int = 0
    offset_param: str | None = None
    location: SourceLocation = UNKNOWN_LOCATION

    def key(self) -> tuple[str, int]:
        return (self.base, self.offset)

    def __str__(self) -> str:
        if self.offset_param is not None:
            if self.offset:
                return f"{self.base}@{self.offset}+{self.offset_param}"
            return f"{self.base}@{self.offset_param}"
        return f"{self.base}@{self.offset}"


@dataclass
class BitRange:
    """``msb..lsb`` (or a single bit, where msb == lsb); inclusive."""

    msb: int
    lsb: int
    location: SourceLocation = UNKNOWN_LOCATION

    @property
    def width(self) -> int:
        return self.msb - self.lsb + 1

    def __str__(self) -> str:
        if self.msb == self.lsb:
            return str(self.msb)
        return f"{self.msb}..{self.lsb}"


@dataclass
class Chunk:
    """One register fragment of a variable definition.

    ``x_high[3..0]`` → register ``x_high``, ranges ``[3..0]``.  A bare
    register name (``sig_reg``) means the whole register.  A comma list
    (``I23[2,7..4]``) concatenates several ranges of one register,
    listed most-significant first.
    """

    register: str
    ranges: list[BitRange] | None = None
    location: SourceLocation = UNKNOWN_LOCATION

    def __str__(self) -> str:
        if self.ranges is None:
            return self.register
        inner = ",".join(str(r) for r in self.ranges)
        return f"{self.register}[{inner}]"


# ---------------------------------------------------------------------------
# Actions (pre / post / set blocks)
# ---------------------------------------------------------------------------


class ActionValue:
    """Base class of right-hand sides in action blocks."""

    location: SourceLocation


@dataclass
class IntValue(ActionValue):
    """A literal integer, e.g. ``{index = 0}``."""

    value: int
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class BoolValue(ActionValue):
    """``true`` or ``false``."""

    value: bool
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class SymbolValue(ActionValue):
    """A name: an enum symbol, a register parameter, or a variable.

    ``{IA = i}`` references the register constructor's parameter ``i``;
    ``{xm = XRAE}`` references the value just written to variable XRAE.
    Resolution happens in the checker.
    """

    name: str
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class WildcardValue(ActionValue):
    """``*`` — any value is acceptable (``{flip_flop = *}``)."""

    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class StructValue(ActionValue):
    """``{XA => j; XRAE => true}`` — a structure write in an action."""

    fields: list[tuple[str, ActionValue]]
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class Action:
    """One assignment of an action block: ``target = value``."""

    target: str
    value: ActionValue
    location: SourceLocation = UNKNOWN_LOCATION


# ---------------------------------------------------------------------------
# Behaviours
# ---------------------------------------------------------------------------


class AccessDirection(enum.Enum):
    """Which accesses a qualifier applies to."""

    READ = "read"
    WRITE = "write"
    BOTH = "both"


@dataclass
class TriggerSpec:
    """``[read|write] trigger [except SYMBOL | for VALUE]``.

    A trigger access has an unrepeatable side effect on the device.
    ``except_symbol`` names a neutral value that does *not* trigger;
    ``for_value`` restricts the side effect to one specific value.
    """

    direction: AccessDirection = AccessDirection.BOTH
    except_symbol: str | None = None
    for_value: ActionValue | None = None
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class Behaviors:
    """The behaviour qualifiers attached to one variable."""

    volatile: bool = False
    block: bool = False
    trigger: TriggerSpec | None = None

    @property
    def write_triggers(self) -> bool:
        return self.trigger is not None and self.trigger.direction in (
            AccessDirection.WRITE, AccessDirection.BOTH)

    @property
    def read_triggers(self) -> bool:
        return self.trigger is not None and self.trigger.direction in (
            AccessDirection.READ, AccessDirection.BOTH)


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


class SerStmt:
    """Base class of serialization statements."""

    location: SourceLocation


@dataclass
class SerWrite(SerStmt):
    """Emit one register, e.g. the ``icw1;`` step."""

    register: str
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class SerIf(SerStmt):
    """``if (sngl == SINGLE) icw3;`` — conditional emission."""

    variable: str
    value: ActionValue
    body: SerStmt = None  # type: ignore[assignment]
    location: SourceLocation = UNKNOWN_LOCATION


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class IndexParam:
    """Parameter of a register constructor: ``i : int{0..31}``."""

    name: str
    type_expr: TypeExpr
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class RegisterInstantiation:
    """``I(23)`` — instantiating a register constructor."""

    constructor: str
    arguments: list[int]
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class RegisterDecl:
    """A ``register`` declaration.

    Exactly one of (``read_port``/``write_port`` ports) or ``base`` (an
    instantiation of a register constructor) is set.  ``params`` makes
    this a register *constructor* that must be instantiated before use.
    """

    name: str
    params: list[IndexParam] = field(default_factory=list)
    read_port: PortExpr | None = None
    write_port: PortExpr | None = None
    base: RegisterInstantiation | None = None
    mask_pattern: str | None = None
    pre_actions: list[Action] = field(default_factory=list)
    post_actions: list[Action] = field(default_factory=list)
    set_actions: list[Action] = field(default_factory=list)
    width: int | None = None
    #: Operating mode this register is valid in (``in setup``), or None.
    mode: str | None = None
    location: SourceLocation = UNKNOWN_LOCATION

    @property
    def is_constructor(self) -> bool:
        return bool(self.params)


@dataclass
class VariableDecl:
    """A ``variable`` declaration (top level or structure member).

    ``chunks is None`` marks a pure memory variable (``private variable
    xm : bool;``), which is not mapped to any register and serves as a
    private state cell for the addressing automaton (§2.2).
    """

    name: str
    private: bool = False
    chunks: list[Chunk] | None = None
    behaviors: Behaviors = field(default_factory=Behaviors)
    type_expr: TypeExpr | None = None
    set_actions: list[Action] = field(default_factory=list)
    serialization: list[SerStmt] | None = None
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class StructureDecl:
    """A ``structure`` grouping variables for consistent access."""

    name: str
    members: list[VariableDecl] = field(default_factory=list)
    serialization: list[SerStmt] | None = None
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class ModeDecl:
    """``mode setup, operational;`` — device operating modes (§2.2's
    conditional declarations).  The first mode is the reset state."""

    names: list[str] = field(default_factory=list)
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class TypeDecl:
    """``type name = <type expression>;`` — a named (usually enum) type."""

    name: str
    type_expr: TypeExpr = None  # type: ignore[assignment]
    location: SourceLocation = UNKNOWN_LOCATION


Declaration = (RegisterDecl | VariableDecl | StructureDecl | TypeDecl
               | ModeDecl)


@dataclass
class DeviceDecl:
    """The entry point: a ``device`` with port parameters and a body."""

    name: str
    params: list[PortParam] = field(default_factory=list)
    declarations: list[Declaration] = field(default_factory=list)
    location: SourceLocation = UNKNOWN_LOCATION

    def registers(self) -> list[RegisterDecl]:
        return [d for d in self.declarations if isinstance(d, RegisterDecl)]

    def variables(self) -> list[VariableDecl]:
        """Top-level variables only (structure members excluded)."""
        return [d for d in self.declarations if isinstance(d, VariableDecl)]

    def structures(self) -> list[StructureDecl]:
        return [d for d in self.declarations if isinstance(d, StructureDecl)]

    def type_decls(self) -> list[TypeDecl]:
        return [d for d in self.declarations if isinstance(d, TypeDecl)]

    def mode_decls(self) -> list[ModeDecl]:
        return [d for d in self.declarations if isinstance(d, ModeDecl)]

    def all_variables(self) -> list[VariableDecl]:
        """Every variable, including structure members."""
        result = list(self.variables())
        for structure in self.structures():
            result.extend(structure.members)
        return result
