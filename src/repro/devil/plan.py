"""Static access-plan analysis: register volatility classification.

The paper's performance argument (§4.3, Tables 2–4) rests on the
compiler knowing, per register, whether port I/O can be avoided: a
register whose variables are all idempotent ("can be cached", §2.1)
never needs to be re-read once its value is known, while a ``volatile``
variable pins its register to the device and a ``trigger`` access has
an unrepeatable side effect that may change *other* registers behind
the driver's back.

This module derives that classification once per checked model, from
the behaviour qualifiers alone — no runtime information is needed,
which is exactly why the paper can do the optimisation in the
compiler.  All three execution strategies (interpreter, bind-time
specializer, generated stub module) consume the same
:class:`AccessPlan`, so they cannot disagree about which reads are
elidable or which writes invalidate the shadow cache.

Classification per register:

``cacheable``
    Every owning variable is idempotent: reads are elidable once a
    shadow value is known (the register cannot change on its own), and
    writes keep the shadow valid.
``volatile``
    Some owning variable is ``volatile``: the device may change the
    register spontaneously, so reads always reach the bus.
``trigger``
    Some owning variable ``trigger``\\ s: accessing the register has a
    side effect.  A *write*-trigger write (and a *read*-trigger read)
    acts as a **barrier**: it may mutate arbitrary device state, so it
    invalidates every register's shadow validity.  Block transfers act
    as barriers for the same reason (a remote-DMA transfer decrements
    the byte-count registers as it runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterator, Mapping

from .model import ResolvedDevice


@dataclass(frozen=True)
class RegisterPlan:
    """The static access classification of one register."""

    register: str
    #: ``"cacheable"`` | ``"volatile"`` | ``"trigger"``.
    classification: str
    #: A read may be served from the shadow cache once valid: the
    #: register is readable and no owner is volatile or a trigger.
    read_elidable: bool
    #: Reading this register has side effects (read-trigger owner):
    #: every shadow is invalidated by the read.
    read_barrier: bool
    #: Writing this register has side effects (write-trigger owner):
    #: every shadow is invalidated by the write.
    write_barrier: bool


@dataclass(frozen=True)
class AccessPlan:
    """Per-register :class:`RegisterPlan` for one resolved device."""

    device: str
    registers: Mapping[str, RegisterPlan]

    def __getitem__(self, register: str) -> RegisterPlan:
        return self.registers[register]

    def __iter__(self) -> Iterator[RegisterPlan]:
        return iter(self.registers.values())

    def read_elidable(self, register: str) -> bool:
        return self.registers[register].read_elidable

    def elidable_registers(self) -> list[str]:
        """Registers whose reads the shadow cache may serve."""
        return [plan.register for plan in self if plan.read_elidable]

    def variable_elidable(self, variable) -> bool:
        """True if every register of ``variable`` is read-elidable.

        Memory variables and structure members never elide through
        this path (memory reads do no I/O; members read snapshots).
        """
        if variable.memory or variable.structure is not None:
            return False
        registers = variable.registers()
        return bool(registers) and all(
            self.registers[name].read_elidable for name in registers)


def compute_access_plan(model: ResolvedDevice) -> AccessPlan:
    """Classify every register of ``model`` (see module docstring)."""
    plans: dict[str, RegisterPlan] = {}
    for name, register in model.registers.items():
        owners = model.variables_of_register(name)
        any_volatile = any(v.behaviors.volatile for v in owners)
        any_trigger = any(v.behaviors.trigger is not None for v in owners)
        read_barrier = any(v.behaviors.read_triggers for v in owners)
        write_barrier = any(v.behaviors.write_triggers for v in owners)
        if any_trigger:
            classification = "trigger"
        elif any_volatile:
            classification = "volatile"
        else:
            classification = "cacheable"
        plans[name] = RegisterPlan(
            register=name,
            classification=classification,
            read_elidable=(register.readable
                           and classification == "cacheable"),
            read_barrier=read_barrier,
            write_barrier=write_barrier,
        )
    return AccessPlan(model.name, MappingProxyType(plans))


def access_plan(model: ResolvedDevice) -> AccessPlan:
    """The model's attached plan, computing (and caching) it if absent.

    The checker attaches the plan to every model it produces; this
    entry point keeps hand-constructed :class:`ResolvedDevice` objects
    (unit tests, embedders) working without a checker pass.
    """
    plan = model.plan
    if not isinstance(plan, AccessPlan):
        plan = compute_access_plan(model)
        model.plan = plan
    return plan
