"""Reproduction of "Devil: An IDL for Hardware Programming" (OSDI 2000).

Devil is an Interface Definition Language for the hardware operating
layer of device drivers: a specification describes a device through
ports, registers and typed device variables; a compiler statically
verifies its consistency and generates the low-level accessor stubs a
driver uses instead of hand-written bit manipulation.

Package map:

``repro.devil``
    The Devil toolchain: lexer, parser, static checker (§3.1 rules),
    resolved model, executable stub runtime, C and Python backends,
    and the ``devilc`` CLI.
``repro.bus``
    Simulated I/O/MMIO bus with per-access accounting.
``repro.devices``
    Behavioural models of the paper's seven device classes.
``repro.specs``
    The shipped Devil specification library (one ``.devil`` file per
    device).
``repro.drivers``
    Paired hand-written (Figure 2 idiom) and Devil-based (Figure 3
    idiom) drivers for busmouse, IDE, NE2000 and Permedia2.
``repro.minic``
    A mini C front end modelling compile-time error detection, used by
    the mutation analysis.
``repro.mutation``
    The Table 1 robustness study (mutation analysis).
``repro.perf``
    The Table 2/3/4 performance experiments and the §4.3 micro-analysis.

Quickstart::

    from repro.bus import Bus
    from repro.devices.busmouse import BusmouseModel
    from repro.specs import compile_shipped

    spec = compile_shipped("busmouse")
    bus = Bus()
    bus.map_device(0x23C, 4, BusmouseModel())
    mouse = spec.bind(bus, {"base": 0x23C})
    mouse.set_config("CONFIGURATION")
"""

from .devil.compiler import CompiledSpec, compile_file, compile_spec

__version__ = "1.0.0"

__all__ = ["CompiledSpec", "compile_file", "compile_spec", "__version__"]
