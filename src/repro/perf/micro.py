"""Micro-analysis of stub costs (§4.3) and the design-choice ablations.

The paper's micro-analysis makes three claims this module measures
directly on the simulated bus:

1. a single Devil stub performs exactly the I/O of the hand-crafted
   access (macro-inlined, "no execution overhead");
2. the one penalty case: *independent* variables over a shared
   register cost one I/O operation each, where hand-written code
   composes them into one store;
3. grouping volatile variables in a structure makes the grouped read
   cheaper than member-by-member reads (and is what makes it
   *consistent*).

The ablation helpers are used by ``benchmarks/bench_ablation_*``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bus import Bus
from ..devices.busmouse import BusmouseModel
from ..devices.busmouse import REGION_SIZE as MOUSE_REGION
from ..devices.ide import IdeControlPort, IdeDiskModel
from ..devices.ide import REGION_SIZE as IDE_REGION
from ..specs import compile_shipped

MOUSE_BASE = 0x23C
IDE_BASE = 0x1F0
IDE_CTRL = 0x3F6


@dataclass
class OpCount:
    """I/O operations of one access pattern, both styles."""

    pattern: str
    hand_written: int
    devil: int

    @property
    def overhead(self) -> int:
        return self.devil - self.hand_written


def _mouse_fixture(debug: bool = False, strategy: str = "interpret"):
    # compile_shipped is memoized, so this costs one dict probe after
    # the first call — no redundant recompiles per fixture.
    bus = Bus()
    mouse = BusmouseModel()
    bus.map_device(MOUSE_BASE, MOUSE_REGION, mouse, "busmouse")
    device = compile_shipped("busmouse").bind(bus, {"base": MOUSE_BASE},
                                              debug=debug, strategy=strategy)
    return bus, mouse, device


def _ide_fixture(debug: bool = False, strategy: str = "interpret"):
    bus = Bus()
    disk = IdeDiskModel(total_sectors=16)
    bus.map_device(IDE_BASE, IDE_REGION, disk, "ide")
    bus.map_device(IDE_CTRL, 1, IdeControlPort(disk), "ide-ctrl")
    device = compile_shipped("ide").bind(
        bus, {"cmd": IDE_BASE, "data": IDE_BASE, "data32": IDE_BASE,
              "ctrl": IDE_CTRL}, debug=debug, strategy=strategy)
    return bus, disk, device


def single_stub_op_count() -> OpCount:
    """Claim 1: one stub call == one hand-crafted port operation."""
    bus, _, device = _mouse_fixture()
    before = bus.accounting.total_ops
    device.set_config("CONFIGURATION")
    devil_ops = bus.accounting.total_ops - before
    before = bus.accounting.total_ops
    bus.outb(0x91, MOUSE_BASE + 3)
    hand_ops = bus.accounting.total_ops - before
    return OpCount("write one register variable", hand_ops, devil_ops)


def shared_register_op_count() -> OpCount:
    """Claim 2: independent variables on one register cost one op each.

    Hand-written code selects drive, head and LBA mode with a single
    ``outb(0xE0 | ...)``; the Devil driver calls three stubs.
    """
    bus, _, device = _ide_fixture()
    before = bus.accounting.total_ops
    device.set_lba_mode(True)
    device.set_drive("MASTER")
    device.set_head(5)
    devil_ops = bus.accounting.total_ops - before
    before = bus.accounting.total_ops
    bus.outb(0xE0 | 5, IDE_BASE + 6)
    hand_ops = bus.accounting.total_ops - before
    return OpCount("device/head register (3 independent variables)",
                   hand_ops, devil_ops)


def structure_grouping_op_count() -> tuple[int, int]:
    """Claim 3: grouped structure read vs member-by-member reads.

    Returns (grouped_ops, ungrouped_ops) for one full mouse state.
    The ungrouped variant re-reads shared registers (``y_high`` twice)
    and re-runs index pre-actions — more I/O *and* a consistency bug
    (counters may move between reads), which is precisely why Devil
    structures exist.
    """
    bus, mouse, device = _mouse_fixture()
    mouse.move(3, 4)
    before = bus.accounting.total_ops
    device.get_mouse_state()
    grouped = bus.accounting.total_ops - before

    # Member-by-member: what a spec without the structure would do.
    before = bus.accounting.total_ops
    for variable in ("dx", "dy", "buttons"):
        resolved = device.model.variables[variable]
        raw = {}
        for register in resolved.registers():
            raw[register] = device.read_register(register)
        device._assemble(resolved, raw)
    ungrouped = bus.accounting.total_ops - before
    return grouped, ungrouped


def debug_mode_op_counts() -> tuple[int, int]:
    """Debug-mode checks are CPU-side only: identical I/O either way."""
    counts = []
    for debug in (False, True):
        bus, mouse, device = _mouse_fixture(debug=debug)
        mouse.move(1, 1)
        device.set_config("CONFIGURATION")
        device.set_signature(0xA5)
        device.get_signature()
        device.get_mouse_state()
        counts.append(bus.accounting.total_ops)
    return counts[0], counts[1]
