"""Timing model converting bus accounting into throughput figures.

The simulation executes real driver code against real device models,
so every *count* (I/O operations, interrupts, DMA bytes, FIFO polls,
pixels drawn) is measured, not assumed.  What a simulator cannot
measure is wall-clock hardware time; this module supplies that as a
small set of per-event costs calibrated once against the paper's
testbed (a 450 MHz Pentium II with a PIIX4 IDE controller on a Maxtor
UDMA2 disk, and a PCI Permedia2):

* ``io_word_cost_us`` — one programmed I/O cycle on the ISA-speed IDE
  taskfile/data ports.  Calibrated from Table 2's PIO rows: 256
  16-bit cycles per sector at 4.45 MB/s gives ≈0.45 µs; 128 32-bit
  cycles at 8.17 MB/s gives ≈0.48 µs (a 32-bit cycle to a 16-bit
  device splits on the bus).
* ``cpu_op_overhead_us`` — instruction-issue overhead a driver pays
  per *explicit* I/O instruction (loop maintenance, call frame).  A
  ``rep`` transfer pays it once, which is exactly why Table 2's
  "C loop" rows lose ~10 % and the block-stub rows lose nothing.
* ``interrupt_cost_us`` — per-interrupt handling cost; calibrated from
  the 1-vs-16 sectors-per-interrupt spread of Table 2 (≈12 µs).
* ``dma_rate_mb_s`` — media-limited UDMA2 streaming rate (14.25 MB/s
  in Table 2's DMA row, where both drivers saturate the disk).
* MMIO costs for the Permedia2: PCI reads stall (~0.23 µs, the FIFO
  polls), posted writes are cheap (~0.02 µs); engine drawing time is
  proportional to pixels × depth (Tables 3/4's large rectangles).

None of the *ratios* the reproduction targets (who wins, by what
factor, where the crossover sits) is sensitive to the absolute values:
they follow from the measured counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bus import IoAccounting


@dataclass(frozen=True)
class CostModel:
    """Per-event costs in microseconds (see module docstring)."""

    #: Single programmed-I/O cycle cost by access width (bits).
    io_word_cost_us: dict = field(default_factory=lambda: {
        8: 0.447, 16: 0.447, 32: 0.484})
    #: Per-instruction CPU overhead of an explicit (non-rep) access.
    cpu_op_overhead_us: float = 0.056
    #: Interrupt service cost.
    interrupt_cost_us: float = 12.0
    #: Media-limited DMA streaming rate.
    dma_rate_mb_s: float = 14.25
    #: PCI MMIO read (stalls until completion; the FIFO-space polls).
    mmio_read_cost_us: float = 0.233
    #: PCI MMIO posted write.
    mmio_write_cost_us: float = 0.021
    #: Fill-engine time per framebuffer byte.
    fill_byte_cost_us: float = 0.00166
    #: Copy-engine time per framebuffer byte.
    copy_byte_cost_us: float = 0.0081
    #: Fixed per-copy engine turnaround.
    copy_fixed_cost_us: float = 5.7

    # ------------------------------------------------------------------
    # Port-I/O devices (IDE)
    # ------------------------------------------------------------------

    def pio_time_us(self, delta: IoAccounting, interrupts: int,
                    dma_bytes: int = 0) -> float:
        """Wall time of a transfer, from measured counts.

        Every explicit single access pays bus cycle + CPU overhead;
        block (``rep``) words pay the bus cycle only, plus one
        instruction overhead per block; interrupts and DMA stream time
        add on top.
        """
        time_us = 0.0
        for width, count in delta.single_by_width.items():
            time_us += count * (self.io_word_cost_us[width]
                                + self.cpu_op_overhead_us)
        for width, words in delta.block_words_by_width.items():
            time_us += words * self.io_word_cost_us[width]
        time_us += delta.block_ops * self.cpu_op_overhead_us
        time_us += interrupts * self.interrupt_cost_us
        time_us += dma_bytes / self.dma_rate_mb_s
        return time_us

    def throughput_mb_s(self, transferred_bytes: int,
                        time_us: float) -> float:
        if time_us <= 0:
            return 0.0
        return transferred_bytes / time_us  # bytes/µs == MB/s

    # ------------------------------------------------------------------
    # MMIO devices (Permedia2)
    # ------------------------------------------------------------------

    def mmio_time_us(self, delta: IoAccounting) -> float:
        """I/O time of a batch of MMIO accesses (no engine time)."""
        time_us = delta.reads * self.mmio_read_cost_us
        time_us += delta.writes * self.mmio_write_cost_us
        for width, words in delta.block_words_by_width.items():
            time_us += words * self.mmio_write_cost_us
        return time_us

    def fill_time_us(self, bytes_touched: int) -> float:
        return bytes_touched * self.fill_byte_cost_us

    def copy_time_us(self, bytes_touched: int, primitives: int) -> float:
        return bytes_touched * self.copy_byte_cost_us + \
            primitives * self.copy_fixed_cost_us
