"""Tables 3 and 4: Permedia2 Xfree86 driver throughput, standard vs Devil.

An ``xbench``-style workload: for every display depth (8/16/24/32 bpp)
and rectangle size (2×2, 10×10, 100×100, 400×400) the harness executes
a batch of ``fill rectangle`` (Table 3) or ``screen area copy``
(Table 4) primitives through both drivers, measures the per-primitive
I/O operations (including the ``#w`` FIFO-poll iterations) and the
pixels the engine touched, and converts to primitives/second with the
MMIO cost model.

The paper's shape to reproduce: the Devil driver issues two more MMIO
stores per primitive (independent rect_x/rect_y/rect_width/rect_height
variables over packed registers), which costs up to ~6 % on the
smallest rectangles and nothing once drawing time dominates
(≥ 100×100: 99–100 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bus import Bus
from ..devices.permedia2 import Permedia2Aperture, Permedia2Model
from ..devices.permedia2 import REGION_SIZE as PM2_REGION
from ..drivers import CStylePermedia2Driver, DevilPermedia2Driver
from .model import CostModel

REGS_BASE = 0xF000_0000
FB_BASE = 0xF100_0000

SCREEN_WIDTH = 1024
SCREEN_HEIGHT = 768

DEPTHS = (8, 16, 24, 32)
SIZES = (2, 10, 100, 400)

#: Primitives per measurement batch.
BATCH = 32


@dataclass
class PermediaRunResult:
    """Measured outcome of one (driver, depth, size, primitive) cell."""

    driver: str
    primitive: str          # "fill" or "copy"
    depth: int
    size: int
    batch: int
    io_reads: int           # FIFO polls (the 3(#w) term)
    io_writes: int          # drawing-register stores (the +15/+17 term)
    pixels: int
    bytes_touched: int
    time_us: float

    @property
    def per_second(self) -> float:
        if self.time_us <= 0:
            return 0.0
        return self.batch / (self.time_us / 1e6)

    @property
    def ops_per_primitive(self) -> float:
        return (self.io_reads + self.io_writes) / self.batch

    @property
    def waits_per_primitive(self) -> float:
        return self.io_reads / self.batch


def _build_machine() -> tuple[Bus, Permedia2Model]:
    bus = Bus()
    gpu = Permedia2Model(width=SCREEN_WIDTH, height=SCREEN_HEIGHT)
    bus.map_device(REGS_BASE, PM2_REGION, gpu, "permedia2")
    bus.map_device(FB_BASE, 1, Permedia2Aperture(gpu), "permedia2-fb")
    return bus, gpu


def run_permedia(driver: str, primitive: str, depth: int, size: int,
                 batch: int = BATCH,
                 cost: CostModel | None = None) -> PermediaRunResult:
    """Execute one cell of Table 3 (fill) or Table 4 (copy)."""
    cost = cost or CostModel()
    bus, gpu = _build_machine()
    if driver == "standard":
        drv: CStylePermedia2Driver | DevilPermedia2Driver = \
            CStylePermedia2Driver(bus, REGS_BASE, FB_BASE)
    elif driver == "devil":
        drv = DevilPermedia2Driver(bus, REGS_BASE, FB_BASE, debug=False)
    else:
        raise ValueError(f"unknown driver {driver!r}")
    drv.set_mode(depth, SCREEN_WIDTH, SCREEN_HEIGHT)

    before = bus.accounting.snapshot()
    pixels_before = gpu.pixels_filled + gpu.pixels_copied
    bytes_before = gpu.bytes_touched
    primitives_before = gpu.primitives
    if primitive == "fill":
        for index in range(batch):
            x = (index * 7) % (SCREEN_WIDTH // 2)
            y = (index * 5) % (SCREEN_HEIGHT // 2)
            drv.fill_rect(x, y, size, size, 0x00CAFE00 + index)
    elif primitive == "copy":
        # Scroll-style copies: source sits `size + gap` to the right of
        # the destination, both always on screen.
        gap = 8
        span_x = SCREEN_WIDTH - 2 * size - gap - 1
        span_y = SCREEN_HEIGHT - size - 1
        for index in range(batch):
            dst_x = (index * 7) % max(span_x, 1)
            dst_y = (index * 5) % max(span_y, 1)
            src_x = dst_x + size + gap
            src_y = dst_y
            drv.screen_copy(src_x, src_y, dst_x, dst_y, size, size)
    else:
        raise ValueError(f"unknown primitive {primitive!r}")

    delta = bus.accounting.delta(before)
    pixels = gpu.pixels_filled + gpu.pixels_copied - pixels_before
    bytes_touched = gpu.bytes_touched - bytes_before
    primitives = gpu.primitives - primitives_before
    if primitives != batch:
        raise AssertionError(
            f"engine executed {primitives} primitives, expected {batch}")
    time_us = cost.mmio_time_us(delta)
    if primitive == "fill":
        time_us += cost.fill_time_us(bytes_touched)
    else:
        time_us += cost.copy_time_us(bytes_touched, primitives)
    return PermediaRunResult(
        driver=driver, primitive=primitive, depth=depth, size=size,
        batch=batch, io_reads=delta.reads, io_writes=delta.writes,
        pixels=pixels, bytes_touched=bytes_touched, time_us=time_us)


@dataclass
class PermediaRow:
    """One comparison row of Table 3 or 4."""

    primitive: str
    depth: int
    size: int
    standard: PermediaRunResult
    devil: PermediaRunResult

    @property
    def ratio(self) -> float:
        return self.devil.per_second / self.standard.per_second


def run_permedia_table(primitive: str, batch: int = BATCH,
                       cost: CostModel | None = None,
                       depths: tuple[int, ...] = DEPTHS,
                       sizes: tuple[int, ...] = SIZES
                       ) -> list[PermediaRow]:
    """The full sweep of Table 3 (``fill``) or Table 4 (``copy``)."""
    cost = cost or CostModel()
    rows = []
    for depth in depths:
        for size in sizes:
            standard = run_permedia("standard", primitive, depth, size,
                                    batch, cost)
            devil = run_permedia("devil", primitive, depth, size, batch,
                                 cost)
            rows.append(PermediaRow(primitive, depth, size, standard,
                                    devil))
    return rows


def format_permedia_table(rows: list[PermediaRow]) -> str:
    """Render in the shape of the paper's Tables 3/4."""
    label = "rect" if rows and rows[0].primitive == "fill" else "copies"
    header = (f"{'Depth':>5} {'Size':>9} {'Std ops/p':>10} "
              f"{'Std ' + label + '/s':>13} {'Dev ops/p':>10} "
              f"{'Dev ' + label + '/s':>13} {'Ratio':>7}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.depth:>5} {row.size:>4}x{row.size:<4} "
            f"{row.standard.ops_per_primitive:>10.1f} "
            f"{row.standard.per_second:>13.0f} "
            f"{row.devil.ops_per_primitive:>10.1f} "
            f"{row.devil.per_second:>13.0f} "
            f"{row.ratio * 100:>6.0f}%")
    return "\n".join(lines)
