"""Performance experiments: Tables 2, 3 and 4 of the paper.

The drivers run for real against the simulated devices; the bus counts
every access; :mod:`repro.perf.model` turns the counts into seconds
with a handful of per-event costs calibrated once against the paper's
testbed.  Who wins, by what factor, and where the gap closes all come
out of the measured counts, not the calibration.
"""

from .ide_bench import (
    IdeRunResult,
    Table2Row,
    format_table2,
    run_ide_transfer,
    run_table2,
)
from .model import CostModel
from .permedia_bench import (
    PermediaRow,
    PermediaRunResult,
    format_permedia_table,
    run_permedia,
    run_permedia_table,
)

__all__ = [
    "CostModel",
    "IdeRunResult",
    "PermediaRow",
    "PermediaRunResult",
    "Table2Row",
    "format_permedia_table",
    "format_table2",
    "run_ide_transfer",
    "run_permedia",
    "run_permedia_table",
    "run_table2",
]
