"""The Table 2 experiment: IDE driver throughput, standard vs Devil.

Each run builds a fresh simulated machine (disk + PIIX4 + bus), performs
a sequential read through the chosen driver, collects the measured
counts (single/block I/O by width, interrupts, DMA bytes) and converts
them to MB/s with the calibrated :class:`~repro.perf.model.CostModel`.

The sweep mirrors the paper's table exactly:

* **DMA** — one row, both drivers saturate the disk;
* **PIO** with sectors-per-interrupt ∈ {16, 8, 1} × I/O size ∈
  {32, 16} bits, where the Devil driver's data loop runs either over
  the single-word stub (the paper's measured rows, ≈90 %) or over the
  ``block`` stubs (the paper's closing observation: no impact).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bus import Bus
from ..devices.ide import IdeControlPort, IdeDiskModel, SECTOR_SIZE
from ..devices.ide import REGION_SIZE as IDE_REGION
from ..devices.piix4 import Piix4Model
from ..devices.piix4 import REGION_SIZE as BM_REGION
from ..drivers import CStyleIdeDriver, DevilIdeDriver
from .model import CostModel

CMD_BASE = 0x1F0
CTRL_BASE = 0x3F6
BM_BASE = 0xC000

#: Default workload: a 256 KiB sequential read in 128-sector commands.
DEFAULT_TOTAL_SECTORS = 512
SECTORS_PER_COMMAND = 128


@dataclass
class IdeRunResult:
    """Measured outcome of one transfer through one driver."""

    driver: str                  # "standard" or "devil"
    mode: str                    # "dma" or "pio"
    sectors_per_irq: int
    io_width: int
    use_block: bool
    total_bytes: int
    io_operations: int           # explicit operations (rep counts as 1)
    bus_transactions: int        # every word moved (the 128/256 counts)
    interrupts: int
    dma_bytes: int
    time_us: float

    @property
    def throughput_mb_s(self) -> float:
        return self.total_bytes / self.time_us if self.time_us else 0.0

    @property
    def command_count(self) -> int:
        return -(-self.total_bytes // (SECTORS_PER_COMMAND * SECTOR_SIZE))


def _build_machine(total_sectors: int) -> tuple[Bus, IdeDiskModel,
                                                Piix4Model, bytearray]:
    bus = Bus()
    disk = IdeDiskModel(total_sectors=total_sectors)
    for index in range(0, len(disk.store), 513):
        disk.store[index] = index & 0xFF  # non-trivial content
    bus.map_device(CMD_BASE, IDE_REGION, disk, "ide")
    bus.map_device(CTRL_BASE, 1, IdeControlPort(disk), "ide-ctrl")
    memory = bytearray(1 << 20)
    busmaster = Piix4Model(disk, memory)
    bus.map_device(BM_BASE, BM_REGION, busmaster, "piix4")
    return bus, disk, busmaster, memory


def run_ide_transfer(driver: str, mode: str, sectors_per_irq: int = 1,
                     io_width: int = 16, use_block: bool = True,
                     total_sectors: int = DEFAULT_TOTAL_SECTORS,
                     cost: CostModel | None = None) -> IdeRunResult:
    """Execute one Table 2 cell and return the measured result."""
    cost = cost or CostModel()
    bus, disk, busmaster, memory = _build_machine(total_sectors)
    if driver == "standard":
        drv: CStyleIdeDriver | DevilIdeDriver = CStyleIdeDriver(
            bus, CMD_BASE, CTRL_BASE, BM_BASE)
    elif driver == "devil":
        drv = DevilIdeDriver(bus, CMD_BASE, CTRL_BASE, BM_BASE,
                             debug=False)
    else:
        raise ValueError(f"unknown driver {driver!r}")

    if mode == "pio" and sectors_per_irq > 1:
        drv.set_multiple(sectors_per_irq)
    before = bus.accounting.snapshot()
    interrupts_before = disk.interrupts_raised
    dma_before = busmaster.bytes_transferred

    total_bytes = 0
    for lba in range(0, total_sectors, SECTORS_PER_COMMAND):
        count = min(SECTORS_PER_COMMAND, total_sectors - lba)
        if mode == "dma":
            data = drv.read_dma(memory, lba, count, buffer_address=0x20000)
        elif driver == "standard":
            data = drv.read_sectors(lba, count,
                                    sectors_per_irq=sectors_per_irq,
                                    io_width=io_width)
        else:
            data = drv.read_sectors(lba, count,
                                    sectors_per_irq=sectors_per_irq,
                                    io_width=io_width,
                                    use_block=use_block)
        total_bytes += len(data)
        expected = bytes(disk.store[lba * SECTOR_SIZE:
                                    (lba + count) * SECTOR_SIZE])
        if data != expected:
            raise AssertionError("transfer corrupted data")

    delta = bus.accounting.delta(before)
    interrupts = disk.interrupts_raised - interrupts_before
    dma_bytes = busmaster.bytes_transferred - dma_before
    time_us = cost.pio_time_us(delta, interrupts, dma_bytes)
    return IdeRunResult(
        driver=driver, mode=mode, sectors_per_irq=sectors_per_irq,
        io_width=io_width, use_block=use_block, total_bytes=total_bytes,
        io_operations=delta.total_ops,
        bus_transactions=delta.bus_transactions,
        interrupts=interrupts, dma_bytes=dma_bytes, time_us=time_us)


@dataclass
class Table2Row:
    """One comparison row of Table 2."""

    mode: str
    sectors_per_irq: int
    io_width: int
    devil_block: bool
    standard: IdeRunResult
    devil: IdeRunResult

    @property
    def ratio(self) -> float:
        return self.devil.throughput_mb_s / \
            self.standard.throughput_mb_s

    def label(self) -> str:
        if self.mode == "dma":
            return "DMA"
        kind = "block stubs" if self.devil_block else "C loop"
        return (f"PIO {self.sectors_per_irq:>2} sect/irq, "
                f"{self.io_width}-bit, {kind}")


def run_table2(cost: CostModel | None = None,
               total_sectors: int = DEFAULT_TOTAL_SECTORS,
               include_block_rows: bool = True) -> list[Table2Row]:
    """The full Table 2 sweep."""
    cost = cost or CostModel()
    rows: list[Table2Row] = []
    rows.append(Table2Row(
        "dma", 0, 0, False,
        run_ide_transfer("standard", "dma", total_sectors=total_sectors,
                         cost=cost),
        run_ide_transfer("devil", "dma", total_sectors=total_sectors,
                         cost=cost)))
    for sectors_per_irq in (16, 8, 1):
        for io_width in (32, 16):
            standard = run_ide_transfer(
                "standard", "pio", sectors_per_irq, io_width,
                total_sectors=total_sectors, cost=cost)
            devil_loop = run_ide_transfer(
                "devil", "pio", sectors_per_irq, io_width,
                use_block=False, total_sectors=total_sectors, cost=cost)
            rows.append(Table2Row("pio", sectors_per_irq, io_width,
                                  False, standard, devil_loop))
            if include_block_rows:
                devil_block = run_ide_transfer(
                    "devil", "pio", sectors_per_irq, io_width,
                    use_block=True, total_sectors=total_sectors,
                    cost=cost)
                rows.append(Table2Row("pio", sectors_per_irq, io_width,
                                      True, standard, devil_block))
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Render in the shape of the paper's Table 2."""
    header = (f"{'Transfer mode':<34} {'Std ops':>8} {'Std MB/s':>9} "
              f"{'Dev ops':>8} {'Dev MB/s':>9} {'Ratio':>7}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.label():<34} {row.standard.io_operations:>8} "
            f"{row.standard.throughput_mb_s:>9.2f} "
            f"{row.devil.io_operations:>8} "
            f"{row.devil.throughput_mb_s:>9.2f} "
            f"{row.ratio * 100:>6.0f}%")
    return "\n".join(lines)
