"""Behavioural device models: the simulated hardware substrate.

One module per chip the paper studied.  Each model implements the bus
protocol (``io_read``/``io_write``) plus a harness-side API for tests
and examples (injecting mouse motion, delivering Ethernet frames,
running DMA transfers...).  The models respond to register-level
semantics — index registers, flip-flops, init-sequence automata, FIFO
pacing, packet rings — which is exactly the level Devil abstracts.
"""

from .busmouse import BusmouseModel
from .cs4236 import Cs4236Model
from .dma8237 import Dma8237Model
from .ide import IdeControlPort, IdeDiskModel
from .ne2000 import Ne2000DataPort, Ne2000Model, Ne2000ResetPort
from .permedia2 import Permedia2Aperture, Permedia2Model
from .pic8259 import Pic8259Model
from .piix4 import Piix4Model

__all__ = [
    "BusmouseModel",
    "Cs4236Model",
    "Dma8237Model",
    "IdeControlPort",
    "IdeDiskModel",
    "Ne2000DataPort",
    "Ne2000Model",
    "Ne2000ResetPort",
    "Permedia2Aperture",
    "Permedia2Model",
    "Pic8259Model",
    "Piix4Model",
]
