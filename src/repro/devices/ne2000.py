"""Behavioural model of the NE2000 Ethernet controller (DP8390 core).

Implements everything the specification and the drivers exercise:

* the command register with its **page-select** bits (the private
  ``page`` variable of the Devil spec drives these through
  pre-actions), the START/STOP state, the TXP transmit trigger and the
  remote-DMA command field with its NODMA neutral value;
* a 16 KiB on-board packet RAM organised in 256-byte pages, with the
  receive ring delimited by PSTART/PSTOP and tracked by BOUNDARY/CURR;
* the **remote DMA** engine: RSAR/RBCR program a transfer window, the
  16-bit data port moves it one word at a time (or as one ``rep``-style
  block), and completion raises the RDC bit in ISR;
* packet reception into the ring with the standard 4-byte storage
  header (status, next page, length low, length high) and the
  packet-received ISR bit;
* transmission out of TPSR/TBCR with the packet-transmitted ISR bit;
* the reset port.

The harness API (:meth:`receive_frame`, :attr:`transmitted`) lets tests
and examples run complete send/receive cycles through either driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bus import BusError

REGION_SIZE = 16  # register window; the data and reset ports map separately

RAM_SIZE = 16 * 1024
RAM_BASE = 0x4000          # on-board RAM is addressed at 0x4000, as on
PAGE_SIZE = 256            # the real card (remote DMA uses NIC addresses)

# Remote-DMA command encodings (CR bits 5..3).
_RD_READ, _RD_WRITE, _RD_SEND, _RD_NODMA = 0b001, 0b010, 0b011, 0b100


@dataclass
class Ne2000Model:
    """Simulated NE2000."""

    mac: bytes = b"\x00\x40\x05\x12\x34\x56"

    running: bool = False
    page: int = 0
    remote_cmd: int = _RD_NODMA

    ram: bytearray = field(default_factory=lambda: bytearray(RAM_SIZE))
    page_start: int = 0x40
    page_stop: int = 0x80
    boundary: int = 0x40
    current: int = 0x40
    tx_page_start: int = 0x40
    tx_byte_count: int = 0

    remote_address: int = 0
    remote_count: int = 0

    isr: int = 0
    imr: int = 0
    rcr: int = 0
    tcr: int = 0
    dcr: int = 0

    #: Frames the model "put on the wire".
    transmitted: list[bytes] = field(default_factory=list)
    #: Interrupts that would have been raised (ISR & IMR edges).
    interrupts_raised: int = 0
    resets: int = 0

    # ------------------------------------------------------------------
    # Bus interface: register window
    # ------------------------------------------------------------------

    def io_read(self, offset: int, width: int) -> int:
        if width != 8:
            raise BusError(f"NE2000 register window is 8-bit, got {width}")
        if offset == 0:
            return self._read_cr()
        if self.page == 0:
            return self._read_page0(offset)
        if self.page == 1:
            return self._read_page1(offset)
        raise BusError(f"NE2000 page {self.page} reads are not modelled")

    def io_write(self, offset: int, value: int, width: int) -> None:
        if width != 8:
            raise BusError(f"NE2000 register window is 8-bit, got {width}")
        if offset == 0:
            self._write_cr(value)
            return
        if self.page == 0:
            self._write_page0(offset, value)
        elif self.page == 1:
            self._write_page1(offset, value)
        else:
            raise BusError(f"NE2000 page {self.page} writes are not "
                           f"modelled")

    # ------------------------------------------------------------------
    # Command register
    # ------------------------------------------------------------------

    def _read_cr(self) -> int:
        st = 0b10 if self.running else 0b01
        return (self.page << 6) | (self.remote_cmd << 3) | st

    def _write_cr(self, value: int) -> None:
        self.page = (value >> 6) & 0b11
        st = value & 0b11
        if st == 0b01:
            self.running = False
        elif st == 0b10:
            self.running = True
        # st == 0b00 (the spec's NEUTRAL) leaves the state unchanged.
        remote = (value >> 3) & 0b111
        if remote != 0:
            self._set_remote_cmd(remote)
        if value & 0b100:  # TXP
            self._transmit()

    def _set_remote_cmd(self, remote: int) -> None:
        if remote == _RD_SEND:
            # "Send packet": auto-programs a remote read of the frame
            # at the boundary pointer.  Modelled as a plain remote read.
            self.remote_address = self.boundary * PAGE_SIZE
            self.remote_cmd = _RD_READ
        elif remote in (_RD_READ, _RD_WRITE):
            self.remote_cmd = remote
        else:
            self.remote_cmd = _RD_NODMA

    # ------------------------------------------------------------------
    # Page 0
    # ------------------------------------------------------------------

    def _read_page0(self, offset: int) -> int:
        if offset == 3:
            return self.boundary
        if offset == 7:
            return self.isr
        raise BusError(f"NE2000 page-0 offset {offset} is write-only")

    def _write_page0(self, offset: int, value: int) -> None:
        if offset == 1:
            self.page_start = value
        elif offset == 2:
            self.page_stop = value
        elif offset == 3:
            self.boundary = value
        elif offset == 4:
            self.tx_page_start = value
        elif offset == 5:
            self.tx_byte_count = (self.tx_byte_count & 0xFF00) | value
        elif offset == 6:
            self.tx_byte_count = (self.tx_byte_count & 0x00FF) | (value << 8)
        elif offset == 7:
            self.isr &= ~value  # write-1-to-clear
        elif offset == 8:
            self.remote_address = (self.remote_address & 0xFF00) | value
        elif offset == 9:
            self.remote_address = (self.remote_address & 0x00FF) | \
                (value << 8)
        elif offset == 10:
            self.remote_count = (self.remote_count & 0xFF00) | value
        elif offset == 11:
            self.remote_count = (self.remote_count & 0x00FF) | (value << 8)
        elif offset == 12:
            self.rcr = value
        elif offset == 13:
            self.tcr = value
        elif offset == 14:
            self.dcr = value
        elif offset == 15:
            self.imr = value
        else:
            raise BusError(f"NE2000 page-0 offset {offset} unmapped")

    # ------------------------------------------------------------------
    # Page 1
    # ------------------------------------------------------------------

    def _read_page1(self, offset: int) -> int:
        if 1 <= offset <= 6:
            return self.mac[offset - 1]
        if offset == 7:
            return self.current
        raise BusError(f"NE2000 page-1 offset {offset} unmapped")

    def _write_page1(self, offset: int, value: int) -> None:
        if 1 <= offset <= 6:
            mac = bytearray(self.mac)
            mac[offset - 1] = value
            self.mac = bytes(mac)
        elif offset == 7:
            self.current = value
        else:
            raise BusError(f"NE2000 page-1 offset {offset} unmapped")

    # ------------------------------------------------------------------
    # RAM addressing
    # ------------------------------------------------------------------

    def _ram_index(self, nic_address: int) -> int:
        index = nic_address - RAM_BASE
        if not 0 <= index < RAM_SIZE:
            raise BusError(
                f"remote DMA address {nic_address:#06x} outside the "
                f"on-board RAM window")
        return index

    # ------------------------------------------------------------------
    # Remote DMA data port (mapped separately, 16-bit)
    # ------------------------------------------------------------------

    def data_port_read(self, width: int) -> int:
        if self.remote_cmd != _RD_READ:
            raise BusError("data port read without a remote-read command")
        bytes_per_access = width // 8
        value = 0
        for i in range(bytes_per_access):
            index = self._ram_index(self.remote_address)
            value |= self.ram[index] << (8 * i)
            self.remote_address += 1
            if self.remote_count > 0:
                self.remote_count -= 1
        if self.remote_count == 0:
            self._finish_remote_dma()
        return value

    def data_port_write(self, value: int, width: int) -> None:
        if self.remote_cmd != _RD_WRITE:
            raise BusError("data port write without a remote-write command")
        for i in range(width // 8):
            index = self._ram_index(self.remote_address)
            self.ram[index] = (value >> (8 * i)) & 0xFF
            self.remote_address += 1
            if self.remote_count > 0:
                self.remote_count -= 1
        if self.remote_count == 0:
            self._finish_remote_dma()

    def _finish_remote_dma(self) -> None:
        self.remote_cmd = _RD_NODMA
        self._raise_isr(0x40)  # RDC

    # ------------------------------------------------------------------
    # Interrupts
    # ------------------------------------------------------------------

    def _raise_isr(self, bits: int) -> None:
        self.isr |= bits
        if self.isr & self.imr:
            self.interrupts_raised += 1

    # ------------------------------------------------------------------
    # Transmission / reception
    # ------------------------------------------------------------------

    def _transmit(self) -> None:
        if not self.running:
            raise BusError("TXP while the NIC is stopped")
        start = self._ram_index(self.tx_page_start * PAGE_SIZE)
        length = self.tx_byte_count
        frame = bytes(self.ram[start:start + length])
        if len(frame) < length:
            raise BusError("transmit window exceeds on-board RAM")
        self.transmitted.append(frame)
        self._raise_isr(0x02)  # PTX

    def receive_frame(self, frame: bytes) -> bool:
        """Deliver a frame from the wire into the receive ring.

        Returns False (and raises the overwrite-warning bit) if the
        ring is full.  The 4-byte storage header matches the DP8390:
        status, next-page pointer, byte count low, byte count high.
        """
        if not self.running:
            return False
        total = len(frame) + 4
        pages_needed = (total + PAGE_SIZE - 1) // PAGE_SIZE
        ring_pages = self.page_stop - self.page_start
        used = (self.current - self.boundary) % ring_pages
        if used + pages_needed >= ring_pages:
            self._raise_isr(0x10)  # OVW
            return False
        next_page = self.current + pages_needed
        if next_page >= self.page_stop:
            next_page = self.page_start + (next_page - self.page_stop)

        header = bytes((
            0x01,                  # receive status: packet intact
            next_page,
            total & 0xFF,
            (total >> 8) & 0xFF,
        ))
        self._store_wrapped(self.current, header + frame)
        self.current = next_page
        self._raise_isr(0x01)  # PRX
        return True

    def _store_wrapped(self, start_page: int, payload: bytes) -> None:
        """Store bytes at a NIC address, wrapping inside the ring."""
        position = start_page * PAGE_SIZE  # NIC address (pages 0x40..)
        for byte in payload:
            if position >= self.page_stop * PAGE_SIZE:
                position = self.page_start * PAGE_SIZE
            self.ram[self._ram_index(position)] = byte
            position += 1

    # ------------------------------------------------------------------
    # Reset port
    # ------------------------------------------------------------------

    def reset(self) -> None:
        self.resets += 1
        self.running = False
        self.remote_cmd = _RD_NODMA
        self.isr = 0x80  # RST
        self.page = 0


class Ne2000DataPort:
    """Bus adapter for the 16-bit remote-DMA data port."""

    def __init__(self, nic: Ne2000Model):
        self.nic = nic

    def io_read(self, offset: int, width: int) -> int:
        if offset != 0:
            raise BusError(f"data port has no offset {offset}")
        return self.nic.data_port_read(width)

    def io_write(self, offset: int, value: int, width: int) -> None:
        if offset != 0:
            raise BusError(f"data port has no offset {offset}")
        self.nic.data_port_write(value, width)


class Ne2000ResetPort:
    """Bus adapter for the reset port: any access resets the NIC."""

    def __init__(self, nic: Ne2000Model):
        self.nic = nic

    def io_read(self, offset: int, width: int) -> int:
        self.nic.reset()
        return 0xFF

    def io_write(self, offset: int, value: int, width: int) -> None:
        self.nic.reset()
