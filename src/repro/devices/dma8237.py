"""Behavioural model of the Intel 8237A DMA controller.

Implements the register protocol the Devil specification (and any
hand-written driver) exercises:

* the byte-pointer **flip-flop**: address/count registers are 16 bits
  wide but accessed through 8-bit ports; the flip-flop selects low or
  high byte and toggles on every access.  Writing anything to offset 12
  resets it — the paper's "Register serialization" example exists
  precisely because forgetting this reset is a classic driver bug;
* four channels with base/current address and count registers;
* mode, request, mask, command, status registers;
* master clear (offset 13), clear-mask (offset 14), all-mask (offset 15).

The harness-side :meth:`run_channel` performs a whole programmed
transfer against a :class:`bytearray`-backed memory, decrementing the
current count to the 0xFFFF terminal state and setting the status TC
bit, which is what both driver flavours poll in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bus import BusError

REGION_SIZE = 16

#: Mode-register transfer types (bits 3..2).
VERIFY, WRITE_MEM, READ_MEM = 0b00, 0b01, 0b10


@dataclass
class _Channel:
    base_address: int = 0
    current_address: int = 0
    base_count: int = 0
    current_count: int = 0
    mode: int = 0
    masked: bool = True
    requested: bool = False
    reached_tc: bool = False


@dataclass
class Dma8237Model:
    """Simulated 8237A."""

    channels: list[_Channel] = field(
        default_factory=lambda: [_Channel() for _ in range(4)])
    flip_flop_high: bool = False
    command: int = 0

    # ------------------------------------------------------------------
    # Bus interface
    # ------------------------------------------------------------------

    def io_read(self, offset: int, width: int) -> int:
        if width != 8:
            raise BusError(f"8237A only decodes 8-bit accesses, got {width}")
        if 0 <= offset <= 7:
            return self._read_addr_count(offset)
        if offset == 8:
            return self._read_status()
        if offset == 15:
            return self._mask_bits()
        raise BusError(f"8237A offset {offset} is not readable")

    def io_write(self, offset: int, value: int, width: int) -> None:
        if width != 8:
            raise BusError(f"8237A only decodes 8-bit accesses, got {width}")
        if 0 <= offset <= 7:
            self._write_addr_count(offset, value)
        elif offset == 8:
            self.command = value
        elif offset == 9:
            channel = self.channels[value & 0b11]
            channel.requested = bool(value & 0b100)
        elif offset == 10:
            channel = self.channels[value & 0b11]
            channel.masked = bool(value & 0b100)
        elif offset == 11:
            self.channels[value & 0b11].mode = value
        elif offset == 12:
            self.flip_flop_high = False
        elif offset == 13:
            self.master_clear()
        elif offset == 14:
            for channel in self.channels:
                channel.masked = False
        elif offset == 15:
            for index, channel in enumerate(self.channels):
                channel.masked = bool(value & (1 << index))
        else:
            raise BusError(f"8237A offset {offset} is not writable")

    # ------------------------------------------------------------------
    # Register helpers
    # ------------------------------------------------------------------

    def _channel_of(self, offset: int) -> tuple[_Channel, bool]:
        """(channel, is_count) for address/count offsets 0..7."""
        return self.channels[offset // 2], bool(offset % 2)

    def _read_addr_count(self, offset: int) -> int:
        channel, is_count = self._channel_of(offset)
        word = channel.current_count if is_count else channel.current_address
        value = (word >> 8) & 0xFF if self.flip_flop_high else word & 0xFF
        self.flip_flop_high = not self.flip_flop_high
        return value

    def _write_addr_count(self, offset: int, value: int) -> None:
        channel, is_count = self._channel_of(offset)
        if is_count:
            if self.flip_flop_high:
                channel.base_count = (channel.base_count & 0x00FF) | \
                    (value << 8)
            else:
                channel.base_count = (channel.base_count & 0xFF00) | value
            channel.current_count = channel.base_count
        else:
            if self.flip_flop_high:
                channel.base_address = (channel.base_address & 0x00FF) | \
                    (value << 8)
            else:
                channel.base_address = (channel.base_address & 0xFF00) | value
            channel.current_address = channel.base_address
        self.flip_flop_high = not self.flip_flop_high

    def _read_status(self) -> int:
        value = 0
        for index, channel in enumerate(self.channels):
            if channel.reached_tc:
                value |= 1 << index
            if channel.requested:
                value |= 1 << (4 + index)
        # Reading the status register clears the TC bits (8237A datasheet).
        for channel in self.channels:
            channel.reached_tc = False
        return value

    def _mask_bits(self) -> int:
        value = 0
        for index, channel in enumerate(self.channels):
            if channel.masked:
                value |= 1 << index
        return value

    def master_clear(self) -> None:
        """Reset: flip-flop cleared, all channels masked, status cleared."""
        self.flip_flop_high = False
        self.command = 0
        for channel in self.channels:
            channel.masked = True
            channel.requested = False
            channel.reached_tc = False

    # ------------------------------------------------------------------
    # Harness-side API
    # ------------------------------------------------------------------

    def run_channel(self, index: int, memory: bytearray,
                    device_data: bytes | None = None) -> bytes:
        """Execute a programmed transfer on channel ``index``.

        ``WRITE_MEM`` transfers copy ``device_data`` into ``memory`` at
        the programmed address; ``READ_MEM`` transfers return the bytes
        read out of ``memory``.  The count register holds *count - 1*,
        as on the real part, and ends at the 0xFFFF terminal value.
        """
        channel = self.channels[index]
        if channel.masked:
            raise BusError(f"DMA channel {index} is masked")
        length = (channel.current_count + 1) & 0xFFFF
        address = channel.current_address
        transfer_type = (channel.mode >> 2) & 0b11
        out = b""
        if transfer_type == WRITE_MEM:
            if device_data is None or len(device_data) < length:
                raise BusError(
                    f"channel {index} needs {length} device byte(s)")
            memory[address:address + length] = device_data[:length]
        elif transfer_type == READ_MEM:
            out = bytes(memory[address:address + length])
        elif transfer_type != VERIFY:
            raise BusError(f"illegal transfer type {transfer_type:#04b}")
        channel.current_address = (address + length) & 0xFFFF
        channel.current_count = 0xFFFF
        channel.reached_tc = True
        if (channel.mode >> 4) & 1:  # autoinit
            channel.current_address = channel.base_address
            channel.current_count = channel.base_count
        return out
